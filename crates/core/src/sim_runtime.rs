//! The simulated-cluster runtime: GrOUT's Controller/Worker architecture
//! over the modeled OCI testbed (Figure 3 of the paper).
//!
//! A [`SimRuntime`] is a *plan executor*: every submitted CE goes through
//! the shared [`Planner`] (paper Algorithm 1 — dependencies → node
//! assignment → data movements) and comes back as a pure [`Plan`], which
//! this runtime then *prices in virtual time* over the modeled network and
//! one [`gpu_sim::GpuNode`] + per-GPU [`uvm_sim::UvmDevice`] per worker.
//! Intra-node device/stream selection (Algorithm 2) happens here because
//! only the simulator models devices; the resulting [`crate::Placement`]
//! is filled back into the plan before it reaches the [`SchedTrace`].
//!
//! The single-node **GrCUDA baseline** is the same runtime configured with
//! one worker and a colocated controller ([`SimConfig::grcuda_baseline`]).

use std::collections::HashMap;

use desim::{SimDuration, SimTime};
use gpu_sim::{DeviceId, GpuNode, KernelCost, NodeSpec, StreamId};
use net_sim::{Network, Topology};
use uvm_sim::{Regime, UvmConfig, UvmDevice, UvmStats};

use crate::ce::{ArrayId, Ce, CeArg, CeId, CeKind};
use crate::coherence::{Coherence, Location};
use crate::dag::{DagIndex, DepDag};
use crate::faults::{FailureDetector, SchedEvent};
use crate::intranode::{select_device, select_stream, DevicePolicy, Placement};
use crate::policy::{LinkMatrix, PolicyKind};
use crate::scheduler::{
    LoggedPlanner, Movement, MovementKind, OpSink, Plan, PlanError, PlanObserver, Planner,
    PlannerConfig, PlannerOp, SchedTrace,
};
use crate::telemetry::{ArgValue, Lane, Metrics, SpanEvent, Telemetry};

/// Configuration of a simulated GrOUT deployment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The shared scheduling core's knobs: worker count, inter-node policy
    /// and the paper's ablation switches (P2P, flat scheduling, controller
    /// colocation).
    pub planner: PlannerConfig,
    /// Per-worker hardware.
    pub node: NodeSpec,
    /// UVM model constants.
    pub uvm: UvmConfig,
    /// Intra-node device-selection policy.
    pub device_policy: DevicePolicy,
    /// Cluster network (endpoint 0 is the controller).
    pub topology: Topology,
    /// Controller-side host memory bandwidth (for host read/write CEs).
    pub host_bw_bps: f64,
    /// Controller decision cost per CE for static policies.
    pub sched_static: SimDuration,
    /// Additional decision cost per worker for online policies.
    pub sched_per_node: SimDuration,
    /// The paper's per-run execution cap (2.5 h in the evaluation).
    pub time_cap: Option<SimDuration>,
    /// Models a hand-tuned application that issues
    /// `cudaMemPrefetchAsync` for every kernel input before launch (the
    /// paper's "first approach": profiling + manual prefetching). The
    /// prefetch time serializes ahead of the kernel but migrates at the
    /// streaming rate, avoiding demand-fault storms for data that fits.
    pub hand_tuned_prefetch: bool,
}

impl SimConfig {
    /// The paper's GrOUT deployment: dedicated controller, `workers` nodes
    /// of 2x V100 16 GiB, OCI NICs, 2.5 h cap.
    pub fn paper_grout(workers: usize, policy: PolicyKind) -> Self {
        SimConfig {
            planner: PlannerConfig::new(workers, policy),
            node: NodeSpec::paper_worker(),
            uvm: UvmConfig::default(),
            device_policy: DevicePolicy::MinTransferBytes,
            topology: Topology::paper_oci(workers, SimDuration::from_micros(50)),
            host_bw_bps: 25e9,
            sched_static: SimDuration::from_micros(2),
            sched_per_node: SimDuration::from_nanos(700),
            time_cap: Some(SimDuration::from_secs(9000)),
            hand_tuned_prefetch: false,
        }
    }

    /// The paper's single-node GrCUDA baseline: one node, controller on the
    /// same machine, intra-node scheduling only.
    pub fn grcuda_baseline() -> Self {
        let mut cfg = Self::paper_grout(1, PolicyKind::RoundRobin);
        cfg.planner.controller_colocated = true;
        cfg
    }
}

/// Per-CE execution record (reporting).
#[derive(Debug, Clone)]
pub struct CeRecord {
    /// The CE.
    pub ce: Ce,
    /// Where it ran.
    pub location: Location,
    /// GPU within the node (kernels only).
    pub device: Option<DeviceId>,
    /// Stream on that GPU (kernels only).
    pub stream: Option<StreamId>,
    /// When the operation started executing.
    pub start: SimTime,
    /// When it finished.
    pub finish: SimTime,
    /// UVM stall included in the execution (kernels only).
    pub uvm_stall: SimDuration,
    /// Worst UVM regime hit (kernels only).
    pub regime: Option<Regime>,
    /// Bytes moved over the network to place this CE.
    pub network_bytes: u64,
}

/// One worker node's mutable state.
struct Worker {
    node: GpuNode,
    uvm: Vec<UvmDevice>,
    device_rr: usize,
    /// Stream each DAG node ran on (for parent-stream reuse).
    placements: HashMap<DagIndex, (DeviceId, StreamId)>,
}

/// Aggregated run statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// CEs executed.
    pub ces: u64,
    /// Network payload bytes moved.
    pub network_bytes: u64,
    /// Kernels that hit the UVM fault-storm regime.
    pub storm_kernels: u64,
    /// Total UVM stall across kernels.
    pub uvm_stall: SimDuration,
    /// Total controller scheduling overhead.
    pub sched_overhead: SimDuration,
    /// Lineage replays performed during recovery.
    pub replays: u64,
    /// Bytes re-sent because of recoveries or dropped transfers (kept out
    /// of `network_bytes` so fault-free traffic accounting stays exact).
    pub redriven_bytes: u64,
    /// Virtual time spent detecting and recovering from faults.
    pub fault_overhead: SimDuration,
}

/// The simulated GrOUT runtime: prices [`Plan`]s in virtual time.
pub struct SimRuntime {
    cfg: SimConfig,
    net: Network,
    planner: LoggedPlanner,
    workers: Vec<Worker>,
    records: Vec<CeRecord>,
    /// Virtual instant each array's latest content becomes available
    /// (finish of its last writer CE / last arriving transfer).
    array_ready: HashMap<ArrayId, SimTime>,
    next_ce: u64,
    /// When the controller is free to process the next submission.
    controller_clock: SimTime,
    stats: RunStats,
    trace: SchedTrace,
    /// Per-worker liveness + membership epoch (mirrors the local runtime).
    detector: FailureDetector,
    /// Last writer CE per array — the lineage the simulator replays (it
    /// prices whole-array reconstruction, so one hop of lineage suffices).
    last_writer: HashMap<ArrayId, DagIndex>,
    /// Optional span/instant recorder (virtual-time timestamps, so traces
    /// are bit-for-bit deterministic per seed).
    telemetry: Telemetry,
    /// Always-on metrics registry.
    metrics: Metrics,
}

impl SimRuntime {
    /// Builds a runtime; probes the interconnection matrix when the policy
    /// needs it (as GrOUT does at startup). Rejects configurations that
    /// cannot schedule anything with [`PlanError::InvalidConfig`].
    pub fn try_new(cfg: SimConfig) -> Result<Self, PlanError> {
        crate::builder::validate_planner(&cfg.planner)?;
        if cfg.topology.len() != cfg.planner.workers + 1 {
            return Err(PlanError::InvalidConfig(
                "topology must cover controller + workers",
            ));
        }
        let net = Network::new(cfg.topology.clone());
        let links = if matches!(cfg.planner.policy, PolicyKind::MinTransferTime(_)) {
            Some(LinkMatrix::new(net.probe_matrix(64 << 20)))
        } else {
            None
        };
        let planner = LoggedPlanner::new(Planner::new(cfg.planner.clone(), links));
        let workers = (0..cfg.planner.workers)
            .map(|_| Worker {
                node: GpuNode::new(cfg.node.clone()),
                uvm: (0..cfg.node.gpu_count)
                    .map(|_| {
                        UvmDevice::new(
                            cfg.uvm.clone(),
                            cfg.node.gpu.memory_bytes,
                            cfg.node.gpu.pcie_bps,
                        )
                    })
                    .collect(),
                device_rr: 0,
                placements: HashMap::new(),
            })
            .collect();
        let detector = FailureDetector::new(cfg.planner.workers);
        let mut metrics = Metrics::with_workers(cfg.planner.workers);
        if let Some(links) = planner.links() {
            metrics.set_bandwidth("modeled", "sim", links);
        }
        Ok(SimRuntime {
            net,
            planner,
            workers,
            records: Vec::new(),
            array_ready: HashMap::new(),
            next_ce: 0,
            controller_clock: SimTime::ZERO,
            stats: RunStats::default(),
            trace: SchedTrace::default(),
            detector,
            last_writer: HashMap::new(),
            telemetry: Telemetry::off(),
            metrics,
            cfg,
        })
    }

    /// Attaches a telemetry recorder; the handle is shared with the
    /// planner so its marks land in the same trace.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.planner.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The always-on metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Records a scheduling event in the trace, metrics and telemetry at
    /// the current controller instant.
    fn note_event(&mut self, event: SchedEvent) {
        self.metrics.record_event(&event);
        self.telemetry
            .sched_event(&event, self.controller_clock.as_nanos());
        self.trace.record_event(event);
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Allocates a framework-managed array of `bytes` (up-to-date on the
    /// controller, like `polyglot.eval(GrOUT, "float[SIZE]")`).
    pub fn alloc(&mut self, bytes: u64) -> ArrayId {
        let id = self.planner.alloc(bytes);
        self.array_ready.insert(id, self.controller_clock);
        id
    }

    /// Frees an array.
    pub fn free(&mut self, id: ArrayId) {
        self.planner.free(id);
        self.array_ready.remove(&id);
        for w in &mut self.workers {
            for uvm in &mut w.uvm {
                uvm.invalidate(id.alloc());
            }
        }
    }

    /// Size of an array in bytes.
    pub fn array_bytes(&self, id: ArrayId) -> u64 {
        self.planner.array_bytes(id)
    }

    /// Submits a host-side write CE (e.g. the initialization loop of
    /// Listing 1).
    pub fn host_write(&mut self, array: ArrayId, bytes: u64) -> CeId {
        let arg = CeArg::write(array, bytes);
        self.submit(CeKind::HostWrite, vec![arg])
    }

    /// Submits a host-side read CE (e.g. `print(x)`).
    pub fn host_read(&mut self, array: ArrayId, bytes: u64) -> CeId {
        let arg = CeArg::read(array, bytes);
        self.submit(CeKind::HostRead, vec![arg])
    }

    /// Submits a kernel CE.
    pub fn launch(&mut self, name: impl Into<String>, cost: KernelCost, args: Vec<CeArg>) -> CeId {
        self.submit(
            CeKind::Kernel {
                name: name.into(),
                cost,
            },
            args,
        )
    }

    fn sched_overhead(&self) -> SimDuration {
        let p = &self.cfg.planner;
        let base = if p.policy.is_online() {
            self.cfg.sched_static + self.cfg.sched_per_node * p.workers as u64
        } else {
            self.cfg.sched_static
        };
        if p.flat_scheduling {
            // Tracking every stream on every GPU of every node from the
            // controller: per-CE bookkeeping scales with total streams
            // (~8 in-flight streams per GPU).
            let streams = (p.workers * self.cfg.node.gpu_count * 8) as u64;
            base + self.cfg.sched_per_node * streams
        } else {
            base
        }
    }

    /// Degrades a directed link at runtime and, when the policy is
    /// `min-transfer-time`, re-probes the interconnection matrix so the
    /// scheduler adapts (the VNIC-SLA scenario of Section IV-D).
    pub fn degrade_link(&mut self, src: Location, dst: Location, link: net_sim::LinkSpec) {
        self.net.set_link(src.endpoint(), dst.endpoint(), link);
        if matches!(self.cfg.planner.policy, PolicyKind::MinTransferTime(_)) {
            self.planner
                .reprobe_links(LinkMatrix::new(self.net.probe_matrix(64 << 20)));
            if let Some(links) = self.planner.links() {
                let links = links.clone();
                self.metrics.set_bandwidth("modeled", "sim", &links);
            }
        }
    }

    /// Whether a movement between two locations is free because the
    /// controller shares worker 0's host memory (GrCUDA baseline).
    fn colocated(&self, a: Location, b: Location) -> bool {
        self.cfg.planner.controller_colocated
            && ((a == Location::CONTROLLER && b == Location::worker(0))
                || (b == Location::CONTROLLER && a == Location::worker(0)))
    }

    /// Prices one planned movement on the modeled network; returns the
    /// payload bytes that actually moved (0 when colocation voids the
    /// transfer). Updates the array's availability instant.
    fn cost_movement(&mut self, m: &Movement, dispatch: SimTime) -> u64 {
        let ready = *self.array_ready.get(&m.array).unwrap_or(&dispatch);
        let start = dispatch.max(ready);

        // Dirty device copies on the source worker must be written back
        // before the bytes leave the node.
        let mut src_ready = start;
        if let Some(wi) = m.from.worker_index() {
            src_ready = src_ready.max(self.sync_worker_host_copy(wi, m.array, start));
        }

        let (arrival, moved) = if self.colocated(m.from, m.to) {
            // Same host memory: nothing to move.
            (src_ready, 0)
        } else if m.kind == MovementKind::Staged {
            // Two hops: worker -> controller, then controller -> worker.
            let hop = self.net.transfer(
                src_ready,
                m.from.endpoint(),
                Location::CONTROLLER.endpoint(),
                m.bytes,
            );
            let rec = self.net.transfer(
                hop.timeline.finish,
                Location::CONTROLLER.endpoint(),
                m.to.endpoint(),
                m.bytes,
            );
            self.stats.network_bytes += m.bytes; // the relay hop
            (rec.timeline.finish, m.bytes)
        } else {
            let rec = self
                .net
                .transfer(src_ready, m.from.endpoint(), m.to.endpoint(), m.bytes);
            (rec.timeline.finish, m.bytes)
        };
        self.stats.network_bytes += moved;
        if moved > 0 {
            let dur = arrival.saturating_since(start);
            self.metrics.transfer.record(dur.as_nanos());
            self.metrics.record_movement(m.kind, m.bytes);
            if self.telemetry.enabled() {
                self.telemetry.span(&SpanEvent {
                    name: m.kind.name(),
                    cat: "transfer",
                    lane: Lane::network(m.to.0),
                    start_ns: start.as_nanos(),
                    dur_ns: dur.as_nanos(),
                    args: &[
                        ("array", ArgValue::U64(m.array.0)),
                        ("bytes", ArgValue::U64(m.bytes)),
                        ("from", ArgValue::U64(m.from.0 as u64)),
                        ("to", ArgValue::U64(m.to.0 as u64)),
                    ],
                });
            }
        }
        let ready = self.array_ready.entry(m.array).or_insert(arrival);
        *ready = (*ready).max(arrival);
        moved
    }

    /// If worker `wi` holds a dirty device copy of `array`, schedule the
    /// UVM writeback (D2H) and return when the host copy is consistent.
    fn sync_worker_host_copy(&mut self, wi: usize, array: ArrayId, when: SimTime) -> SimTime {
        let mut done = when;
        let w = &mut self.workers[wi];
        for (d, uvm) in w.uvm.iter_mut().enumerate() {
            let resident = uvm.resident_bytes(array.alloc());
            if resident > 0 {
                let tl = w.node.device_mut(DeviceId(d)).copy_d2h(when, resident);
                done = done.max(tl.finish);
            }
        }
        done
    }

    /// Injected faults for this CE, priced in virtual time. Mirrors the
    /// local runtime's detect → retry → quarantine → replay pipeline:
    /// retries cost their exponential backoff, a death costs the detection
    /// timeout plus a host-bandwidth lineage replay of every lost array,
    /// and recovery rewrites `plan` onto a healthy worker. The trace events
    /// carry the same (worker, at_ce) identity the local runtime records,
    /// which is what the chaos differential test compares.
    fn apply_faults(&mut self, plan: &mut Plan) {
        let faults = self.cfg.planner.faults.clone();
        if faults.is_empty() {
            return;
        }
        let dag = plan.dag_index;
        // Faults attach to dispatched work; host CEs run on the controller
        // itself and have no worker to lose.
        let Some(worker) = plan.assigned_node.worker_index() else {
            return;
        };
        let fc = self.cfg.planner.fault_cfg;

        if let Some(delay) = faults.delay_at(dag) {
            if let Some(m) = plan.movements.first() {
                self.note_event(SchedEvent::TransferDelayed {
                    at_ce: dag,
                    array: m.array,
                    delay,
                });
                self.controller_clock += delay;
                self.stats.fault_overhead += delay;
            }
        }

        if faults.drop_at(dag) {
            if let Some(m) = plan.movements.first().cloned() {
                // The payload is lost in flight, so the CE wedges until the
                // detection timeout fires; the controller then re-drives the
                // bytes from its own copy.
                self.note_event(SchedEvent::TransferDropped {
                    at_ce: dag,
                    array: m.array,
                });
                let redrive =
                    fc.detection_timeout + SimDuration::for_bytes(m.bytes, self.cfg.host_bw_bps);
                self.controller_clock += redrive;
                self.stats.fault_overhead += redrive;
                self.stats.redriven_bytes += m.bytes;
                self.note_event(SchedEvent::TransferRedriven { at_ce: dag });
            }
        }

        let mut condemned = false;
        if let Some(times) = faults.fail_launch_at(dag) {
            // One failure report per attempt until the launch succeeds or
            // the retry budget condemns the node (max_retries + 1 failures).
            let failures = times.min(fc.max_retries + 1);
            for attempt in 1..=failures {
                let backoff = SimDuration::exp_backoff(fc.backoff_base, attempt, fc.backoff_cap);
                self.note_event(SchedEvent::Retry {
                    at_ce: dag,
                    worker,
                    attempt,
                    backoff,
                });
                self.controller_clock += backoff;
                self.stats.fault_overhead += backoff;
            }
            condemned = times > fc.max_retries;
        }

        if faults.kill_at(dag) || condemned {
            if !fc.recovery {
                panic!("worker {worker} died at CE {dag} with recovery disabled");
            }
            let epoch = self.detector.mark_dead(worker);
            self.note_event(SchedEvent::Fault {
                at_ce: dag,
                worker: Some(worker),
                kind: "kill-worker",
                epoch,
            });
            self.controller_clock += fc.detection_timeout;
            self.stats.fault_overhead += fc.detection_timeout;

            let rec = self
                .planner
                .recover(worker, &[dag])
                .unwrap_or_else(|e| panic!("{e}"));
            self.note_event(SchedEvent::Quarantine {
                worker,
                at_ce: dag,
                lost: rec.lost.clone(),
                epoch,
            });

            // Lineage replay: the controller reconstructs each lost array by
            // re-running its last completed writer host-side; priced as a
            // host-bandwidth pass over the array.
            for &a in &rec.lost {
                if let Some(&writer) = self.last_writer.get(&a) {
                    self.note_event(SchedEvent::Replay {
                        dag_index: writer,
                        epoch,
                    });
                    self.stats.replays += 1;
                }
                let replay =
                    SimDuration::for_bytes(self.planner.array_bytes(a), self.cfg.host_bw_bps);
                self.controller_clock += replay;
                self.stats.fault_overhead += replay;
                // The rebuilt copy lives on the controller from now on.
                self.array_ready.insert(a, self.controller_clock);
            }

            // The in-flight CE itself moves to a healthy worker; recovery
            // already replanned its movements from surviving holders.
            for r in &rec.reassigned {
                if r.dag_index == dag {
                    self.note_event(SchedEvent::Reassign {
                        dag_index: dag,
                        from: worker,
                        to: r.to.worker_index().unwrap_or(usize::MAX),
                        epoch,
                    });
                    plan.assigned_node = r.to;
                    plan.movements = r.movements.clone();
                }
            }
        }
    }

    /// Core submission path: plan through the shared scheduling core, then
    /// price the plan (movements, Algorithm 2 placement, UVM stall) in
    /// virtual time.
    pub fn submit(&mut self, kind: CeKind, args: Vec<CeArg>) -> CeId {
        let id = CeId(self.next_ce);
        self.next_ce += 1;
        let ce = Ce { id, kind, args };

        // 1. Algorithm 1 (dependencies → node assignment → movements) runs
        //    in the shared Planner; this runtime only executes the result.
        let mut plan = self.planner.plan_ce(&ce).unwrap_or_else(|e| panic!("{e}"));

        // 2. Controller decision cost (its cost is Figure 9's subject).
        let plan_start = self.controller_clock;
        let overhead = self.sched_overhead();
        self.controller_clock += overhead;
        self.stats.sched_overhead += overhead;
        self.metrics.plan.record(overhead.as_nanos());
        if self.telemetry.enabled() {
            self.telemetry.span(&SpanEvent {
                name: "plan",
                cat: "plan",
                lane: Lane::CONTROLLER,
                start_ns: plan_start.as_nanos(),
                dur_ns: overhead.as_nanos(),
                args: &[
                    ("dag_index", ArgValue::U64(plan.dag_index as u64)),
                    ("node", ArgValue::U64(plan.assigned_node.0 as u64)),
                    ("movements", ArgValue::U64(plan.movements.len() as u64)),
                    ("bytes", ArgValue::U64(plan.movement_bytes())),
                ],
            });
        }

        // 2b. Injected faults fire at dispatch: retries, detection and
        //     recovery all spend controller time and may rewrite the plan
        //     onto a healthy worker before anything is priced.
        self.apply_faults(&mut plan);
        let dispatch = self.controller_clock;

        // 3. Price the planned movements on the modeled network.
        let movements = plan.movements.clone();
        let mut moved_bytes = 0u64;
        for m in &movements {
            moved_bytes += self.cost_movement(m, dispatch);
        }

        // 4. Input availability: moved arrays became ready at transfer
        //    arrival, cached ones at their last writer's finish.
        let mut data_ready = dispatch;
        for arg in &ce.args {
            if arg.mode.reads() {
                data_ready = data_ready.max(*self.array_ready.get(&arg.array).unwrap_or(&dispatch));
            }
        }

        // 5. Ancestor completion gates (the plan carries the filtered
        //    dependency set).
        let parent_finish = plan
            .deps
            .iter()
            .map(|&p| self.records[p].finish)
            .max()
            .unwrap_or(SimTime::ZERO);
        let gate = data_ready.max(parent_finish);
        self.metrics
            .queue
            .record(gate.saturating_since(dispatch).as_nanos());

        // 6. Execute.
        let dest = plan.assigned_node;
        let record = match &ce.kind {
            CeKind::HostRead | CeKind::HostWrite => {
                let bytes = ce.total_bytes();
                let dur = SimDuration::for_bytes(bytes, self.cfg.host_bw_bps);
                let start = gate;
                let finish = start + dur;
                self.controller_clock = self.controller_clock.max(finish);
                CeRecord {
                    location: dest,
                    device: None,
                    stream: None,
                    start,
                    finish,
                    uvm_stall: SimDuration::ZERO,
                    regime: None,
                    network_bytes: moved_bytes,
                    ce: ce.clone(),
                }
            }
            CeKind::Kernel { cost, .. } => {
                let wi = dest.worker_index().expect("kernels go to workers");
                // Command message latency controller -> worker.
                let cmd_at = dispatch
                    + self
                        .cfg
                        .topology
                        .path_latency(Location::CONTROLLER.endpoint(), dest.endpoint());
                let gate = gate.max(cmd_at);

                // Algorithm 2: device selection by residency.
                let resident: Vec<u64> = {
                    let w = &self.workers[wi];
                    (0..w.node.device_count())
                        .map(|d| {
                            ce.args
                                .iter()
                                .map(|a| w.uvm[d].resident_bytes(a.array.alloc()))
                                .sum()
                        })
                        .collect()
                };
                let total_bytes = ce.total_bytes();
                // Competing pressure per GPU: the CE's own allocations are
                // excluded so a chunk is not repelled from the GPU it ran
                // on last iteration by its own stale window entry.
                let own: Vec<uvm_sim::AllocId> = ce.args.iter().map(|a| a.array.alloc()).collect();
                let active: Vec<u64> = self.workers[wi]
                    .uvm
                    .iter()
                    .map(|u| u.active_bytes_excluding(&own))
                    .collect();
                let w = &mut self.workers[wi];
                let device = select_device(
                    &w.node,
                    self.cfg.device_policy,
                    &mut w.device_rr,
                    &resident,
                    &active,
                    total_bytes,
                );

                // Stream selection: reuse the single parent's stream when it
                // ran on the same device of the same worker.
                let single_parent_stream = if plan.deps.len() == 1 {
                    w.placements
                        .get(&plan.deps[0])
                        .filter(|(d, _)| *d == device)
                        .map(|(_, s)| *s)
                } else {
                    None
                };
                let (stream, reused) =
                    select_stream(w.node.device_mut(device), gate, single_parent_stream);

                // Wait events on ancestors (free when the FIFO orders us).
                let waits: Vec<SimTime> = if reused {
                    Vec::new()
                } else {
                    plan.deps.iter().map(|&p| self.records[p].finish).collect()
                };

                // Hand-tuned variant: prefetch read inputs ahead of the
                // launch (serialized before the kernel, streaming rate).
                let mut prefetch_cost = SimDuration::ZERO;
                if self.cfg.hand_tuned_prefetch {
                    for a in &ce.args {
                        if a.mode.reads() {
                            prefetch_cost += w.uvm[device.0].prefetch(a.array.alloc(), a.bytes);
                        }
                    }
                }

                // UVM fault/migration stall for this launch.
                let uvm_args: Vec<uvm_sim::ArgAccess> =
                    ce.args.iter().map(|a| a.to_uvm()).collect();
                let report = w.uvm[device.0].kernel_access(&uvm_args);
                let report = uvm_sim::UvmReport {
                    stall: report.stall + prefetch_cost,
                    ..report
                };

                let tl = w.node.device_mut(device).launch_kernel(
                    stream,
                    gate,
                    &waits,
                    cost,
                    report.stall,
                );
                w.placements.insert(plan.dag_index, (device, stream));
                plan.placement = Some(Placement {
                    device,
                    stream,
                    reused_parent_stream: reused,
                });
                if report.regime == Regime::FaultStorm {
                    self.stats.storm_kernels += 1;
                }
                self.stats.uvm_stall += report.stall;
                CeRecord {
                    location: dest,
                    device: Some(device),
                    stream: Some(stream),
                    start: tl.start,
                    finish: tl.finish,
                    uvm_stall: report.stall,
                    regime: Some(report.regime),
                    network_bytes: moved_bytes,
                    ce: ce.clone(),
                }
            }
        };

        // 7. Availability + UVM updates for written arrays (the coherence
        //    directory itself was already updated eagerly at plan time).
        for arg in &ce.args {
            if arg.mode.writes() {
                self.last_writer.insert(arg.array, plan.dag_index);
                self.array_ready.insert(arg.array, record.finish);
                // Stale UVM copies elsewhere must refault after the write.
                for (i, w) in self.workers.iter_mut().enumerate() {
                    if Location::worker(i) != dest {
                        for uvm in &mut w.uvm {
                            uvm.invalidate(arg.array.alloc());
                        }
                    }
                }
            }
        }

        // Execution latency + per-worker occupancy + the execute span.
        let exec_ns = record.finish.saturating_since(record.start).as_nanos();
        self.metrics.execute.record(exec_ns);
        if let (Some(wi), Some(_)) = (record.location.worker_index(), record.device) {
            self.metrics.record_kernel(wi, exec_ns);
        }
        if self.telemetry.enabled() {
            let (name, cat): (&str, &'static str) = match &record.ce.kind {
                CeKind::Kernel { name, .. } => (name.as_str(), "execute"),
                CeKind::HostRead => ("host-read", "host"),
                CeKind::HostWrite => ("host-write", "host"),
            };
            let lane = match (record.location.worker_index(), record.device, record.stream) {
                (Some(wi), Some(d), Some(s)) => Lane::stream(wi + 1, d.0, s.0),
                _ => Lane::CONTROLLER,
            };
            self.telemetry.span(&SpanEvent {
                name,
                cat,
                lane,
                start_ns: record.start.as_nanos(),
                dur_ns: exec_ns,
                args: &[
                    ("dag_index", ArgValue::U64(plan.dag_index as u64)),
                    (
                        "uvm_stall_us",
                        ArgValue::F64(record.uvm_stall.as_micros_f64()),
                    ),
                    ("network_bytes", ArgValue::U64(record.network_bytes)),
                ],
            });
        }

        self.planner.mark_completed(plan.dag_index);
        self.trace.record(&plan);
        self.stats.ces += 1;
        self.records.push(record);
        id
    }

    /// Completion time of a CE.
    pub fn finish_time(&self, id: CeId) -> SimTime {
        self.records[id.0 as usize].finish
    }

    /// Full record of a CE.
    pub fn record(&self, id: CeId) -> &CeRecord {
        &self.records[id.0 as usize]
    }

    /// All records, in submission order.
    pub fn records(&self) -> &[CeRecord] {
        &self.records
    }

    /// The virtual makespan: when the last submitted CE finishes.
    pub fn elapsed(&self) -> SimTime {
        self.records
            .iter()
            .map(|r| r.finish)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Whether the run exceeded the configured execution cap (the paper
    /// reports such runs as "out of time").
    pub fn timed_out(&self) -> bool {
        self.cfg
            .time_cap
            .is_some_and(|cap| self.elapsed() > SimTime::ZERO + cap)
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Node a planned CE was (last) assigned to — reassignments made during
    /// recovery are reflected here.
    pub fn node_assignment(&self, dag_index: DagIndex) -> Option<Location> {
        self.planner.assignment(dag_index)
    }

    /// Whether a worker has been quarantined by fault recovery.
    pub fn is_quarantined(&self, worker: usize) -> bool {
        self.planner.is_quarantined(worker)
    }

    /// Number of workers still eligible for scheduling.
    pub fn healthy_workers(&self) -> usize {
        self.planner.healthy_workers()
    }

    /// Cluster membership epoch: bumps once per confirmed worker death.
    pub fn epoch(&self) -> u64 {
        self.detector.epoch()
    }

    /// UVM statistics of one GPU.
    pub fn uvm_stats(&self, worker: usize, device: usize) -> UvmStats {
        self.workers[worker].uvm[device].stats()
    }

    /// The coherence directory (read-only view).
    pub fn coherence(&self) -> &Coherence {
        self.planner.coherence()
    }

    /// The Global DAG (read-only view).
    pub fn dag(&self) -> &DepDag {
        self.planner.dag()
    }

    /// The network (read-only view).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The probed interconnection matrix, when the policy uses one.
    pub fn link_matrix(&self) -> Option<&LinkMatrix> {
        self.planner.links()
    }

    /// The trace of executed plans (ring buffer, oldest first).
    pub fn sched_trace(&self) -> &SchedTrace {
        &self.trace
    }

    /// Installs a callback invoked for every executed plan.
    pub fn set_sched_observer(&mut self, observer: PlanObserver) {
        self.trace.set_observer(observer);
    }

    /// The planner (read-only view; all mutations go through the op log).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Every planner op applied so far, in order.
    pub fn op_log(&self) -> &[PlannerOp] {
        self.planner.ops()
    }

    /// Registers an op-log sink (journal, log shipping); it is first
    /// caught up with the ops already applied.
    pub fn add_op_sink(&mut self, sink: Box<dyn OpSink>) {
        self.planner.add_sink(sink);
    }
}

impl crate::Observability for SimRuntime {
    type Stats = RunStats;

    fn sched_trace(&self) -> &SchedTrace {
        &self.trace
    }

    fn stats(&self) -> RunStats {
        self.stats
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Plan;
    use uvm_sim::AccessPattern;

    const GIB: u64 = 1 << 30;

    fn cost_for(bytes: u64) -> KernelCost {
        KernelCost {
            flops: bytes as f64, // ~memory-bound
            bytes_read: bytes,
            bytes_written: 0,
        }
    }

    fn grout(workers: usize) -> SimRuntime {
        SimRuntime::try_new(SimConfig::paper_grout(workers, PolicyKind::RoundRobin))
            .expect("valid config")
    }

    #[test]
    fn fitting_workload_runs_fast() {
        let mut rt = grout(2);
        let a = rt.alloc(4 * GIB);
        rt.host_write(a, 4 * GIB);
        rt.launch("k", cost_for(4 * GIB), vec![CeArg::read_write(a, 4 * GIB)]);
        let t = rt.elapsed().as_secs_f64();
        // init memcpy + network send + cold faults: clearly under a minute.
        assert!(t > 0.0 && t < 60.0, "elapsed {t}");
        assert!(!rt.timed_out());
    }

    #[test]
    fn dependencies_serialize_execution() {
        let mut rt = grout(2);
        let a = rt.alloc(GIB);
        let w = rt.launch("w", cost_for(GIB), vec![CeArg::write(a, GIB)]);
        let r = rt.launch("r", cost_for(GIB), vec![CeArg::read(a, GIB)]);
        assert!(rt.record(r).start >= rt.finish_time(w));
    }

    #[test]
    fn independent_ces_overlap_across_nodes() {
        let mut rt = grout(2);
        let a = rt.alloc(GIB);
        let b = rt.alloc(GIB);
        // Compute-heavy kernels (~64 s on a V100) so execution, not the
        // serialized controller egress, dominates.
        let heavy = KernelCost {
            flops: 1e15,
            bytes_read: GIB,
            bytes_written: 0,
        };
        let ka = rt.launch("ka", heavy, vec![CeArg::read_write(a, GIB)]);
        let kb = rt.launch("kb", heavy, vec![CeArg::read_write(b, GIB)]);
        // Round-robin puts them on different nodes; their executions overlap.
        assert_ne!(rt.record(ka).location, rt.record(kb).location);
        assert!(rt.record(kb).start < rt.record(ka).finish);
    }

    #[test]
    fn reads_move_data_once_then_cache() {
        let mut rt = SimRuntime::try_new(SimConfig::paper_grout(1, PolicyKind::RoundRobin))
            .expect("valid config");
        let a = rt.alloc(GIB);
        let k1 = rt.launch("k1", cost_for(GIB), vec![CeArg::read(a, GIB)]);
        let k2 = rt.launch("k2", cost_for(GIB), vec![CeArg::read(a, GIB)]);
        assert_eq!(rt.record(k1).network_bytes, GIB);
        assert_eq!(rt.record(k2).network_bytes, 0, "second read reuses copy");
    }

    #[test]
    fn writes_invalidate_other_copies() {
        let mut rt = grout(2);
        let a = rt.alloc(GIB);
        // Spread read copies to both workers.
        rt.launch("r0", cost_for(GIB), vec![CeArg::read(a, GIB)]);
        rt.launch("r1", cost_for(GIB), vec![CeArg::read(a, GIB)]);
        assert_eq!(rt.coherence().holders(ArrayId(0)).len(), 3);
        // A write on one worker makes it exclusive.
        rt.launch("w", cost_for(GIB), vec![CeArg::write(a, GIB)]);
        assert_eq!(rt.coherence().holders(ArrayId(0)).len(), 1);
    }

    #[test]
    fn p2p_transfer_skips_controller() {
        let mut rt = grout(2);
        let a = rt.alloc(GIB);
        // Put the data exclusively on worker 0 by writing there.
        rt.launch("w", cost_for(GIB), vec![CeArg::write(a, GIB)]);
        let before = rt.network().stats(net_sim::EndpointId(0)).bytes_out;
        // Read on worker 1 must come P2P from worker 0.
        rt.launch("r", cost_for(GIB), vec![CeArg::read(a, GIB)]);
        let after = rt.network().stats(net_sim::EndpointId(0)).bytes_out;
        assert_eq!(before, after, "controller sent nothing");
        assert!(rt.network().stats(net_sim::EndpointId(1)).bytes_out >= GIB);
    }

    #[test]
    fn grcuda_baseline_moves_nothing_over_network() {
        let mut rt = SimRuntime::try_new(SimConfig::grcuda_baseline()).expect("valid config");
        let a = rt.alloc(4 * GIB);
        rt.host_write(a, 4 * GIB);
        rt.launch("k", cost_for(4 * GIB), vec![CeArg::read_write(a, 4 * GIB)]);
        rt.host_read(a, 4 * GIB);
        assert_eq!(rt.stats().network_bytes, 0);
    }

    #[test]
    fn oversubscribed_kernel_storms_and_dominates() {
        let mut rt = SimRuntime::try_new(SimConfig::grcuda_baseline()).expect("valid config");
        let a = rt.alloc(48 * GIB); // 3x one V100
        let k = rt.launch(
            "big",
            cost_for(48 * GIB),
            vec![CeArg::read(a, 48 * GIB).with_pattern(AccessPattern::Streamed { sweeps: 4.0 })],
        );
        assert_eq!(rt.record(k).regime, Some(Regime::FaultStorm));
        assert!(rt.stats().storm_kernels == 1);
        assert!(rt.record(k).uvm_stall.as_secs_f64() > 10.0);
    }

    #[test]
    fn scale_out_splits_pressure() {
        // The paper's headline mechanism: the same total footprint split
        // across two nodes leaves the storm regime.
        let run = |workers: usize| {
            let mut rt = grout(workers);
            let chunks = 4;
            let total = 48 * GIB;
            let per = total / chunks;
            for _ in 0..2 {
                for c in 0..chunks {
                    let a = if rt.array_bytes(ArrayId(c)) == 0 {
                        rt.alloc(per)
                    } else {
                        ArrayId(c)
                    };
                    rt.launch(
                        "chunk",
                        cost_for(per),
                        vec![CeArg::read_write(a, per)
                            .with_pattern(AccessPattern::Streamed { sweeps: 2.0 })],
                    );
                }
            }
            rt.elapsed().as_secs_f64()
        };
        let one = run(1);
        let two = run(2);
        assert!(
            two < one,
            "two nodes ({two:.1}s) should beat one ({one:.1}s) under pressure"
        );
    }

    #[test]
    fn host_read_pulls_data_back() {
        let mut rt = grout(1);
        let a = rt.alloc(GIB);
        rt.launch("w", cost_for(GIB), vec![CeArg::write(a, GIB)]);
        let r = rt.host_read(a, GIB);
        assert_eq!(rt.record(r).location, Location::CONTROLLER);
        assert!(rt.record(r).network_bytes >= GIB);
        assert!(rt
            .coherence()
            .up_to_date_on(ArrayId(0), Location::CONTROLLER));
    }

    #[test]
    fn online_policy_pays_per_node_overhead() {
        let static_cfg = SimConfig::paper_grout(8, PolicyKind::RoundRobin);
        let online_cfg = SimConfig::paper_grout(8, PolicyKind::MinTransferSize(Default::default()));
        let mut a = SimRuntime::try_new(static_cfg).expect("valid config");
        let mut b = SimRuntime::try_new(online_cfg).expect("valid config");
        let run = |rt: &mut SimRuntime| {
            let x = rt.alloc(1 << 20);
            for _ in 0..10 {
                rt.launch("k", cost_for(1 << 20), vec![CeArg::read_write(x, 1 << 20)]);
            }
            rt.stats().sched_overhead
        };
        assert!(run(&mut b) > run(&mut a));
    }

    #[test]
    fn p2p_disabled_stages_through_controller() {
        let mut cfg = SimConfig::paper_grout(2, PolicyKind::RoundRobin);
        cfg.planner.p2p_enabled = false;
        let mut rt = SimRuntime::try_new(cfg).expect("valid config");
        let a = rt.alloc(GIB);
        rt.launch("w", cost_for(GIB), vec![CeArg::write(a, GIB)]); // worker 0
        let before = rt.network().stats(net_sim::EndpointId(0)).bytes_out;
        rt.launch("r", cost_for(GIB), vec![CeArg::read(a, GIB)]); // worker 1
        let after = rt.network().stats(net_sim::EndpointId(0)).bytes_out;
        assert!(after > before, "controller relayed the bytes");
        // Staging doubles the wire traffic relative to a direct P2P hop
        // (worker0 -> controller -> worker1).
        assert_eq!(rt.stats().network_bytes, 2 * GIB);
    }

    #[test]
    fn flat_scheduling_costs_more_per_ce() {
        let run = |flat: bool| {
            let mut cfg = SimConfig::paper_grout(4, PolicyKind::RoundRobin);
            cfg.planner.flat_scheduling = flat;
            let mut rt = SimRuntime::try_new(cfg).expect("valid config");
            let a = rt.alloc(1 << 20);
            for _ in 0..16 {
                rt.launch("k", cost_for(1 << 20), vec![CeArg::read_write(a, 1 << 20)]);
            }
            rt.stats().sched_overhead
        };
        assert!(run(true) > run(false) * 2.0);
    }

    #[test]
    fn degrade_link_refreshes_the_probed_matrix() {
        use crate::policy::ExplorationLevel;
        let mut rt = SimRuntime::try_new(SimConfig::paper_grout(
            2,
            PolicyKind::MinTransferTime(ExplorationLevel::Low),
        ))
        .expect("valid config");
        let before = rt
            .link_matrix()
            .expect("min-transfer-time probes at startup")
            .bandwidth(Location::CONTROLLER, Location::worker(0));
        assert!(before > 100e6, "healthy OCI link: {before}");
        let dead = net_sim::LinkSpec::from_mbit(1.0, desim::SimDuration::from_millis(50));
        rt.degrade_link(Location::CONTROLLER, Location::worker(0), dead);
        let after = rt
            .link_matrix()
            .expect("matrix survives refresh")
            .bandwidth(Location::CONTROLLER, Location::worker(0));
        assert!(after < 1e6, "matrix saw the degraded VNIC: {after}");
        // The reverse direction is untouched.
        let reverse = rt
            .link_matrix()
            .unwrap()
            .bandwidth(Location::worker(0), Location::CONTROLLER);
        assert!(reverse > 100e6);
    }

    #[test]
    fn degraded_link_slows_new_transfers() {
        let mut rt = SimRuntime::try_new(SimConfig::paper_grout(2, PolicyKind::RoundRobin))
            .expect("valid config");
        let a = rt.alloc(GIB);
        let fast = rt.launch("k1", cost_for(GIB), vec![CeArg::read(a, GIB)]); // worker 0
        let dead = net_sim::LinkSpec::from_mbit(1.0, desim::SimDuration::from_millis(50));
        rt.degrade_link(Location::CONTROLLER, Location::worker(1), dead);
        let b = rt.alloc(GIB);
        let slow = rt.launch("k2", cost_for(GIB), vec![CeArg::read(b, GIB)]); // worker 1
        let fast_span = rt.record(fast).finish - rt.record(fast).start;
        let _ = fast_span;
        assert!(
            rt.record(slow).finish.as_secs_f64() > rt.record(fast).finish.as_secs_f64() * 50.0,
            "transfer over the dead link crawls"
        );
    }

    #[test]
    fn free_invalidates_everywhere() {
        let mut rt = grout(1);
        let a = rt.alloc(GIB);
        rt.launch("k", cost_for(GIB), vec![CeArg::read(a, GIB)]);
        rt.free(a);
        assert!(rt.coherence().holders(a).is_empty());
    }

    #[test]
    #[should_panic(expected = "after free")]
    fn use_after_free_is_loud() {
        let mut rt = grout(1);
        let a = rt.alloc(GIB);
        rt.free(a);
        rt.launch("k", cost_for(GIB), vec![CeArg::read(a, GIB)]);
    }

    #[test]
    fn zero_byte_arrays_are_harmless() {
        let mut rt = grout(2);
        let a = rt.alloc(0);
        let k = rt.launch("k", KernelCost::default(), vec![CeArg::read_write(a, 0)]);
        assert!(rt.finish_time(k) > SimTime::ZERO);
        assert!(!rt.timed_out());
    }

    #[test]
    fn kernels_with_no_args_run() {
        let mut rt = grout(2);
        let k = rt.launch(
            "noop",
            KernelCost {
                flops: 1e9,
                bytes_read: 0,
                bytes_written: 0,
            },
            vec![],
        );
        assert!(rt.record(k).finish > rt.record(k).start);
    }

    #[test]
    fn sim_trace_records_executed_plans() {
        let mut rt = grout(2);
        let a = rt.alloc(GIB);
        rt.launch("w", cost_for(GIB), vec![CeArg::write(a, GIB)]); // worker 0
        rt.launch("r", cost_for(GIB), vec![CeArg::read(a, GIB)]); // worker 1, P2P
        let plans: Vec<&Plan> = rt.sched_trace().plans().collect();
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[1].deps, vec![0]);
        assert_eq!(plans[1].movements[0].kind, MovementKind::P2p);
        assert!(
            plans[1].placement.is_some(),
            "sim fills Algorithm-2 placement into the traced plan"
        );
    }

    // ----- fault injection -------------------------------------------------

    use crate::faults::{FaultEvent, FaultKind, FaultPlan};

    fn grout_with_faults(workers: usize, faults: FaultPlan) -> SimRuntime {
        let mut cfg = SimConfig::paper_grout(workers, PolicyKind::RoundRobin);
        cfg.planner.faults = faults;
        SimRuntime::try_new(cfg).expect("valid config")
    }

    /// host_write is DAG index 0; kernels are 1..=n.
    fn chain(rt: &mut SimRuntime, n: usize) -> ArrayId {
        let a = rt.alloc(GIB);
        rt.host_write(a, GIB);
        for i in 0..n {
            rt.launch(
                format!("step{i}"),
                cost_for(GIB),
                vec![CeArg::read_write(a, GIB)],
            );
        }
        a
    }

    #[test]
    fn injected_kill_quarantines_and_reroutes() {
        let mut rt = grout_with_faults(2, FaultPlan::kill_at_ce(3));
        chain(&mut rt, 6);

        let dead = (0..2).find(|&w| rt.is_quarantined(w)).expect("quarantine");
        assert_eq!(rt.epoch(), 1);
        assert_eq!(rt.healthy_workers(), 1);
        let events = rt.sched_trace().events();
        assert!(events.iter().any(
            |e| matches!(e, SchedEvent::Fault { at_ce: 3, worker: Some(w), .. } if *w == dead)
        ));
        assert!(events.iter().any(
            |e| matches!(e, SchedEvent::Quarantine { at_ce: 3, worker, .. } if *worker == dead)
        ));
        assert!(events.iter().any(
            |e| matches!(e, SchedEvent::Reassign { dag_index: 3, from, .. } if *from == dead)
        ));
        // Degraded mode: everything after the fault avoids the dead node.
        for dag in 3..=6 {
            let loc = rt.node_assignment(dag).expect("assigned");
            assert_ne!(loc.worker_index(), Some(dead), "CE {dag} on dead node");
        }
        // Detection + recovery cost virtual time. (Total elapsed can go
        // either way: degraded mode keeps the array resident on the one
        // surviving worker, which can beat the fault-free ping-pong.)
        assert!(rt.stats().fault_overhead >= rt.cfg.planner.fault_cfg.detection_timeout);
    }

    #[test]
    fn sim_fault_runs_are_deterministic() {
        let run = || {
            let mut rt = grout_with_faults(3, FaultPlan::one_death(42, &[1, 2, 3, 4, 5]));
            chain(&mut rt, 5);
            (rt.elapsed(), rt.sched_trace().events().len(), rt.epoch())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn transient_failures_price_their_backoff() {
        let mut clean = grout(2);
        chain(&mut clean, 3);

        let mut rt = grout_with_faults(
            2,
            FaultPlan::with_events(vec![FaultEvent {
                at_ce: 1,
                kind: FaultKind::FailLaunch { times: 2 },
            }]),
        );
        chain(&mut rt, 3);

        let retries = rt
            .sched_trace()
            .events()
            .iter()
            .filter(|e| matches!(e, SchedEvent::Retry { at_ce: 1, .. }))
            .count();
        assert_eq!(retries, 2);
        assert_eq!(
            rt.healthy_workers(),
            2,
            "transient faults do not quarantine"
        );
        assert!(rt.elapsed() > clean.elapsed());
    }

    #[test]
    fn persistent_launch_failures_condemn_the_node() {
        let mut rt = grout_with_faults(
            2,
            FaultPlan::with_events(vec![FaultEvent {
                at_ce: 1,
                kind: FaultKind::FailLaunch { times: 10 },
            }]),
        );
        chain(&mut rt, 3);
        assert_eq!(rt.healthy_workers(), 1);
        assert!(rt
            .sched_trace()
            .events()
            .iter()
            .any(|e| matches!(e, SchedEvent::Quarantine { at_ce: 1, .. })));
        assert!(rt
            .sched_trace()
            .events()
            .iter()
            .any(|e| matches!(e, SchedEvent::Reassign { dag_index: 1, .. })));
    }

    #[test]
    fn dropped_and_delayed_transfers_are_priced() {
        let mut rt = grout_with_faults(
            2,
            FaultPlan::with_events(vec![
                FaultEvent {
                    at_ce: 1,
                    kind: FaultKind::DropTransfer,
                },
                FaultEvent {
                    at_ce: 2,
                    kind: FaultKind::DelayTransfer {
                        delay: SimDuration::from_millis(5),
                    },
                },
            ]),
        );
        // host_write (dag 0) seeds the array on the controller, so kernel
        // CEs 1 and 2 both need an inbound transfer.
        let a = rt.alloc(GIB);
        rt.host_write(a, GIB);
        rt.launch("r0", cost_for(GIB), vec![CeArg::read(a, GIB)]);
        rt.launch("r1", cost_for(GIB), vec![CeArg::read(a, GIB)]);

        let events = rt.sched_trace().events();
        assert!(events
            .iter()
            .any(|e| matches!(e, SchedEvent::TransferDropped { at_ce: 1, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, SchedEvent::TransferRedriven { at_ce: 1 })));
        assert!(events
            .iter()
            .any(|e| matches!(e, SchedEvent::TransferDelayed { at_ce: 2, .. })));
        assert!(rt.stats().redriven_bytes >= GIB);
        assert!(rt.stats().fault_overhead > SimDuration::ZERO);
    }
}
