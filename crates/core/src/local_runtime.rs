//! The local (real-execution) runtime: GrOUT's Controller/Worker
//! architecture as actual threads.
//!
//! `LocalRuntime` is the second *plan executor* over the shared scheduling
//! core: every CE goes through the same [`Planner`] as
//! [`crate::SimRuntime`] (paper Algorithm 1 — dependencies → node
//! assignment → data movements) and the resulting [`Plan`] is executed for
//! real. Workers are OS threads holding local array copies, the controller
//! transmits plans over crossbeam channels, data moves as buffer messages
//! (controller-send or true peer-to-peer between worker threads), and
//! kernels compiled by `kernelc` execute on the host CPU (rayon-parallel
//! across blocks).
//!
//! Execution is deferred, matching GrCUDA's asynchronous semantics:
//! `launch` *plans* a CE eagerly (so the planner's coherence view evolves
//! exactly as in the simulator) and `synchronize` transmits the plans.
//! Transmission is readiness-gated on the Global DAG — a CE's messages go
//! out only after every parent (including WAR/WAW anti-dependencies)
//! completed, so each worker's single physical copy per array holds
//! exactly the content a consumer planned against. Monotonic per-array
//! content versions carried in the messages enforce the residual dataflow
//! ordering: a worker only runs a kernel once every input reached the
//! version the plan demands, and only forwards a copy once it is fresh
//! enough.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{unbounded, Receiver, Sender};
use kernelc::{CompiledKernel, KernelArg, LaunchError};

use crate::ce::{ArrayId, Ce, CeArg, CeId, CeKind};
use crate::coherence::{Coherence, Location};
use crate::dag::{DagIndex, DepDag};
use crate::policy::{LinkMatrix, PolicyKind};
use crate::scheduler::{
    MovementKind, Plan, PlanError, PlanObserver, Planner, PlannerConfig, SchedTrace,
};

/// Errors surfaced by the local runtime.
#[derive(Debug, thiserror::Error)]
#[non_exhaustive]
pub enum LocalError {
    /// A kernel launch failed inside a worker.
    #[error("kernel launch failed: {0}")]
    Launch(LaunchError),
    /// A kernel launch failed; includes the failing CE's DAG index.
    #[error("CE #{0} failed: {1}")]
    LaunchAt(DagIndex, LaunchError),
    /// The same array was passed twice to one kernel (aliasing unsupported).
    #[error("array {0:?} aliased within one kernel")]
    Aliased(ArrayId),
    /// Unknown array id.
    #[error("unknown array {0:?}")]
    UnknownArray(ArrayId),
    /// Argument count/type mismatch against the kernel signature.
    #[error("bad kernel arguments: {0}")]
    BadArgs(String),
    /// A worker thread disappeared.
    #[error("worker {0} died")]
    WorkerDied(usize),
    /// The shared scheduling core rejected the CE.
    #[error("planning failed: {0}")]
    Plan(PlanError),
}

/// A host-side buffer (the backing store of a framework array).
#[derive(Debug, Clone, PartialEq)]
pub enum HostBuf {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 32-bit ints.
    I32(Vec<i32>),
}

impl HostBuf {
    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        match self {
            HostBuf::F32(v) => (v.len() * 4) as u64,
            HostBuf::I32(v) => (v.len() * 4) as u64,
        }
    }
}

/// A launch argument in the local runtime.
#[derive(Debug, Clone, Copy)]
pub enum LocalArg {
    /// A framework array.
    Buf(ArrayId),
    /// Float scalar.
    F32(f32),
    /// Int scalar.
    I32(i32),
}

/// Kernel-launch request queued on a worker.
struct ExecMsg {
    dag_index: DagIndex,
    kernel: Arc<CompiledKernel>,
    grid: (u32, u32),
    block: (u32, u32),
    args: Vec<LocalArg>,
    /// Arrays (with minimum versions) that must be present locally before
    /// execution. Versioning prevents a stale local copy from satisfying a
    /// dependency whose fresh bytes are still in flight.
    needs: Vec<(ArrayId, u64)>,
    /// Version each written array becomes once this CE completes.
    bumps: Vec<(ArrayId, u64)>,
}

enum ToWorker {
    /// Install a local array copy (ignored if a newer version is present).
    Data {
        array: ArrayId,
        version: u64,
        buf: HostBuf,
    },
    /// Execute a kernel once `needs` are present.
    Exec(ExecMsg),
    /// Send a local copy to another worker (true P2P) or the controller —
    /// but only once the local copy reaches `min_version`: the controller
    /// may name this worker as a source while its fresh copy is still in
    /// flight, and forwarding a stale version would wedge the consumer.
    Send {
        array: ArrayId,
        min_version: u64,
        to: Option<usize>,
    },
    /// Terminate.
    Shutdown,
}

enum ToController {
    Done {
        dag_index: DagIndex,
        worker: usize,
    },
    Data {
        array: ArrayId,
        version: u64,
        buf: HostBuf,
    },
    Failed {
        dag_index: DagIndex,
        error: LaunchError,
    },
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalStats {
    /// Kernels executed across all workers.
    pub kernels: u64,
    /// Bytes moved controller->worker.
    pub send_bytes: u64,
    /// Bytes moved worker->worker (P2P).
    pub p2p_bytes: u64,
    /// Bytes moved worker->controller.
    pub fetch_bytes: u64,
}

/// Configuration of the local deployment.
#[derive(Debug, Clone)]
pub struct LocalConfig {
    /// The shared scheduling core's knobs: worker count, inter-node policy
    /// and the paper's ablation switches.
    pub planner: PlannerConfig,
}

impl LocalConfig {
    /// A deployment with `workers` threads under `policy` and the paper's
    /// default planner knobs.
    pub fn new(workers: usize, policy: PolicyKind) -> Self {
        LocalConfig {
            planner: PlannerConfig::new(workers, policy),
        }
    }
}

impl Default for LocalConfig {
    fn default() -> Self {
        LocalConfig::new(2, PolicyKind::RoundRobin)
    }
}

/// A planned-but-not-yet-transmitted kernel CE.
struct PendingCe {
    plan: Plan,
    kernel: Arc<CompiledKernel>,
    grid: (u32, u32),
    block: (u32, u32),
    args: Vec<LocalArg>,
    needs: Vec<(ArrayId, u64)>,
    bumps: Vec<(ArrayId, u64)>,
    dispatched: bool,
}

struct WorkerHandle {
    tx: Sender<ToWorker>,
    join: Option<JoinHandle<()>>,
}

/// The threaded GrOUT runtime: executes [`Plan`]s over channels.
pub struct LocalRuntime {
    cfg: LocalConfig,
    planner: Planner,
    /// Controller master copies (authoritative when coherence says so).
    master: HashMap<ArrayId, HostBuf>,
    /// Monotonic content version per array (bumped by every writer CE).
    versions: HashMap<ArrayId, u64>,
    /// Version the controller's master copy actually holds (lags
    /// `versions` while fresh content still lives on a worker).
    master_versions: HashMap<ArrayId, u64>,
    /// Arrays ever delivered to each worker's local store.
    present: Vec<HashSet<ArrayId>>,
    /// Controller-relayed sends waiting for the master copy to reach a
    /// version (second hop of staged movements).
    pending_ctrl: Vec<(ArrayId, u64, usize)>,
    pending: Vec<PendingCe>,
    workers: Vec<WorkerHandle>,
    from_workers: Receiver<ToController>,
    stats: LocalStats,
    kernels_by_worker: Vec<u64>,
    trace: SchedTrace,
}

fn trace_on() -> bool {
    std::env::var_os("GROUT_TRACE").is_some()
}

fn worker_loop(
    me: usize,
    rx: Receiver<ToWorker>,
    to_controller: Sender<ToController>,
    peers: Vec<Sender<ToWorker>>,
) {
    let mut store: HashMap<ArrayId, (u64, HostBuf)> = HashMap::new();
    let mut queue: VecDeque<ExecMsg> = VecDeque::new();
    // Forward requests waiting for a version still in flight.
    let mut pending_sends: VecDeque<(ArrayId, u64, Option<usize>)> = VecDeque::new();

    fn forward(
        _me: usize,
        store: &HashMap<ArrayId, (u64, HostBuf)>,
        peers: &[Sender<ToWorker>],
        to_controller: &Sender<ToController>,
        array: ArrayId,
        to: Option<usize>,
    ) {
        let (version, buf) = store.get(&array).expect("checked by caller");
        match to {
            Some(peer) => {
                let _ = peers[peer].send(ToWorker::Data {
                    array,
                    version: *version,
                    buf: buf.clone(),
                });
            }
            None => {
                let _ = to_controller.send(ToController::Data {
                    array,
                    version: *version,
                    buf: buf.clone(),
                });
            }
        }
    }

    fn try_run(
        msg: &ExecMsg,
        store: &mut HashMap<ArrayId, (u64, HostBuf)>,
    ) -> Option<Result<(), LaunchError>> {
        let have = |a: &ArrayId, v: u64, store: &HashMap<ArrayId, (u64, HostBuf)>| {
            store.get(a).is_some_and(|(ver, _)| *ver >= v)
        };
        if !msg.needs.iter().all(|(a, v)| have(a, *v, store)) {
            return None;
        }
        // Temporarily take buffers out of the store to get disjoint &mut.
        let mut taken: Vec<(ArrayId, u64, HostBuf)> = Vec::new();
        for arg in &msg.args {
            if let LocalArg::Buf(a) = arg {
                if let Some((ver, buf)) = store.remove(a) {
                    taken.push((*a, ver, buf));
                }
            }
        }
        let result = {
            let mut kargs: Vec<KernelArg<'_>> = Vec::with_capacity(msg.args.len());
            let mut cursor = taken.iter_mut();
            for arg in &msg.args {
                match arg {
                    LocalArg::Buf(_) => {
                        let (_, _, buf) = cursor.next().expect("taken in order");
                        kargs.push(match buf {
                            HostBuf::F32(v) => KernelArg::F32(v),
                            HostBuf::I32(v) => KernelArg::I32(v),
                        });
                    }
                    LocalArg::F32(v) => kargs.push(KernelArg::Float(*v)),
                    LocalArg::I32(v) => kargs.push(KernelArg::Int(*v)),
                }
            }
            msg.kernel.launch2d(msg.grid, msg.block, &mut kargs)
        };
        for (a, mut ver, buf) in taken {
            if let Some((_, v)) = msg.bumps.iter().find(|(b, _)| *b == a) {
                ver = ver.max(*v);
            }
            store.insert(a, (ver, buf));
        }
        Some(result.map(|_| ()))
    }

    'main: while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Data {
                array,
                version,
                buf,
            } => {
                if trace_on() {
                    eprintln!("[w{me}] Data {array:?} v{version}");
                }
                match store.get(&array) {
                    Some((have, _)) if *have >= version => {}
                    _ => {
                        store.insert(array, (version, buf));
                    }
                }
            }
            ToWorker::Exec(m) => {
                if trace_on() {
                    eprintln!(
                        "[w{me}] Exec ce#{} needs {:?} bumps {:?}",
                        m.dag_index, m.needs, m.bumps
                    );
                }
                queue.push_back(m)
            }
            ToWorker::Send {
                array,
                min_version,
                to,
            } => {
                if trace_on() {
                    eprintln!(
                        "[w{me}] Send {array:?} v>={min_version} -> {to:?} (stored v{:?})",
                        store.get(&array).map(|(v, _)| *v)
                    );
                }
                match store.get(&array) {
                    Some((ver, _)) if *ver >= min_version => {
                        forward(me, &store, &peers, &to_controller, array, to);
                    }
                    _ => pending_sends.push_back((array, min_version, to)),
                }
            }
            ToWorker::Shutdown => break 'main,
        }
        // Drain every runnable queued kernel and every satisfiable pending
        // forward (data may have just arrived or been produced).
        let mut progress = true;
        while progress {
            progress = false;
            for i in 0..pending_sends.len() {
                let (array, min_version, to) = pending_sends[i];
                let ready = store
                    .get(&array)
                    .is_some_and(|(ver, _)| *ver >= min_version);
                if ready {
                    pending_sends.remove(i);
                    forward(me, &store, &peers, &to_controller, array, to);
                    progress = true;
                    break;
                }
            }
            if progress {
                continue;
            }
            for i in 0..queue.len() {
                if let Some(result) = try_run(&queue[i], &mut store) {
                    let m = queue.remove(i).expect("index in range");
                    match result {
                        Ok(()) => {
                            if trace_on() {
                                eprintln!("[w{me}] Done ce#{}", m.dag_index);
                            }
                            let _ = to_controller.send(ToController::Done {
                                dag_index: m.dag_index,
                                worker: me,
                            });
                        }
                        Err(error) => {
                            let _ = to_controller.send(ToController::Failed {
                                dag_index: m.dag_index,
                                error,
                            });
                        }
                    }
                    progress = true;
                    break;
                }
            }
        }
    }
}

impl LocalRuntime {
    /// Spawns the worker threads and wires the channel mesh (controller to
    /// each worker, worker to worker for P2P, workers back to controller).
    pub fn new(cfg: LocalConfig) -> Self {
        let n = cfg.planner.workers;
        assert!(n > 0, "need at least one worker");
        let (to_controller, from_workers) = unbounded::<ToController>();
        let channels: Vec<(Sender<ToWorker>, Receiver<ToWorker>)> =
            (0..n).map(|_| unbounded()).collect();
        let txs: Vec<Sender<ToWorker>> = channels.iter().map(|(t, _)| t.clone()).collect();
        let workers = channels
            .into_iter()
            .enumerate()
            .map(|(i, (tx, rx))| {
                let peers = txs.clone();
                let back = to_controller.clone();
                let join = std::thread::Builder::new()
                    .name(format!("grout-worker-{i}"))
                    .spawn(move || worker_loop(i, rx, back, peers))
                    .expect("spawn worker");
                WorkerHandle {
                    tx,
                    join: Some(join),
                }
            })
            .collect();
        let links = LinkMatrix::uniform(n + 1, 1e9);
        let planner = Planner::new(cfg.planner.clone(), Some(links));
        LocalRuntime {
            planner,
            master: HashMap::new(),
            versions: HashMap::new(),
            master_versions: HashMap::new(),
            present: vec![HashSet::new(); n],
            pending_ctrl: Vec::new(),
            pending: Vec::new(),
            workers,
            from_workers,
            stats: LocalStats::default(),
            kernels_by_worker: vec![0; n],
            trace: SchedTrace::default(),
            cfg,
        }
    }

    /// Kernels completed per worker (load-balance observability).
    pub fn kernels_by_worker(&self) -> &[u64] {
        &self.kernels_by_worker
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.cfg.planner.workers
    }

    /// Allocates a float array of `len` zeros.
    pub fn alloc_f32(&mut self, len: usize) -> ArrayId {
        self.alloc_buf(HostBuf::F32(vec![0.0; len]))
    }

    /// Allocates an int array of `len` zeros.
    pub fn alloc_i32(&mut self, len: usize) -> ArrayId {
        self.alloc_buf(HostBuf::I32(vec![0; len]))
    }

    fn alloc_buf(&mut self, buf: HostBuf) -> ArrayId {
        let id = self.planner.alloc(buf.bytes());
        self.master.insert(id, buf);
        self.versions.insert(id, 0);
        self.master_versions.insert(id, 0);
        id
    }

    /// Host write: synchronizes, pulls the array to the controller, applies
    /// `f` to the float contents, and becomes the exclusive holder.
    pub fn write_f32(
        &mut self,
        array: ArrayId,
        f: impl FnOnce(&mut [f32]),
    ) -> Result<(), LocalError> {
        self.fetch_to_controller(array)?;
        let bytes = match self.master.get(&array) {
            Some(HostBuf::F32(v)) => (v.len() * 4) as u64,
            Some(HostBuf::I32(_)) => {
                return Err(LocalError::BadArgs(format!(
                    "array {array:?} is i32, not f32"
                )))
            }
            None => return Err(LocalError::UnknownArray(array)),
        };
        // Plan the host CE through the shared core: it records the write in
        // the Global DAG and makes the controller the exclusive holder.
        let ce = Ce {
            id: CeId(self.planner.dag().len() as u64),
            kind: CeKind::HostWrite,
            args: vec![CeArg::write(array, bytes)],
        };
        let plan = self.planner.plan_ce(&ce).map_err(LocalError::Plan)?;
        match self.master.get_mut(&array) {
            Some(HostBuf::F32(v)) => f(v),
            _ => unreachable!("type checked above"),
        }
        let v = self.versions.entry(array).or_insert(0);
        *v += 1;
        self.master_versions.insert(array, *v);
        self.planner.mark_completed(plan.dag_index);
        self.trace.record(&plan);
        Ok(())
    }

    /// Host read: synchronizes and returns a copy of the float contents.
    pub fn read_f32(&mut self, array: ArrayId) -> Result<Vec<f32>, LocalError> {
        self.fetch_to_controller(array)?;
        match self.master.get(&array) {
            Some(HostBuf::F32(v)) => Ok(v.clone()),
            Some(HostBuf::I32(_)) => Err(LocalError::BadArgs(format!(
                "array {array:?} is i32, not f32"
            ))),
            None => Err(LocalError::UnknownArray(array)),
        }
    }

    /// Enqueues a kernel CE over a 1-D grid. Dependencies, argument
    /// directions and access patterns come from `kernelc`'s static analysis
    /// of the source.
    pub fn launch(
        &mut self,
        kernel: &Arc<CompiledKernel>,
        grid: u32,
        block: u32,
        args: Vec<LocalArg>,
    ) -> Result<CeId, LocalError> {
        self.launch2d(kernel, (grid, 1), (block, 1), args)
    }

    /// Enqueues a kernel CE over a 2-D grid (`dim3(x, y)` semantics).
    /// The CE is planned immediately (eager, like the simulator); the plan
    /// is transmitted to the workers at the next synchronization point.
    pub fn launch2d(
        &mut self,
        kernel: &Arc<CompiledKernel>,
        grid: (u32, u32),
        block: (u32, u32),
        args: Vec<LocalArg>,
    ) -> Result<CeId, LocalError> {
        if args.len() != kernel.params().len() {
            return Err(LocalError::BadArgs(format!(
                "kernel `{}` expects {} args, got {}",
                kernel.name(),
                kernel.params().len(),
                args.len()
            )));
        }
        // Build the CE argument list from the kernel's analysis.
        let mut ce_args = Vec::new();
        let mut seen = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            if let LocalArg::Buf(a) = arg {
                if seen.contains(a) {
                    return Err(LocalError::Aliased(*a));
                }
                seen.push(*a);
                let bytes = self.array_size(*a).ok_or(LocalError::UnknownArray(*a))?;
                let pa = kernel.access()[i];
                let mode = match (pa.reads, pa.writes) {
                    (true, true) => uvm_sim::AccessMode::ReadWrite,
                    (false, true) => uvm_sim::AccessMode::Write,
                    _ => uvm_sim::AccessMode::Read,
                };
                let pattern = match pa.class {
                    kernelc::AccessClass::Broadcast => uvm_sim::AccessPattern::Gather {
                        touches_per_page: 8.0,
                    },
                    kernelc::AccessClass::Indirect => uvm_sim::AccessPattern::Gather {
                        touches_per_page: 2.0,
                    },
                    _ => uvm_sim::AccessPattern::STREAM_ONCE,
                };
                ce_args.push(CeArg {
                    array: *a,
                    bytes,
                    alloc_bytes: bytes,
                    mode,
                    pattern,
                    advise: uvm_sim::MemAdvise::None,
                });
            }
        }
        let ce = Ce {
            id: CeId(self.planner.dag().len() as u64),
            kind: CeKind::Kernel {
                name: kernel.name().to_string(),
                cost: gpu_sim::KernelCost::default(),
            },
            args: ce_args,
        };
        let id = ce.id;

        // Algorithm 1 runs in the shared core; this runtime executes the
        // returned plan verbatim at synchronize time.
        let plan = self.planner.plan_ce(&ce).map_err(LocalError::Plan)?;

        // Version bookkeeping: read args must reach their current version
        // on the assigned worker, write-only args only need a buffer
        // present (their prior contents are overwritten, CUDA-style).
        let mut needs = Vec::new();
        let mut bumps = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            if let LocalArg::Buf(a) = arg {
                let pa = kernel.access()[i];
                let need = if pa.reads {
                    self.versions.get(a).copied().unwrap_or(0)
                } else {
                    0
                };
                needs.push((*a, need));
                if pa.writes {
                    let v = self.versions.entry(*a).or_insert(0);
                    *v += 1;
                    bumps.push((*a, *v));
                }
            }
        }

        self.trace.record(&plan);
        self.pending.push(PendingCe {
            plan,
            kernel: Arc::clone(kernel),
            grid,
            block,
            args,
            needs,
            bumps,
            dispatched: false,
        });
        Ok(id)
    }

    fn array_size(&self, a: ArrayId) -> Option<u64> {
        self.master.get(&a).map(HostBuf::bytes)
    }

    /// Runs every pending CE to completion across the worker threads.
    pub fn synchronize(&mut self) -> Result<(), LocalError> {
        loop {
            // Transmit a plan only once every DAG parent has completed.
            // Workers hold a single physical copy per array, so a CE's
            // messages must never race ahead of its dependencies: the
            // WAR/WAW edges in the Global DAG are what guarantee each
            // consumer sees exactly the content version it planned
            // against, not a later overwrite.
            for i in 0..self.pending.len() {
                if !self.pending[i].dispatched
                    && self.planner.dag().is_ready(self.pending[i].plan.dag_index)
                {
                    self.transmit(i)?;
                }
            }
            let in_flight = self
                .pending
                .iter()
                .filter(|p| p.dispatched && !self.planner.dag().is_completed(p.plan.dag_index))
                .count();
            if in_flight == 0 {
                break;
            }
            match self.from_workers.recv() {
                Ok(ToController::Done { dag_index, worker }) => {
                    self.planner.mark_completed(dag_index);
                    self.kernels_by_worker[worker] += 1;
                }
                Ok(ToController::Failed { dag_index, error }) => {
                    return Err(LocalError::LaunchAt(dag_index, error));
                }
                Ok(ToController::Data {
                    array,
                    version,
                    buf,
                }) => {
                    self.install_master(array, version, buf);
                    self.flush_pending_ctrl()?;
                }
                Err(_) => return Err(LocalError::WorkerDied(0)),
            }
        }
        let done: Vec<bool> = self
            .pending
            .iter()
            .map(|p| self.planner.dag().is_completed(p.plan.dag_index))
            .collect();
        let mut done = done.into_iter();
        self.pending.retain(|_| !done.next().unwrap());
        Ok(())
    }

    /// Installs a worker-returned buffer as the controller master copy
    /// (keeping the newest version).
    fn install_master(&mut self, array: ArrayId, version: u64, buf: HostBuf) {
        let v = self.versions.entry(array).or_insert(0);
        *v = (*v).max(version);
        let mv = self.master_versions.entry(array).or_insert(0);
        if version >= *mv {
            *mv = version;
            self.master.insert(array, buf);
        }
    }

    /// Forwards any controller-relayed send whose master copy caught up
    /// (the second hop of staged movements).
    fn flush_pending_ctrl(&mut self) -> Result<(), LocalError> {
        let mut i = 0;
        while i < self.pending_ctrl.len() {
            let (array, need, w) = self.pending_ctrl[i];
            if self.master_versions.get(&array).copied().unwrap_or(0) >= need {
                self.pending_ctrl.remove(i);
                self.send_master_to(array, w)?;
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// Ships the controller master copy of `array` to worker `w`.
    fn send_master_to(&mut self, array: ArrayId, w: usize) -> Result<(), LocalError> {
        let buf = self
            .master
            .get(&array)
            .ok_or(LocalError::UnknownArray(array))?
            .clone();
        let version = self.master_versions.get(&array).copied().unwrap_or(0);
        self.workers[w]
            .tx
            .send(ToWorker::Data {
                array,
                version,
                buf,
            })
            .map_err(|_| LocalError::WorkerDied(w))?;
        self.present[w].insert(array);
        Ok(())
    }

    /// Transmits pending CE `i`: issues the plan's data movements as
    /// channel messages, then the kernel itself. No scheduling decision is
    /// made here — the plan is executed verbatim.
    fn transmit(&mut self, i: usize) -> Result<(), LocalError> {
        let w = self.pending[i]
            .plan
            .assigned_node
            .worker_index()
            .expect("kernel plans target workers");
        let need_of = |needs: &[(ArrayId, u64)], a: ArrayId| {
            needs
                .iter()
                .find(|(x, _)| *x == a)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        if trace_on() {
            eprintln!(
                "[ctl] transmit ce#{} -> w{w} needs {:?}",
                self.pending[i].plan.dag_index, self.pending[i].needs
            );
        }

        for k in 0..self.pending[i].plan.movements.len() {
            let m = self.pending[i].plan.movements[k].clone();
            let need = need_of(&self.pending[i].needs, m.array);
            match m.kind {
                MovementKind::P2p => {
                    let src = m.from.worker_index().expect("p2p sources are workers");
                    self.workers[src]
                        .tx
                        .send(ToWorker::Send {
                            array: m.array,
                            min_version: need,
                            to: Some(w),
                        })
                        .map_err(|_| LocalError::WorkerDied(src))?;
                    self.stats.p2p_bytes += m.bytes;
                }
                MovementKind::ControllerSend => {
                    if self.master_versions.get(&m.array).copied().unwrap_or(0) >= need {
                        self.send_master_to(m.array, w)?;
                    } else {
                        // Master copy still in flight from a worker; relay
                        // once it lands.
                        self.pending_ctrl.push((m.array, need, w));
                    }
                    self.stats.send_bytes += m.bytes;
                }
                MovementKind::Staged => {
                    // P2P disabled: first hop pulls the bytes to the
                    // controller, the relay to `w` fires when they land.
                    let src = m.from.worker_index().expect("staged sources are workers");
                    self.workers[src]
                        .tx
                        .send(ToWorker::Send {
                            array: m.array,
                            min_version: need,
                            to: None,
                        })
                        .map_err(|_| LocalError::WorkerDied(src))?;
                    self.pending_ctrl.push((m.array, need, w));
                    self.stats.fetch_bytes += m.bytes;
                    self.stats.send_bytes += m.bytes;
                }
            }
            self.present[w].insert(m.array);
        }

        // Buffers the plan did not move (write-only outputs, or inputs the
        // coherence directory already places here) must still physically
        // exist in the worker's store before the kernel can take them.
        for k in 0..self.pending[i].args.len() {
            let LocalArg::Buf(a) = self.pending[i].args[k] else {
                continue;
            };
            if self.present[w].contains(&a) {
                continue;
            }
            let bytes = self.array_size(a).unwrap_or(0);
            self.send_master_to(a, w)?;
            self.stats.send_bytes += bytes;
        }

        let p = &self.pending[i];
        let msg = ExecMsg {
            dag_index: p.plan.dag_index,
            kernel: Arc::clone(&p.kernel),
            grid: p.grid,
            block: p.block,
            args: p.args.clone(),
            needs: p.needs.clone(),
            bumps: p.bumps.clone(),
        };
        self.workers[w]
            .tx
            .send(ToWorker::Exec(msg))
            .map_err(|_| LocalError::WorkerDied(w))?;
        self.stats.kernels += 1;
        self.pending[i].dispatched = true;
        Ok(())
    }

    /// Ensures the controller master copy is current. When it is not, this
    /// plans a host-read CE through the shared core (mirroring
    /// [`crate::SimRuntime::host_read`]) and executes its movement.
    fn fetch_to_controller(&mut self, array: ArrayId) -> Result<(), LocalError> {
        if !self.master.contains_key(&array) {
            return Err(LocalError::UnknownArray(array));
        }
        self.synchronize()?;
        if self
            .planner
            .coherence()
            .up_to_date_on(array, Location::CONTROLLER)
        {
            return Ok(());
        }
        let bytes = self.array_size(array).unwrap_or(0);
        let ce = Ce {
            id: CeId(self.planner.dag().len() as u64),
            kind: CeKind::HostRead,
            args: vec![CeArg::read(array, bytes)],
        };
        let plan = self.planner.plan_ce(&ce).map_err(LocalError::Plan)?;
        let min_version = self.versions.get(&array).copied().unwrap_or(0);
        for m in &plan.movements {
            let Some(holder) = m.from.worker_index() else {
                continue;
            };
            self.workers[holder]
                .tx
                .send(ToWorker::Send {
                    array: m.array,
                    min_version,
                    to: None,
                })
                .map_err(|_| LocalError::WorkerDied(holder))?;
            // Wait for the bytes (completions for other CEs may interleave).
            loop {
                match self.from_workers.recv() {
                    Ok(ToController::Data {
                        array: a,
                        version,
                        buf,
                    }) => {
                        let landed = buf.bytes();
                        self.install_master(a, version, buf);
                        self.flush_pending_ctrl()?;
                        if a == array {
                            self.stats.fetch_bytes += landed;
                            break;
                        }
                    }
                    Ok(ToController::Done { dag_index, worker }) => {
                        self.planner.mark_completed(dag_index);
                        self.kernels_by_worker[worker] += 1;
                    }
                    Ok(ToController::Failed { error, .. }) => {
                        return Err(LocalError::Launch(error));
                    }
                    Err(_) => return Err(LocalError::WorkerDied(holder)),
                }
            }
        }
        self.planner.mark_completed(plan.dag_index);
        self.trace.record(&plan);
        Ok(())
    }

    /// Failure injection: shuts a worker down immediately. Any CE later
    /// routed to it (or any transfer sourced from it) surfaces as
    /// [`LocalError::WorkerDied`] instead of hanging — the behaviour a
    /// deployment would see when a node drops out mid-run.
    pub fn kill_worker(&mut self, worker: usize) {
        let _ = self.workers[worker].tx.send(ToWorker::Shutdown);
        if let Some(j) = self.workers[worker].join.take() {
            let _ = j.join();
        }
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> LocalStats {
        self.stats
    }

    /// The Global DAG (read-only).
    pub fn dag(&self) -> &DepDag {
        self.planner.dag()
    }

    /// The coherence directory (read-only).
    pub fn coherence(&self) -> &Coherence {
        self.planner.coherence()
    }

    /// The trace of planned CEs (ring buffer, oldest first).
    pub fn sched_trace(&self) -> &SchedTrace {
        &self.trace
    }

    /// Installs a callback invoked for every planned CE.
    pub fn set_sched_observer(&mut self, observer: PlanObserver) {
        self.trace.set_observer(observer);
    }
}

impl Drop for LocalRuntime {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(ToWorker::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelc::compile_one;

    const SAXPY: &str = "__global__ void saxpy(float* y, const float* x, float a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { y[i] = a * x[i] + y[i]; }
    }";

    fn rt(workers: usize) -> LocalRuntime {
        LocalRuntime::new(LocalConfig::new(workers, PolicyKind::RoundRobin))
    }

    #[test]
    fn saxpy_end_to_end() {
        let mut rt = rt(2);
        let n = 10_000usize;
        let y = rt.alloc_f32(n);
        let x = rt.alloc_f32(n);
        rt.write_f32(y, |v| v.iter_mut().for_each(|e| *e = 1.0))
            .unwrap();
        rt.write_f32(x, |v| {
            v.iter_mut().enumerate().for_each(|(i, e)| *e = i as f32)
        })
        .unwrap();
        let k = Arc::new(compile_one(SAXPY, "saxpy").unwrap());
        rt.launch(
            &k,
            64,
            256,
            vec![
                LocalArg::Buf(y),
                LocalArg::Buf(x),
                LocalArg::F32(3.0),
                LocalArg::I32(n as i32),
            ],
        )
        .unwrap();
        let out = rt.read_f32(y).unwrap();
        assert_eq!(out[10], 31.0);
        assert_eq!(out[9999], 3.0 * 9999.0 + 1.0);
        assert_eq!(rt.stats().kernels, 1);
    }

    #[test]
    fn dependent_kernels_run_in_order() {
        let mut rt = rt(2);
        let n = 1024usize;
        let a = rt.alloc_f32(n);
        let k_inc = Arc::new(
            compile_one(
                "__global__ void inc(float* a, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = a[i] + 1.0; }
                }",
                "inc",
            )
            .unwrap(),
        );
        // Ten dependent increments must serialize even across two workers.
        for _ in 0..10 {
            rt.launch(
                &k_inc,
                4,
                256,
                vec![LocalArg::Buf(a), LocalArg::I32(n as i32)],
            )
            .unwrap();
        }
        let out = rt.read_f32(a).unwrap();
        assert!(out.iter().all(|&v| v == 10.0), "got {}", out[0]);
    }

    #[test]
    fn independent_kernels_spread_across_workers() {
        let mut rt = rt(2);
        let n = 1 << 16;
        let a = rt.alloc_f32(n);
        let b = rt.alloc_f32(n);
        let k = Arc::new(
            compile_one(
                "__global__ void fill(float* a, float v, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = v; }
                }",
                "fill",
            )
            .unwrap(),
        );
        rt.launch(
            &k,
            256,
            256,
            vec![
                LocalArg::Buf(a),
                LocalArg::F32(5.0),
                LocalArg::I32(n as i32),
            ],
        )
        .unwrap();
        rt.launch(
            &k,
            256,
            256,
            vec![
                LocalArg::Buf(b),
                LocalArg::F32(7.0),
                LocalArg::I32(n as i32),
            ],
        )
        .unwrap();
        assert_eq!(rt.read_f32(a).unwrap()[123], 5.0);
        assert_eq!(rt.read_f32(b).unwrap()[456], 7.0);
    }

    #[test]
    fn p2p_moves_data_between_workers() {
        // Producer on worker 0 (round-robin), consumer lands on worker 1;
        // the array must travel P2P.
        let mut rt = rt(2);
        let n = 4096usize;
        let a = rt.alloc_f32(n);
        let b = rt.alloc_f32(n);
        let fill = Arc::new(
            compile_one(
                "__global__ void fill(float* a, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = 2.0; }
                }",
                "fill",
            )
            .unwrap(),
        );
        let copy = Arc::new(
            compile_one(
                "__global__ void copy(float* dst, const float* src, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { dst[i] = src[i]; }
                }",
                "copy",
            )
            .unwrap(),
        );
        rt.launch(
            &fill,
            16,
            256,
            vec![LocalArg::Buf(a), LocalArg::I32(n as i32)],
        )
        .unwrap();
        let _ = b;
        let c = rt.alloc_f32(n);
        // Round-robin sends the consumer to worker 1; `a` travels P2P.
        rt.launch(
            &copy,
            16,
            256,
            vec![LocalArg::Buf(c), LocalArg::Buf(a), LocalArg::I32(n as i32)],
        )
        .unwrap();
        rt.synchronize().unwrap();
        assert_eq!(rt.read_f32(c).unwrap()[0], 2.0);
        assert!(rt.stats().p2p_bytes > 0, "stats: {:?}", rt.stats());
    }

    #[test]
    fn launch_errors_surface() {
        let mut rt = rt(1);
        let a = rt.alloc_f32(4);
        let k = Arc::new(
            compile_one(
                "__global__ void oob(float* a) { a[blockIdx.x * blockDim.x + threadIdx.x] = 1.0; }",
                "oob",
            )
            .unwrap(),
        );
        rt.launch(&k, 8, 8, vec![LocalArg::Buf(a)]).unwrap();
        let err = rt.synchronize().unwrap_err();
        assert!(matches!(
            err,
            LocalError::Launch(LaunchError::OutOfBounds { .. })
                | LocalError::LaunchAt(_, LaunchError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn aliasing_rejected() {
        let mut rt = rt(1);
        let a = rt.alloc_f32(8);
        let k = Arc::new(
            compile_one(
                "__global__ void two(float* x, const float* y, int n) {
                    int i = threadIdx.x;
                    if (i < n) { x[i] = y[i]; }
                }",
                "two",
            )
            .unwrap(),
        );
        let err = rt
            .launch(
                &k,
                1,
                8,
                vec![LocalArg::Buf(a), LocalArg::Buf(a), LocalArg::I32(8)],
            )
            .unwrap_err();
        assert!(matches!(err, LocalError::Aliased(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut rt = rt(1);
        let k = Arc::new(compile_one(SAXPY, "saxpy").unwrap());
        assert!(matches!(
            rt.launch(&k, 1, 1, vec![LocalArg::I32(0)]),
            Err(LocalError::BadArgs(_))
        ));
    }

    #[test]
    fn killed_worker_surfaces_as_error_not_hang() {
        let mut rt = rt(2);
        let a = rt.alloc_f32(256);
        let k = Arc::new(
            compile_one(
                "__global__ void inc(float* a, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = a[i] + 1.0; }
                }",
                "inc",
            )
            .unwrap(),
        );
        rt.kill_worker(0);
        // Round-robin will try worker 0 first; the dead channel must turn
        // into an error rather than a lost message.
        let mut died = false;
        for _ in 0..2 {
            rt.launch(&k, 1, 256, vec![LocalArg::Buf(a), LocalArg::I32(256)])
                .unwrap();
            if matches!(rt.synchronize(), Err(LocalError::WorkerDied(_))) {
                died = true;
                break;
            }
        }
        assert!(died, "worker death must surface");
    }

    #[test]
    fn min_transfer_size_keeps_work_local() {
        let mut rt = LocalRuntime::new(LocalConfig::new(
            2,
            PolicyKind::MinTransferSize(crate::policy::ExplorationLevel::Low),
        ));
        let n = 1 << 14;
        let a = rt.alloc_f32(n);
        let k = Arc::new(
            compile_one(
                "__global__ void inc(float* a, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = a[i] + 1.0; }
                }",
                "inc",
            )
            .unwrap(),
        );
        for _ in 0..8 {
            rt.launch(&k, 64, 256, vec![LocalArg::Buf(a), LocalArg::I32(n as i32)])
                .unwrap();
        }
        rt.synchronize().unwrap();
        // First send moves the array once; locality keeps it there after.
        assert_eq!(rt.stats().send_bytes, (n * 4) as u64);
        assert_eq!(rt.stats().p2p_bytes, 0);
        assert_eq!(rt.read_f32(a).unwrap()[0], 8.0);
    }

    #[test]
    fn local_trace_mirrors_the_planner() {
        let mut rt = rt(2);
        let n = 1024usize;
        let a = rt.alloc_f32(n);
        let fill = Arc::new(
            compile_one(
                "__global__ void fill(float* a, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = 3.0; }
                }",
                "fill",
            )
            .unwrap(),
        );
        let inc = Arc::new(
            compile_one(
                "__global__ void inc(float* a, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = a[i] + 1.0; }
                }",
                "inc",
            )
            .unwrap(),
        );
        rt.launch(
            &fill,
            4,
            256,
            vec![LocalArg::Buf(a), LocalArg::I32(n as i32)],
        )
        .unwrap();
        rt.launch(
            &inc,
            4,
            256,
            vec![LocalArg::Buf(a), LocalArg::I32(n as i32)],
        )
        .unwrap();
        rt.synchronize().unwrap();
        let plans: Vec<&Plan> = rt.sched_trace().plans().collect();
        assert_eq!(plans.len(), 2);
        // fill -> worker 0 (round-robin), inc -> worker 1 with a P2P pull.
        assert_eq!(plans[0].assigned_node, Location::worker(0));
        assert_eq!(plans[1].deps, vec![0]);
        assert_eq!(plans[1].movements[0].kind, MovementKind::P2p);
        assert!(plans[1].placement.is_none(), "no devices to place on");
        assert_eq!(rt.read_f32(a).unwrap()[0], 4.0);
    }
}
