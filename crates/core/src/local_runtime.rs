//! The local (real-execution) runtime: GrOUT's Controller/Worker
//! architecture as actual threads.
//!
//! `LocalRuntime` is the second *plan executor* over the shared scheduling
//! core: every CE goes through the same [`Planner`] as
//! [`crate::SimRuntime`] (paper Algorithm 1 — dependencies → node
//! assignment → data movements) and the resulting [`Plan`] is executed for
//! real. Workers are OS threads holding local array copies, the controller
//! transmits plans over crossbeam channels, data moves as buffer messages
//! (controller-send or true peer-to-peer between worker threads), and
//! kernels compiled by `kernelc` execute on the host CPU (rayon-parallel
//! across blocks).
//!
//! Execution is deferred, matching GrCUDA's asynchronous semantics:
//! `launch` *plans* a CE eagerly (so the planner's coherence view evolves
//! exactly as in the simulator) and `synchronize` transmits the plans.
//! Transmission is readiness-gated on the Global DAG — a CE's messages go
//! out only after every parent (including WAR/WAW anti-dependencies)
//! completed, so each worker's single physical copy per array holds
//! exactly the content a consumer planned against. Monotonic per-array
//! content versions carried in the messages enforce the residual dataflow
//! ordering: a worker only runs a kernel once every input reached the
//! version the plan demands, and only forwards a copy once it is fresh
//! enough.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use desim::SimDuration;
use kernelc::{CompiledKernel, KernelArg, LaunchError};

use crate::ce::{ArrayId, Ce, CeArg, CeId, CeKind};
use crate::coherence::{Coherence, Location};
use crate::dag::{DagIndex, DepDag};
use crate::faults::{replay_closure, FailureDetector, SchedEvent};
use crate::policy::{LinkMatrix, PolicyKind};
use crate::scheduler::{
    LoggedPlanner, MovementKind, OpSink, Plan, PlanError, PlanObserver, Planner, PlannerConfig,
    PlannerOp, SchedTrace,
};
use crate::telemetry::{monotonic_ns, ArgValue, Lane, LaneAligner, Metrics, SpanEvent, Telemetry};
use crate::transport::{
    trace_on, ChannelTransport, CtrlMsg, ExecFault, ExecSpec, Liveness, Transport,
    TransportRecvError, WorkerCounters, WorkerMsg, WorkerSpan, WorkerSpanKind,
};

/// Errors surfaced by the local runtime.
#[derive(Debug, thiserror::Error)]
#[non_exhaustive]
pub enum LocalError {
    /// A kernel launch failed inside a worker.
    #[error("kernel launch failed: {0}")]
    Launch(LaunchError),
    /// A kernel launch failed; includes the failing CE's DAG index.
    #[error("CE #{0} failed: {1}")]
    LaunchAt(DagIndex, LaunchError),
    /// The same array was passed twice to one kernel (aliasing unsupported).
    #[error("array {0:?} aliased within one kernel")]
    Aliased(ArrayId),
    /// Unknown array id.
    #[error("unknown array {0:?}")]
    UnknownArray(ArrayId),
    /// Argument count/type mismatch against the kernel signature.
    #[error("bad kernel arguments: {0}")]
    BadArgs(String),
    /// A worker thread disappeared (channel closed or liveness probe found
    /// it gone) and recovery was disabled or impossible.
    #[error("worker {worker} died (in-flight CE {at_ce:?})")]
    WorkerDied {
        /// The worker that actually died.
        worker: usize,
        /// The lowest in-flight CE on that worker, when one was dispatched.
        at_ce: Option<DagIndex>,
    },
    /// A worker thread could not be spawned at startup.
    #[error("worker {worker} failed to spawn: {reason}")]
    SpawnFailed {
        /// The worker that never came up.
        worker: usize,
        /// The OS error.
        reason: String,
    },
    /// Every worker is dead or quarantined; no node can run kernels.
    #[error("no healthy workers remain")]
    NoHealthyWorkers,
    /// Recovery could not reconstruct a lost array version: no surviving
    /// copy, no archived snapshot, and no completed writer CE to replay.
    #[error("array {array:?} version {version} is unrecoverable")]
    Unrecoverable {
        /// The lost array.
        array: ArrayId,
        /// The unreconstructible content version.
        version: u64,
    },
    /// The shared scheduling core rejected the CE.
    #[error("planning failed: {0}")]
    Plan(PlanError),
    /// An elastic membership change (join/leave) could not complete.
    #[error("membership change failed: {0}")]
    Membership(String),
}

/// A host-side buffer (the backing store of a framework array).
#[derive(Debug, Clone, PartialEq)]
pub enum HostBuf {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 32-bit ints.
    I32(Vec<i32>),
}

impl HostBuf {
    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        match self {
            HostBuf::F32(v) => (v.len() * 4) as u64,
            HostBuf::I32(v) => (v.len() * 4) as u64,
        }
    }
}

/// A launch argument in the local runtime.
#[derive(Debug, Clone, Copy)]
pub enum LocalArg {
    /// A framework array.
    Buf(ArrayId),
    /// Float scalar.
    F32(f32),
    /// Int scalar.
    I32(i32),
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalStats {
    /// Kernels executed across all workers.
    pub kernels: u64,
    /// Bytes moved controller->worker.
    pub send_bytes: u64,
    /// Bytes moved worker->worker (P2P).
    pub p2p_bytes: u64,
    /// Bytes moved worker->controller.
    pub fetch_bytes: u64,
    /// Completed ancestor CEs re-executed on the controller during
    /// recovery (lineage replay).
    pub replays: u64,
    /// Bytes re-sent because of retries, recoveries, or dropped transfers
    /// (kept out of the planned-movement counters above so locality
    /// assertions on fault-free traffic stay exact).
    pub redriven_bytes: u64,
}

/// Configuration of the local deployment.
#[derive(Debug, Clone)]
pub struct LocalConfig {
    /// The shared scheduling core's knobs: worker count, inter-node policy
    /// and the paper's ablation switches.
    pub planner: PlannerConfig,
}

impl LocalConfig {
    /// A deployment with `workers` threads under `policy` and the paper's
    /// default planner knobs.
    pub fn new(workers: usize, policy: PolicyKind) -> Self {
        LocalConfig {
            planner: PlannerConfig::new(workers, policy),
        }
    }
}

impl Default for LocalConfig {
    fn default() -> Self {
        LocalConfig::new(2, PolicyKind::RoundRobin)
    }
}

/// A planned-but-not-yet-transmitted kernel CE.
struct PendingCe {
    plan: Plan,
    kernel: Arc<CompiledKernel>,
    grid: (u32, u32),
    block: (u32, u32),
    args: Vec<LocalArg>,
    needs: Vec<(ArrayId, u64)>,
    bumps: Vec<(ArrayId, u64)>,
    dispatched: bool,
    /// Recovery touched this CE (reassignment or a dead movement source):
    /// its planned movements are void, so the controller supplies every
    /// input directly at (re)transmission.
    replanned: bool,
}

/// Everything needed to re-execute a kernel CE on the controller
/// (deterministic lineage replay). Kept past completion; memory is bounded
/// by workload length, which is fine at the scale this runtime targets.
#[derive(Clone)]
struct LoggedCe {
    kernel: Arc<CompiledKernel>,
    grid: (u32, u32),
    block: (u32, u32),
    args: Vec<LocalArg>,
    needs: Vec<(ArrayId, u64)>,
    bumps: Vec<(ArrayId, u64)>,
}

/// Element type and length of an array, for reconstructing the version-0
/// (all-zeros) contents during replay.
#[derive(Debug, Clone, Copy)]
enum BufShape {
    F32(usize),
    I32(usize),
}

impl BufShape {
    fn of(buf: &HostBuf) -> BufShape {
        match buf {
            HostBuf::F32(v) => BufShape::F32(v.len()),
            HostBuf::I32(v) => BufShape::I32(v.len()),
        }
    }

    fn zeros(self) -> HostBuf {
        match self {
            BufShape::F32(n) => HostBuf::F32(vec![0.0; n]),
            BufShape::I32(n) => HostBuf::I32(vec![0; n]),
        }
    }
}

/// The threaded GrOUT runtime: executes [`Plan`]s over a [`Transport`]
/// (in-process crossbeam channels by default; TCP via `grout-net`).
pub struct LocalRuntime {
    cfg: LocalConfig,
    planner: LoggedPlanner,
    /// Controller master copies (authoritative when coherence says so).
    master: HashMap<ArrayId, HostBuf>,
    /// Monotonic content version per array (bumped by every writer CE).
    versions: HashMap<ArrayId, u64>,
    /// Version the controller's master copy actually holds (lags
    /// `versions` while fresh content still lives on a worker).
    master_versions: HashMap<ArrayId, u64>,
    /// Arrays ever delivered to each worker's local store.
    present: Vec<HashSet<ArrayId>>,
    /// Controller-relayed sends waiting for the master copy to reach a
    /// version (second hop of staged movements).
    pending_ctrl: Vec<(ArrayId, u64, usize)>,
    pending: Vec<PendingCe>,
    /// The controller↔worker message fabric (threads+channels or TCP).
    transport: Box<dyn Transport>,
    /// Controller-assigned kernel ids, keyed by `Arc` identity.
    kernel_ids: HashMap<usize, u64>,
    next_kernel_id: u64,
    /// Kernels already shipped to each worker (one `LoadKernel` each).
    loaded: Vec<HashSet<u64>>,
    stats: LocalStats,
    kernels_by_worker: Vec<u64>,
    trace: SchedTrace,
    /// Per-worker liveness + membership epoch.
    detector: FailureDetector,
    /// Replay log: every launched kernel CE, by DAG index.
    logged: HashMap<DagIndex, LoggedCe>,
    /// Which CE produced each (array, version) — host writes included.
    version_writer: HashMap<(ArrayId, u64), DagIndex>,
    /// Snapshots of superseded controller copies, keyed by exact version.
    /// Together with `logged` this is what makes lost state reconstructible.
    archive: HashMap<(ArrayId, u64), HostBuf>,
    /// Array shapes, for zero-initialized version-0 replay inputs.
    shapes: HashMap<ArrayId, BufShape>,
    /// Transient-failure attempts per CE (1-based after first failure).
    attempts: HashMap<DagIndex, u32>,
    /// CEs whose one-shot fault has fired (never re-injected).
    spent: HashSet<DagIndex>,
    /// CEs whose first transfer was dropped and not yet re-driven.
    wedged: HashSet<DagIndex>,
    /// Drop/delay faults already injected (one-shot).
    injected_drop: HashSet<DagIndex>,
    /// Optional span/instant recorder (wall-clock timestamps relative to
    /// `origin`).
    telemetry: Telemetry,
    /// Always-on metrics registry.
    metrics: Metrics,
    /// Wall-clock anchor for telemetry timestamps.
    origin: std::time::Instant,
    /// [`monotonic_ns`] at construction: converts clock-aligned worker
    /// span stamps (controller monotonic domain) to run-relative ns.
    origin_mono: u64,
    /// Per-lane watermarks keeping merged worker spans monotone even
    /// when the clock-offset estimate shifts between batches.
    aligner: LaneAligner,
    /// Workers that have streamed at least one telemetry batch; their
    /// `Done`s skip the controller-side synthetic execute span (the
    /// worker's own clock-aligned span is strictly better).
    saw_worker_telemetry: Vec<bool>,
    /// Workers this controller asked to depart ([`Self::leave_worker`]):
    /// their [`WorkerMsg::Leave`] ack is expected and must not be treated
    /// as a death.
    expected_leave: HashSet<usize>,
}

impl LocalRuntime {
    /// Fallible startup: a worker whose thread fails to spawn starts
    /// quarantined (degraded mode) instead of panicking the deployment;
    /// only zero live workers is an error.
    pub fn try_new(cfg: LocalConfig) -> Result<Self, LocalError> {
        crate::builder::validate_planner(&cfg.planner).map_err(LocalError::Plan)?;
        let transport = ChannelTransport::new(cfg.planner.workers);
        LocalRuntime::with_transport(cfg, Box::new(transport))
    }

    /// Startup over an explicit [`Transport`] (the in-process channel mesh
    /// or a `grout-net` TCP mesh). Workers the transport reports as
    /// spawn-failed start quarantined; only zero live workers is an error.
    /// The planner's link matrix comes from
    /// [`Transport::measured_links`] when the transport probed one
    /// (min-transfer-time then prices real bandwidth), uniform otherwise.
    pub fn with_transport(
        cfg: LocalConfig,
        transport: Box<dyn Transport>,
    ) -> Result<Self, LocalError> {
        crate::builder::validate_planner(&cfg.planner).map_err(LocalError::Plan)?;
        let n = cfg.planner.workers;
        if transport.workers() != n {
            return Err(LocalError::Plan(PlanError::InvalidConfig(
                "transport endpoint count must match the configured worker count",
            )));
        }
        let failures: Vec<(usize, String)> = transport.spawn_failures().to_vec();
        if failures.len() == n {
            let (worker, reason) = failures.into_iter().next().expect("n > 0 workers");
            return Err(LocalError::SpawnFailed { worker, reason });
        }
        let links = transport
            .measured_links()
            .cloned()
            .unwrap_or_else(|| LinkMatrix::uniform(n + 1, 1e9));
        let mut metrics = Metrics::with_workers(n);
        metrics.set_bandwidth(
            if transport.measured_links().is_some() {
                "measured"
            } else {
                "uniform"
            },
            transport.kind(),
            &links,
        );
        let mut planner = LoggedPlanner::new(Planner::new(cfg.planner.clone(), Some(links)));
        let mut detector = FailureDetector::new(n);
        let mut trace = SchedTrace::default();
        for (i, _reason) in &failures {
            planner.quarantine(*i).expect("not all workers failed");
            detector.mark_dead(*i);
            let event = SchedEvent::SpawnFailed { worker: *i };
            metrics.record_event(&event);
            trace.record_event(event);
        }
        Ok(LocalRuntime {
            planner,
            master: HashMap::new(),
            versions: HashMap::new(),
            master_versions: HashMap::new(),
            present: vec![HashSet::new(); n],
            pending_ctrl: Vec::new(),
            pending: Vec::new(),
            transport,
            kernel_ids: HashMap::new(),
            next_kernel_id: 0,
            loaded: vec![HashSet::new(); n],
            stats: LocalStats::default(),
            kernels_by_worker: vec![0; n],
            trace,
            detector,
            logged: HashMap::new(),
            version_writer: HashMap::new(),
            archive: HashMap::new(),
            shapes: HashMap::new(),
            attempts: HashMap::new(),
            spent: HashSet::new(),
            wedged: HashSet::new(),
            injected_drop: HashSet::new(),
            telemetry: Telemetry::off(),
            metrics,
            origin: std::time::Instant::now(),
            origin_mono: monotonic_ns(),
            aligner: LaneAligner::new(),
            saw_worker_telemetry: vec![false; n],
            expected_leave: HashSet::new(),
            cfg,
        })
    }

    /// Attaches a telemetry recorder; the handle is shared with the
    /// planner so its marks land in the same trace, and every worker is
    /// told to start (or stop) recording its own spans
    /// ([`CtrlMsg::Observe`] — a no-op against a pre-telemetry peer).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.planner.set_telemetry(telemetry.clone());
        let enabled = telemetry.enabled();
        self.telemetry = telemetry;
        for w in 0..self.transport.workers() {
            if self.detector.is_alive(w) {
                let _ = self.transport.send(w, CtrlMsg::Observe { enabled });
            }
        }
    }

    /// Read-only view of the planner state machine (queries only; every
    /// mutation goes through the op log).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The ordered operation log: every [`PlannerOp`] applied so far.
    pub fn op_log(&self) -> &[PlannerOp] {
        self.planner.ops()
    }

    /// Attaches an [`OpSink`] observing every planner op (journal, log
    /// shipping). The sink is caught up on the existing log first.
    pub fn add_op_sink(&mut self, sink: Box<dyn OpSink>) {
        self.planner.add_sink(sink);
    }

    /// Snapshots the transport's per-peer wire counters into the metrics
    /// registry (refreshed at every `synchronize`; call again before
    /// exporting if traffic happened since). Transports that track
    /// nothing (the simulator has no transport at all) leave it empty.
    pub fn refresh_wire_metrics(&mut self) {
        let wire = self.transport.wire_stats();
        if !wire.is_empty() {
            self.metrics.wire = wire;
        }
        self.metrics.session = self.transport.session_id();
    }

    /// Merges one worker telemetry batch: spans are shifted into the
    /// controller clock domain with the transport's offset estimate,
    /// clamped monotone per lane, and emitted through the controller's
    /// recorder; counters land as counter samples on the worker's
    /// control lane.
    fn merge_worker_telemetry(
        &mut self,
        worker: usize,
        backlog: u64,
        counters: WorkerCounters,
        spans: Vec<WorkerSpan>,
    ) {
        if let Some(seen) = self.saw_worker_telemetry.get_mut(worker) {
            *seen = true;
        }
        if !self.telemetry.enabled() {
            return;
        }
        let offset = self.transport.clock_offset_ns(worker);
        for s in &spans {
            let lane = match s.kind {
                WorkerSpanKind::Execute => Lane::stream(worker + 1, 0, 0),
                WorkerSpanKind::Transfer => Lane::network(worker + 1),
                WorkerSpanKind::Recompile => Lane::control(worker + 1),
            };
            let cat = match s.kind {
                WorkerSpanKind::Execute => "execute",
                WorkerSpanKind::Transfer => "transfer",
                WorkerSpanKind::Recompile => "recompile",
            };
            // Worker monotonic → controller monotonic → run-relative.
            let ctrl_ns = (s.start_ns as i64)
                .saturating_add(offset)
                .saturating_sub(self.origin_mono as i64)
                .max(0) as u64;
            let start_ns = self.aligner.align(lane, ctrl_ns, s.dur_ns);
            let mut args: Vec<(&'static str, ArgValue)> =
                vec![("worker", ArgValue::U64(worker as u64))];
            if s.dag_index != u64::MAX {
                args.push(("dag_index", ArgValue::U64(s.dag_index)));
            }
            if s.bytes > 0 {
                args.push(("bytes", ArgValue::U64(s.bytes)));
            }
            self.telemetry.span(&SpanEvent {
                name: &s.name,
                cat,
                lane,
                start_ns,
                dur_ns: s.dur_ns,
                args: &args,
            });
        }
        let at = self.now_ns();
        let lane = Lane::control(worker + 1);
        self.telemetry
            .counter("worker_kernels", lane, at, counters.kernels as f64);
        self.telemetry
            .counter("worker_bytes_out", lane, at, counters.bytes_out as f64);
        self.telemetry
            .counter("worker_bytes_in", lane, at, counters.bytes_in as f64);
        self.telemetry
            .counter("telemetry_backlog", lane, at, backlog as f64);
        if counters.dropped > 0 {
            self.telemetry
                .counter("telemetry_dropped", lane, at, counters.dropped as f64);
        }
    }

    /// The always-on metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Wall-clock nanoseconds since this runtime came up (telemetry
    /// timestamp domain).
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Records a scheduling event in the trace, metrics and telemetry.
    fn note_event(&mut self, event: SchedEvent) {
        self.metrics.record_event(&event);
        self.telemetry.sched_event(&event, self.now_ns());
        self.trace.record_event(event);
    }

    /// Re-polls the transport for workers sitting in the suspect grace
    /// window and reinstates any whose session has resumed. Runs before
    /// every placement: a resume that completed since the last liveness
    /// probe (e.g. a completion unblocked `synchronize` first) must clear
    /// the suspended mask *before* the next CE is planned, or the plan
    /// would route around a worker that is in fact back — diverging from
    /// the fault-free run the chaos differential compares against.
    fn reinstate_resumed(&mut self) {
        for i in 0..self.transport.workers() {
            if self.detector.is_suspected(i) && self.transport.liveness(i) == Liveness::Alive {
                self.detector.reinstate(i);
                self.planner.reinstate(i);
                self.note_event(SchedEvent::Reinstated {
                    worker: i,
                    epoch: self.detector.epoch(),
                });
            }
        }
    }

    /// Plans one CE through the shared core, timing the decision and
    /// emitting a plan span.
    fn plan_with_span(&mut self, ce: &Ce) -> Result<Plan, LocalError> {
        self.reinstate_resumed();
        let started = std::time::Instant::now();
        let start_ns = self.now_ns();
        let plan = self.planner.plan_ce(ce).map_err(LocalError::Plan)?;
        let dur_ns = started.elapsed().as_nanos() as u64;
        self.metrics.plan.record(dur_ns);
        if self.telemetry.enabled() {
            self.telemetry.span(&SpanEvent {
                name: "plan",
                cat: "plan",
                lane: Lane::CONTROLLER,
                start_ns,
                dur_ns,
                args: &[
                    ("dag_index", ArgValue::U64(plan.dag_index as u64)),
                    ("node", ArgValue::U64(plan.assigned_node.0 as u64)),
                    ("movements", ArgValue::U64(plan.movements.len() as u64)),
                    ("bytes", ArgValue::U64(plan.movement_bytes())),
                ],
            });
        }
        Ok(plan)
    }

    /// Bookkeeping for a kernel completion reported by a worker.
    fn on_done(&mut self, dag_index: DagIndex, worker: usize, elapsed_ns: u64) {
        self.planner.mark_completed(dag_index);
        if let Some(k) = self.kernels_by_worker.get_mut(worker) {
            *k += 1;
        }
        self.metrics.record_kernel(worker, elapsed_ns);
        self.metrics.execute.record(elapsed_ns);
        // Fallback synthetic span, only while the worker streams no
        // telemetry of its own (v1 peer or recording off): its batches
        // carry clock-aligned execute spans that supersede this estimate.
        let worker_traces = self
            .saw_worker_telemetry
            .get(worker)
            .copied()
            .unwrap_or(false);
        if self.telemetry.enabled() && !worker_traces {
            // The span is anchored at the controller's receipt time; the
            // duration is the worker-measured execution time, so the start
            // is approximate by the notification latency.
            let end = self.now_ns();
            let name: String = self
                .logged
                .get(&dag_index)
                .map(|l| l.kernel.name().to_string())
                .unwrap_or_else(|| format!("ce#{dag_index}"));
            self.telemetry.span(&SpanEvent {
                name: &name,
                cat: "execute",
                lane: Lane::stream(worker + 1, 0, 0),
                start_ns: end.saturating_sub(elapsed_ns),
                dur_ns: elapsed_ns,
                args: &[("dag_index", ArgValue::U64(dag_index as u64))],
            });
        }
    }

    /// Kernels completed per worker (load-balance observability).
    pub fn kernels_by_worker(&self) -> &[u64] {
        &self.kernels_by_worker
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.cfg.planner.workers
    }

    /// Allocates a float array of `len` zeros.
    pub fn alloc_f32(&mut self, len: usize) -> ArrayId {
        self.alloc_buf(HostBuf::F32(vec![0.0; len]))
    }

    /// Allocates an int array of `len` zeros.
    pub fn alloc_i32(&mut self, len: usize) -> ArrayId {
        self.alloc_buf(HostBuf::I32(vec![0; len]))
    }

    fn alloc_buf(&mut self, buf: HostBuf) -> ArrayId {
        let id = self.planner.alloc(buf.bytes());
        self.shapes.insert(id, BufShape::of(&buf));
        self.master.insert(id, buf);
        self.versions.insert(id, 0);
        self.master_versions.insert(id, 0);
        id
    }

    /// Host write: synchronizes, pulls the array to the controller, applies
    /// `f` to the float contents, and becomes the exclusive holder.
    pub fn write_f32(
        &mut self,
        array: ArrayId,
        f: impl FnOnce(&mut [f32]),
    ) -> Result<(), LocalError> {
        self.fetch_to_controller(array)?;
        let bytes = match self.master.get(&array) {
            Some(HostBuf::F32(v)) => (v.len() * 4) as u64,
            Some(HostBuf::I32(_)) => {
                return Err(LocalError::BadArgs(format!(
                    "array {array:?} is i32, not f32"
                )))
            }
            None => return Err(LocalError::UnknownArray(array)),
        };
        // Plan the host CE through the shared core: it records the write in
        // the Global DAG and makes the controller the exclusive holder.
        let ce = Ce {
            id: CeId(self.planner.dag().len() as u64),
            kind: CeKind::HostWrite,
            args: vec![CeArg::write(array, bytes)],
        };
        let plan = self.plan_with_span(&ce)?;
        // Snapshot the superseded contents, then the fresh ones: a host
        // write is not replayable (the closure is gone), so recovery must
        // find both versions in the archive.
        let pre_v = self.master_versions.get(&array).copied().unwrap_or(0);
        if pre_v > 0 && !self.archive.contains_key(&(array, pre_v)) {
            let buf = self.master.get(&array).expect("checked above").clone();
            self.archive.insert((array, pre_v), buf);
        }
        match self.master.get_mut(&array) {
            Some(HostBuf::F32(v)) => f(v),
            _ => unreachable!("type checked above"),
        }
        let v = self.versions.entry(array).or_insert(0);
        *v += 1;
        let new_v = *v;
        self.master_versions.insert(array, new_v);
        self.archive.insert(
            (array, new_v),
            self.master.get(&array).expect("checked above").clone(),
        );
        self.version_writer.insert((array, new_v), plan.dag_index);
        self.planner.mark_completed(plan.dag_index);
        self.trace.record(&plan);
        Ok(())
    }

    /// Host read: synchronizes and returns a copy of the float contents.
    pub fn read_f32(&mut self, array: ArrayId) -> Result<Vec<f32>, LocalError> {
        self.fetch_to_controller(array)?;
        match self.master.get(&array) {
            Some(HostBuf::F32(v)) => Ok(v.clone()),
            Some(HostBuf::I32(_)) => Err(LocalError::BadArgs(format!(
                "array {array:?} is i32, not f32"
            ))),
            None => Err(LocalError::UnknownArray(array)),
        }
    }

    /// Enqueues a kernel CE over a 1-D grid. Dependencies, argument
    /// directions and access patterns come from `kernelc`'s static analysis
    /// of the source.
    pub fn launch(
        &mut self,
        kernel: &Arc<CompiledKernel>,
        grid: u32,
        block: u32,
        args: Vec<LocalArg>,
    ) -> Result<CeId, LocalError> {
        self.launch2d(kernel, (grid, 1), (block, 1), args)
    }

    /// Enqueues a kernel CE over a 2-D grid (`dim3(x, y)` semantics).
    /// The CE is planned immediately (eager, like the simulator); the plan
    /// is transmitted to the workers at the next synchronization point.
    pub fn launch2d(
        &mut self,
        kernel: &Arc<CompiledKernel>,
        grid: (u32, u32),
        block: (u32, u32),
        args: Vec<LocalArg>,
    ) -> Result<CeId, LocalError> {
        if args.len() != kernel.params().len() {
            return Err(LocalError::BadArgs(format!(
                "kernel `{}` expects {} args, got {}",
                kernel.name(),
                kernel.params().len(),
                args.len()
            )));
        }
        // Build the CE argument list from the kernel's analysis.
        let mut ce_args = Vec::new();
        let mut seen = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            if let LocalArg::Buf(a) = arg {
                if seen.contains(a) {
                    return Err(LocalError::Aliased(*a));
                }
                seen.push(*a);
                let bytes = self.array_size(*a).ok_or(LocalError::UnknownArray(*a))?;
                let pa = kernel.access()[i];
                let mode = match (pa.reads, pa.writes) {
                    (true, true) => uvm_sim::AccessMode::ReadWrite,
                    (false, true) => uvm_sim::AccessMode::Write,
                    _ => uvm_sim::AccessMode::Read,
                };
                let pattern = match pa.class {
                    kernelc::AccessClass::Broadcast => uvm_sim::AccessPattern::Gather {
                        touches_per_page: 8.0,
                    },
                    kernelc::AccessClass::Indirect => uvm_sim::AccessPattern::Gather {
                        touches_per_page: 2.0,
                    },
                    _ => uvm_sim::AccessPattern::STREAM_ONCE,
                };
                ce_args.push(CeArg {
                    array: *a,
                    bytes,
                    alloc_bytes: bytes,
                    mode,
                    pattern,
                    advise: uvm_sim::MemAdvise::None,
                });
            }
        }
        let ce = Ce {
            id: CeId(self.planner.dag().len() as u64),
            kind: CeKind::Kernel {
                name: kernel.name().to_string(),
                cost: gpu_sim::KernelCost::default(),
            },
            args: ce_args,
        };
        let id = ce.id;

        // Algorithm 1 runs in the shared core; this runtime executes the
        // returned plan verbatim at synchronize time.
        let plan = self.plan_with_span(&ce)?;

        // Version bookkeeping: read args must reach their current version
        // on the assigned worker, write-only args only need a buffer
        // present (their prior contents are overwritten, CUDA-style).
        let mut needs = Vec::new();
        let mut bumps = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            if let LocalArg::Buf(a) = arg {
                let pa = kernel.access()[i];
                let need = if pa.reads {
                    self.versions.get(a).copied().unwrap_or(0)
                } else {
                    0
                };
                needs.push((*a, need));
                if pa.writes {
                    let v = self.versions.entry(*a).or_insert(0);
                    *v += 1;
                    bumps.push((*a, *v));
                }
            }
        }

        for (a, v) in &bumps {
            self.version_writer.insert((*a, *v), plan.dag_index);
        }
        self.logged.insert(
            plan.dag_index,
            LoggedCe {
                kernel: Arc::clone(kernel),
                grid,
                block,
                args: args.clone(),
                needs: needs.clone(),
                bumps: bumps.clone(),
            },
        );
        self.trace.record(&plan);
        self.pending.push(PendingCe {
            plan,
            kernel: Arc::clone(kernel),
            grid,
            block,
            args,
            needs,
            bumps,
            dispatched: false,
            replanned: false,
        });
        Ok(id)
    }

    fn array_size(&self, a: ArrayId) -> Option<u64> {
        self.master.get(&a).map(HostBuf::bytes)
    }

    /// Runs every pending CE to completion across the worker threads.
    pub fn synchronize(&mut self) -> Result<(), LocalError> {
        loop {
            // Transmit a plan only once every DAG parent has completed.
            // Workers hold a single physical copy per array, so a CE's
            // messages must never race ahead of its dependencies: the
            // WAR/WAW edges in the Global DAG are what guarantee each
            // consumer sees exactly the content version it planned
            // against, not a later overwrite.
            let mut restarted = false;
            for i in 0..self.pending.len() {
                if !self.pending[i].dispatched
                    && self.planner.dag().is_ready(self.pending[i].plan.dag_index)
                {
                    match self.transmit(i) {
                        Ok(()) => {}
                        Err(LocalError::WorkerDied { worker, .. })
                            if self.cfg.planner.fault_cfg.recovery =>
                        {
                            // A send hit a closed channel: the real failed
                            // worker is known, recover and restart the scan
                            // (assignments just changed under us).
                            self.recover_from_death(worker, None)?;
                            restarted = true;
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            if restarted {
                continue;
            }
            let in_flight = self
                .pending
                .iter()
                .filter(|p| p.dispatched && !self.planner.dag().is_completed(p.plan.dag_index))
                .count();
            if in_flight == 0 {
                break;
            }
            let timeout =
                Duration::from_nanos(self.cfg.planner.fault_cfg.detection_timeout.as_nanos());
            match self.transport.recv_timeout(timeout) {
                Ok(WorkerMsg::Done {
                    dag_index,
                    worker,
                    elapsed_ns,
                }) => {
                    self.on_done(dag_index, worker, elapsed_ns);
                }
                Ok(WorkerMsg::Failed {
                    dag_index,
                    worker: _,
                    error: Some(error),
                }) => {
                    return Err(LocalError::LaunchAt(dag_index, error));
                }
                Ok(WorkerMsg::Failed {
                    dag_index,
                    worker,
                    error: None,
                }) => {
                    self.handle_transient_failure(dag_index, worker)?;
                }
                Ok(WorkerMsg::Data {
                    array,
                    version,
                    buf,
                }) => {
                    self.install_master(array, version, buf);
                    self.flush_pending_ctrl_recovering()?;
                }
                Ok(WorkerMsg::Telemetry {
                    worker,
                    backlog,
                    counters,
                    spans,
                    ..
                }) => {
                    self.merge_worker_telemetry(worker, backlog, counters, spans);
                }
                Ok(WorkerMsg::Leave { worker }) => {
                    // A clean departure (graceful worker shutdown) is a
                    // definitive death: no suspect grace window, no resume
                    // attempts — straight to quarantine + replay. Unless
                    // this controller asked for it ([`Self::leave_worker`]):
                    // then the ack is consumed there, and a straggler
                    // surfacing here must not trigger replay.
                    if !self.expected_leave.contains(&worker) {
                        self.recover_from_death(worker, None)?;
                    }
                }
                // Liveness/probe traffic is transport-internal; tolerate
                // stragglers defensively.
                Ok(_) => {}
                Err(TransportRecvError::Timeout) => self.on_timeout()?,
                Err(TransportRecvError::Disconnected) => return Err(LocalError::NoHealthyWorkers),
            }
        }
        let done: Vec<bool> = self
            .pending
            .iter()
            .map(|p| self.planner.dag().is_completed(p.plan.dag_index))
            .collect();
        let mut done = done.into_iter();
        self.pending.retain(|_| !done.next().unwrap());
        self.refresh_wire_metrics();
        Ok(())
    }

    /// Installs a worker-returned buffer as the controller master copy
    /// (keeping the newest version). Superseded contents and stale
    /// landings both go to the archive — they are exact snapshots of
    /// earlier versions, which is what lineage replay starts from.
    fn install_master(&mut self, array: ArrayId, version: u64, buf: HostBuf) {
        let v = self.versions.entry(array).or_insert(0);
        *v = (*v).max(version);
        let mv = self.master_versions.entry(array).or_insert(0);
        if version >= *mv {
            let old_mv = *mv;
            *mv = version;
            if let Some(old) = self.master.insert(array, buf) {
                if old_mv > 0 && old_mv < version {
                    self.archive.entry((array, old_mv)).or_insert(old);
                }
            }
        } else if version > 0 {
            self.archive.entry((array, version)).or_insert(buf);
        }
    }

    /// [`Self::flush_pending_ctrl`], but a dead destination triggers
    /// recovery (when enabled) instead of erroring out.
    fn flush_pending_ctrl_recovering(&mut self) -> Result<(), LocalError> {
        match self.flush_pending_ctrl() {
            Err(LocalError::WorkerDied { worker, .. }) if self.cfg.planner.fault_cfg.recovery => {
                self.recover_from_death(worker, None)
            }
            other => other,
        }
    }

    /// Forwards any controller-relayed send whose master copy caught up
    /// (the second hop of staged movements).
    fn flush_pending_ctrl(&mut self) -> Result<(), LocalError> {
        let mut i = 0;
        while i < self.pending_ctrl.len() {
            let (array, need, w) = self.pending_ctrl[i];
            if self.master_versions.get(&array).copied().unwrap_or(0) >= need {
                self.pending_ctrl.remove(i);
                self.send_master_to(array, w)?;
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// Ships the controller master copy of `array` to worker `w`.
    fn send_master_to(&mut self, array: ArrayId, w: usize) -> Result<(), LocalError> {
        let buf = self
            .master
            .get(&array)
            .ok_or(LocalError::UnknownArray(array))?
            .clone();
        let version = self.master_versions.get(&array).copied().unwrap_or(0);
        self.transport
            .send(
                w,
                CtrlMsg::Data {
                    array,
                    version,
                    buf,
                },
            )
            .map_err(|_| LocalError::WorkerDied {
                worker: w,
                at_ce: None,
            })?;
        self.present[w].insert(array);
        Ok(())
    }

    /// The id under which `kernel` ships over the transport, assigning a
    /// fresh one on first sight (`Arc` identity keyed — recompiling the
    /// same source yields a distinct id, which is only a wasted
    /// `LoadKernel`, never a correctness issue).
    fn kernel_id(&mut self, kernel: &Arc<CompiledKernel>) -> u64 {
        let key = Arc::as_ptr(kernel) as usize;
        *self.kernel_ids.entry(key).or_insert_with(|| {
            let id = self.next_kernel_id;
            self.next_kernel_id += 1;
            id
        })
    }

    /// Ships `kernel` to worker `w` unless already loaded there.
    fn ensure_loaded(
        &mut self,
        w: usize,
        kernel: &Arc<CompiledKernel>,
        dag: DagIndex,
    ) -> Result<u64, LocalError> {
        let id = self.kernel_id(kernel);
        if self.loaded[w].insert(id) {
            self.transport
                .send(
                    w,
                    CtrlMsg::LoadKernel {
                        id,
                        name: kernel.name().to_string(),
                        source: kernel.source().to_string(),
                        compiled: Some(Arc::clone(kernel)),
                    },
                )
                .map_err(|_| LocalError::WorkerDied {
                    worker: w,
                    at_ce: Some(dag),
                })?;
        }
        Ok(id)
    }

    /// Transmits pending CE `i`: issues the plan's data movements as
    /// channel messages, then the kernel itself. No scheduling decision is
    /// made here — the plan is executed verbatim.
    fn transmit(&mut self, i: usize) -> Result<(), LocalError> {
        let dag = self.pending[i].plan.dag_index;
        let w = self.pending[i]
            .plan
            .assigned_node
            .worker_index()
            .expect("kernel plans target workers");
        // A retry (transient failure) or a recovery re-dispatch is a
        // retransmission: its traffic is accounted separately so the
        // planned-movement counters keep describing the fault-free plan.
        let retransmit = self.pending[i].replanned || self.attempts.contains_key(&dag);
        // Deterministic fault injection, keyed on the DAG index (one-shot).
        let kill = self.cfg.planner.faults.kill_at(dag);
        let fail_times = self.cfg.planner.faults.fail_launch_at(dag);
        let drop_fault = self.cfg.planner.faults.drop_at(dag);
        let delay_fault = self.cfg.planner.faults.delay_at(dag);
        let mut fault = None;
        if kill && !self.spent.contains(&dag) {
            self.spent.insert(dag);
            fault = Some(ExecFault::Crash);
        } else if let Some(times) = fail_times {
            let attempt = self.attempts.get(&dag).copied().unwrap_or(0);
            if attempt < times && !self.spent.contains(&dag) {
                fault = Some(ExecFault::FailTransient);
            }
        }
        if let Some(delay) = delay_fault {
            if !retransmit && !self.pending[i].plan.movements.is_empty() {
                // Timing-only fault: the simulator prices it; here it is
                // recorded (and waited out, to keep behaviour honest).
                let array = self.pending[i].plan.movements[0].array;
                self.note_event(SchedEvent::TransferDelayed {
                    at_ce: dag,
                    array,
                    delay,
                });
                std::thread::sleep(Duration::from_nanos(delay.as_nanos()));
            }
        }
        let need_of = |needs: &[(ArrayId, u64)], a: ArrayId| {
            needs
                .iter()
                .find(|(x, _)| *x == a)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        if trace_on() {
            eprintln!(
                "[ctl] transmit ce#{} -> w{w} needs {:?} retransmit {retransmit}",
                dag, self.pending[i].needs
            );
        }

        if self.pending[i].replanned {
            // Recovery voided the planned movements (the source or the
            // assignee died): the controller supplies every input directly
            // from its own reconstructed state.
            let needs = self.pending[i].needs.clone();
            for (a, need) in needs {
                let (version, buf) = self.controller_buf(a, need)?;
                let bytes = buf.bytes();
                self.transport
                    .send(
                        w,
                        CtrlMsg::Data {
                            array: a,
                            version,
                            buf,
                        },
                    )
                    .map_err(|_| LocalError::WorkerDied {
                        worker: w,
                        at_ce: Some(dag),
                    })?;
                self.stats.redriven_bytes += bytes;
                self.present[w].insert(a);
            }
        } else {
            for k in 0..self.pending[i].plan.movements.len() {
                let m = self.pending[i].plan.movements[k].clone();
                let need = need_of(&self.pending[i].needs, m.array);
                if k == 0 && drop_fault && !self.injected_drop.contains(&dag) {
                    // Injected transfer loss: the message never goes out.
                    // Presence is still recorded so the master-copy
                    // fallback below does not quietly heal the drop — the
                    // CE wedges until the detection timeout re-drives it.
                    self.injected_drop.insert(dag);
                    self.wedged.insert(dag);
                    self.note_event(SchedEvent::TransferDropped {
                        at_ce: dag,
                        array: m.array,
                    });
                    self.present[w].insert(m.array);
                    continue;
                }
                match m.kind {
                    MovementKind::P2p => {
                        let src = m.from.worker_index().expect("p2p sources are workers");
                        self.transport
                            .send(
                                src,
                                CtrlMsg::Send {
                                    array: m.array,
                                    min_version: need,
                                    to: Some(w),
                                },
                            )
                            .map_err(|_| LocalError::WorkerDied {
                                worker: src,
                                at_ce: Some(dag),
                            })?;
                        if retransmit {
                            self.stats.redriven_bytes += m.bytes;
                        } else {
                            self.stats.p2p_bytes += m.bytes;
                            self.metrics.record_movement(MovementKind::P2p, m.bytes);
                        }
                    }
                    MovementKind::ControllerSend => {
                        if self.master_versions.get(&m.array).copied().unwrap_or(0) >= need {
                            self.send_master_to(m.array, w).map_err(|e| match e {
                                LocalError::WorkerDied { worker, .. } => LocalError::WorkerDied {
                                    worker,
                                    at_ce: Some(dag),
                                },
                                other => other,
                            })?;
                        } else {
                            // Master copy still in flight from a worker;
                            // relay once it lands.
                            self.pending_ctrl.push((m.array, need, w));
                        }
                        if retransmit {
                            self.stats.redriven_bytes += m.bytes;
                        } else {
                            self.stats.send_bytes += m.bytes;
                            self.metrics
                                .record_movement(MovementKind::ControllerSend, m.bytes);
                        }
                    }
                    MovementKind::Staged => {
                        // P2P disabled: first hop pulls the bytes to the
                        // controller, the relay to `w` fires when they land.
                        let src = m.from.worker_index().expect("staged sources are workers");
                        self.transport
                            .send(
                                src,
                                CtrlMsg::Send {
                                    array: m.array,
                                    min_version: need,
                                    to: None,
                                },
                            )
                            .map_err(|_| LocalError::WorkerDied {
                                worker: src,
                                at_ce: Some(dag),
                            })?;
                        self.pending_ctrl.push((m.array, need, w));
                        if retransmit {
                            self.stats.redriven_bytes += 2 * m.bytes;
                        } else {
                            self.stats.fetch_bytes += m.bytes;
                            self.stats.send_bytes += m.bytes;
                            self.metrics.record_movement(MovementKind::Staged, m.bytes);
                        }
                    }
                }
                self.present[w].insert(m.array);
            }

            // Buffers the plan did not move (write-only outputs, or inputs
            // the coherence directory already places here) must still
            // physically exist in the worker's store before the kernel can
            // take them.
            for k in 0..self.pending[i].args.len() {
                let LocalArg::Buf(a) = self.pending[i].args[k] else {
                    continue;
                };
                if self.present[w].contains(&a) {
                    continue;
                }
                let bytes = self.array_size(a).unwrap_or(0);
                self.send_master_to(a, w).map_err(|e| match e {
                    LocalError::WorkerDied { worker, .. } => LocalError::WorkerDied {
                        worker,
                        at_ce: Some(dag),
                    },
                    other => other,
                })?;
                if retransmit {
                    self.stats.redriven_bytes += bytes;
                } else {
                    self.stats.send_bytes += bytes;
                }
            }
        }

        let kernel = Arc::clone(&self.pending[i].kernel);
        let kernel_id = self.ensure_loaded(w, &kernel, dag)?;
        let p = &self.pending[i];
        let msg = ExecSpec {
            dag_index: dag,
            kernel: kernel_id,
            grid: p.grid,
            block: p.block,
            args: p.args.clone(),
            needs: p.needs.clone(),
            bumps: p.bumps.clone(),
            fault,
        };
        self.transport
            .send(w, CtrlMsg::Exec(msg))
            .map_err(|_| LocalError::WorkerDied {
                worker: w,
                at_ce: Some(dag),
            })?;
        if !retransmit {
            self.stats.kernels += 1;
        }
        self.pending[i].dispatched = true;
        Ok(())
    }

    /// Ensures the controller master copy is current. When it is not, this
    /// plans a host-read CE through the shared core (mirroring
    /// [`crate::SimRuntime::host_read`]) and executes its movement.
    fn fetch_to_controller(&mut self, array: ArrayId) -> Result<(), LocalError> {
        if !self.master.contains_key(&array) {
            return Err(LocalError::UnknownArray(array));
        }
        self.synchronize()?;
        if self
            .planner
            .coherence()
            .up_to_date_on(array, Location::CONTROLLER)
        {
            return Ok(());
        }
        let bytes = self.array_size(array).unwrap_or(0);
        let ce = Ce {
            id: CeId(self.planner.dag().len() as u64),
            kind: CeKind::HostRead,
            args: vec![CeArg::read(array, bytes)],
        };
        let plan = self.plan_with_span(&ce)?;
        let min_version = self.versions.get(&array).copied().unwrap_or(0);
        for m in &plan.movements {
            let Some(holder) = m.from.worker_index() else {
                continue;
            };
            if self
                .transport
                .send(
                    holder,
                    CtrlMsg::Send {
                        array: m.array,
                        min_version,
                        to: None,
                    },
                )
                .is_err()
            {
                // The holder died before the fetch: recover (lineage replay
                // rebuilds the bytes on the controller) instead of erroring.
                self.recover_from_death(holder, None)?;
                if self.master_versions.get(&array).copied().unwrap_or(0) < min_version {
                    let (version, buf) = self.controller_buf(array, min_version)?;
                    self.install_master(array, version, buf);
                }
                continue;
            }
            let timeout =
                Duration::from_nanos(self.cfg.planner.fault_cfg.detection_timeout.as_nanos());
            // Wait for the bytes (completions for other CEs may interleave).
            loop {
                match self.transport.recv_timeout(timeout) {
                    Ok(WorkerMsg::Data {
                        array: a,
                        version,
                        buf,
                    }) => {
                        let landed = buf.bytes();
                        self.install_master(a, version, buf);
                        self.flush_pending_ctrl_recovering()?;
                        if a == array {
                            self.stats.fetch_bytes += landed;
                            break;
                        }
                    }
                    Ok(WorkerMsg::Done {
                        dag_index,
                        worker,
                        elapsed_ns,
                    }) => {
                        self.on_done(dag_index, worker, elapsed_ns);
                    }
                    Ok(WorkerMsg::Failed {
                        error: Some(error), ..
                    }) => {
                        return Err(LocalError::Launch(error));
                    }
                    Ok(WorkerMsg::Telemetry {
                        worker,
                        backlog,
                        counters,
                        spans,
                        ..
                    }) => {
                        self.merge_worker_telemetry(worker, backlog, counters, spans);
                    }
                    // Transient failures cannot arrive here (synchronize
                    // returned with nothing in flight); liveness/probe
                    // traffic is transport-internal. Ignore defensively.
                    Ok(_) => {}
                    Err(TransportRecvError::Timeout) => {
                        let newly_dead = self.probe_dead();
                        if newly_dead.is_empty() {
                            continue;
                        }
                        for d in newly_dead {
                            self.recover_from_death(d, None)?;
                        }
                        if self.master_versions.get(&array).copied().unwrap_or(0) < min_version {
                            let (version, buf) = self.controller_buf(array, min_version)?;
                            self.install_master(array, version, buf);
                        }
                        break;
                    }
                    Err(TransportRecvError::Disconnected) => {
                        return Err(LocalError::NoHealthyWorkers)
                    }
                }
            }
        }
        self.planner.mark_completed(plan.dag_index);
        self.trace.record(&plan);
        Ok(())
    }

    // ---- failure detection & recovery ----------------------------------

    /// Probes every supposedly-live worker through the transport (join
    /// handle in-process, socket + heartbeat freshness over TCP); returns
    /// the indices that are actually gone (newly dead).
    ///
    /// This is where the suspect-then-dead state machine advances: a
    /// [`Liveness::Suspect`] report (a stale or severed TCP connection
    /// still inside its reconnect window) sidelines the worker for *new*
    /// CE placement without quarantining it — if the session resumes, the
    /// worker is reinstated and the omission was invisible to recovery;
    /// only [`Liveness::Dead`] (window expired, thread exited, clean
    /// leave) triggers quarantine + lineage replay.
    fn probe_dead(&mut self) -> Vec<usize> {
        let mut dead = Vec::new();
        for i in 0..self.transport.workers() {
            if !self.detector.is_alive(i) {
                continue;
            }
            match self.transport.liveness(i) {
                Liveness::Alive => {
                    if self.detector.reinstate(i) {
                        self.planner.reinstate(i);
                        self.note_event(SchedEvent::Reinstated {
                            worker: i,
                            epoch: self.detector.epoch(),
                        });
                    }
                }
                Liveness::Suspect => {
                    if self.detector.mark_suspected(i) {
                        self.planner.suspect(i);
                        self.note_event(SchedEvent::Suspected {
                            worker: i,
                            epoch: self.detector.epoch(),
                        });
                    }
                }
                Liveness::Dead => dead.push(i),
            }
        }
        dead
    }

    /// A receive timed out: either somebody died (recover), or a dropped
    /// transfer wedged a CE (re-drive its inputs from the controller).
    fn on_timeout(&mut self) -> Result<(), LocalError> {
        let dead = self.probe_dead();
        if dead.is_empty() {
            if !self.wedged.is_empty() {
                self.redrive_wedged()?;
            }
            return Ok(());
        }
        for d in dead {
            self.recover_from_death(d, None)?;
        }
        Ok(())
    }

    /// Supplies every input of the CEs wedged by a dropped transfer
    /// directly from the controller's reconstructed state.
    fn redrive_wedged(&mut self) -> Result<(), LocalError> {
        let mut stuck: Vec<DagIndex> = self.wedged.drain().collect();
        stuck.sort_unstable();
        for dag in stuck {
            if self.planner.dag().is_completed(dag) {
                continue;
            }
            let Some(idx) = self
                .pending
                .iter()
                .position(|p| p.plan.dag_index == dag && p.dispatched)
            else {
                continue;
            };
            let w = self.pending[idx]
                .plan
                .assigned_node
                .worker_index()
                .expect("kernel plans target workers");
            let needs = self.pending[idx].needs.clone();
            for (a, need) in needs {
                let (version, buf) = self.controller_buf(a, need)?;
                let bytes = buf.bytes();
                self.transport
                    .send(
                        w,
                        CtrlMsg::Data {
                            array: a,
                            version,
                            buf,
                        },
                    )
                    .map_err(|_| LocalError::WorkerDied {
                        worker: w,
                        at_ce: Some(dag),
                    })?;
                self.stats.redriven_bytes += bytes;
                self.present[w].insert(a);
            }
            self.note_event(SchedEvent::TransferRedriven { at_ce: dag });
        }
        Ok(())
    }

    /// A worker reported an injected transient launch failure: retry with
    /// exponential backoff, then treat the node as bad and recover.
    fn handle_transient_failure(&mut self, dag: DagIndex, worker: usize) -> Result<(), LocalError> {
        let attempt = {
            let a = self.attempts.entry(dag).or_insert(0);
            *a += 1;
            *a
        };
        let fc = self.cfg.planner.fault_cfg;
        let backoff = SimDuration::exp_backoff(fc.backoff_base, attempt, fc.backoff_cap);
        self.note_event(SchedEvent::Retry {
            at_ce: dag,
            worker,
            attempt,
            backoff,
        });
        if attempt > fc.max_retries {
            // Persistent failure: the retry budget is spent, move the work
            // off the node (recover_from_death shuts the thread down).
            self.spent.insert(dag);
            return self.recover_from_death(worker, Some(dag));
        }
        std::thread::sleep(Duration::from_nanos(backoff.as_nanos()));
        if let Some(p) = self.pending.iter_mut().find(|p| p.plan.dag_index == dag) {
            p.dispatched = false;
        }
        Ok(())
    }

    /// Lowest dispatched-but-incomplete CE assigned to worker `d` (the CE
    /// reported in errors and fault events when the exact victim is not
    /// known from the failing channel operation itself).
    fn lowest_incomplete_on(&self, d: usize) -> Option<DagIndex> {
        self.pending
            .iter()
            .filter(|p| {
                p.dispatched
                    && !self.planner.dag().is_completed(p.plan.dag_index)
                    && p.plan.assigned_node == Location::worker(d)
            })
            .map(|p| p.plan.dag_index)
            .min()
    }

    /// Full recovery from the death of worker `d`: quarantine it in the
    /// shared core, reconstruct orphaned array versions on the controller
    /// by lineage replay, reassign its in-flight CEs to healthy workers,
    /// and re-drive the inputs of every still-waiting CE.
    fn recover_from_death(&mut self, d: usize, at_ce: Option<DagIndex>) -> Result<(), LocalError> {
        if !self.detector.is_alive(d) {
            return Ok(()); // already handled
        }
        let fail_ce = at_ce.or_else(|| self.lowest_incomplete_on(d));
        if !self.cfg.planner.fault_cfg.recovery {
            return Err(LocalError::WorkerDied {
                worker: d,
                at_ce: fail_ce,
            });
        }
        let epoch = self.detector.mark_dead(d);
        self.note_event(SchedEvent::Fault {
            at_ce: fail_ce.unwrap_or(0),
            worker: Some(d),
            kind: "kill-worker",
            epoch,
        });
        // Make sure the endpoint is gone: on a persistent-transient failure
        // the worker is alive but condemned, on a crash this is a no-op.
        self.transport.shutdown(d);
        self.loaded[d].clear();
        // Work finished before the death may still sit in the channel;
        // drain it so recovery only replans what truly died.
        while let Some(m) = self.transport.try_recv() {
            match m {
                WorkerMsg::Done {
                    dag_index,
                    worker,
                    elapsed_ns,
                } => {
                    self.on_done(dag_index, worker, elapsed_ns);
                }
                WorkerMsg::Data {
                    array,
                    version,
                    buf,
                } => {
                    self.install_master(array, version, buf);
                }
                WorkerMsg::Failed {
                    dag_index,
                    error: None,
                    ..
                } => {
                    // Re-dispatch after recovery; count the attempt so the
                    // injection schedule advances.
                    *self.attempts.entry(dag_index).or_insert(0) += 1;
                    if let Some(p) = self
                        .pending
                        .iter_mut()
                        .find(|p| p.plan.dag_index == dag_index)
                    {
                        p.dispatched = false;
                    }
                }
                // The dead worker's last flushed batches survive the
                // quarantine: its pre-death spans still reach the merged
                // trace (the chaos harness asserts exactly this).
                WorkerMsg::Telemetry {
                    worker,
                    backlog,
                    counters,
                    spans,
                    ..
                } => {
                    self.merge_worker_telemetry(worker, backlog, counters, spans);
                }
                // A deterministic launch error will recur when the CE is
                // re-executed and surface then; liveness/probe traffic is
                // transport-internal.
                _ => {}
            }
        }
        // Quarantine + replan the in-flight frontier through the shared
        // scheduling core.
        let incomplete: Vec<DagIndex> = self
            .pending
            .iter()
            .filter(|p| !self.planner.dag().is_completed(p.plan.dag_index))
            .map(|p| p.plan.dag_index)
            .collect();
        let rec = self.planner.recover(d, &incomplete).map_err(|e| match e {
            PlanError::NoHealthyWorkers => LocalError::NoHealthyWorkers,
            other => LocalError::Plan(other),
        })?;
        self.note_event(SchedEvent::Quarantine {
            worker: d,
            at_ce: fail_ce.unwrap_or(0),
            lost: rec.lost.clone(),
            epoch,
        });
        // Reconstruct every orphaned array at its newest completed version
        // and promote the result to the controller master copy (the
        // planner already recorded the controller as holder of record).
        let targets: Vec<(ArrayId, u64)> = rec
            .lost
            .iter()
            .map(|&a| (a, self.latest_completed_version(a)))
            .collect();
        self.reconstruct(&targets, epoch)?;
        for &(a, v) in &targets {
            if self.master_versions.get(&a).copied().unwrap_or(0) < v {
                let buf = self
                    .archive
                    .get(&(a, v))
                    .cloned()
                    .ok_or(LocalError::Unrecoverable {
                        array: a,
                        version: v,
                    })?;
                self.install_master(a, v, buf);
            }
        }
        // Apply the reassignments: the planned movements are void, the
        // controller will supply all inputs at retransmission.
        for r in &rec.reassigned {
            let Some(idx) = self
                .pending
                .iter()
                .position(|p| p.plan.dag_index == r.dag_index)
            else {
                continue;
            };
            let from = self.pending[idx]
                .plan
                .assigned_node
                .worker_index()
                .unwrap_or(usize::MAX);
            self.note_event(SchedEvent::Reassign {
                dag_index: r.dag_index,
                from,
                to: r.to.worker_index().unwrap_or(usize::MAX),
                epoch,
            });
            let p = &mut self.pending[idx];
            p.plan.assigned_node = r.to;
            p.plan.movements = r.movements.clone();
            p.dispatched = false;
            p.replanned = true;
        }
        // Undispatched CEs whose planned movements source from the dead
        // node can no longer execute their plan either.
        let dead_loc = Location::worker(d);
        for p in self.pending.iter_mut() {
            if !p.dispatched && p.plan.movements.iter().any(|m| m.from == dead_loc) {
                p.replanned = true;
            }
        }
        // Controller relays headed to the dead node are moot; nothing on
        // the node is present anymore.
        self.pending_ctrl.retain(|&(_, _, w)| w != d);
        self.present[d].clear();
        // Any still-dispatched CE on a live worker may be waiting on a
        // transfer the dead node will never make: supply its inputs
        // directly. (Its Exec message is already queued — only data was
        // lost — so no kernel runs twice.)
        let redrive: Vec<usize> = (0..self.pending.len())
            .filter(|&i| {
                self.pending[i].dispatched
                    && !self
                        .planner
                        .dag()
                        .is_completed(self.pending[i].plan.dag_index)
            })
            .collect();
        for i in redrive {
            let dag = self.pending[i].plan.dag_index;
            let w = self.pending[i]
                .plan
                .assigned_node
                .worker_index()
                .expect("kernel plans target workers");
            if !self.detector.is_alive(w) {
                continue;
            }
            let needs = self.pending[i].needs.clone();
            for (a, need) in needs {
                let (version, buf) = self.controller_buf(a, need)?;
                let bytes = buf.bytes();
                self.transport
                    .send(
                        w,
                        CtrlMsg::Data {
                            array: a,
                            version,
                            buf,
                        },
                    )
                    .map_err(|_| LocalError::WorkerDied {
                        worker: w,
                        at_ce: Some(dag),
                    })?;
                self.stats.redriven_bytes += bytes;
                self.present[w].insert(a);
            }
            self.note_event(SchedEvent::TransferRedriven { at_ce: dag });
        }
        self.flush_pending_ctrl()?;
        Ok(())
    }

    /// The newest version of `array` whose writer CE completed — the
    /// version a lost copy could actually have held.
    fn latest_completed_version(&self, array: ArrayId) -> u64 {
        let mut v = self.versions.get(&array).copied().unwrap_or(0);
        while v > 0 {
            match self.version_writer.get(&(array, v)) {
                Some(&w) if !self.planner.dag().is_completed(w) => v -= 1,
                _ => break,
            }
        }
        v
    }

    /// Replays the minimal completed-ancestor set needed to rebuild each
    /// `(array, version)` target on the controller. Kernels are host
    /// kernels, so re-execution is bit-identical to the original run.
    fn reconstruct(&mut self, targets: &[(ArrayId, u64)], epoch: u64) -> Result<(), LocalError> {
        let order = {
            let dag = self.planner.dag();
            let version_writer = &self.version_writer;
            let logged = &self.logged;
            let archive = &self.archive;
            let master_versions = &self.master_versions;
            replay_closure(
                targets,
                |a, v| {
                    version_writer
                        .get(&(a, v))
                        .map(|&w| (w, dag.is_completed(w)))
                },
                |w| logged.get(&w).map(|l| l.needs.clone()).unwrap_or_default(),
                |a, v| {
                    v == 0
                        || archive.contains_key(&(a, v))
                        || master_versions.get(&a).copied().unwrap_or(0) == v
                },
            )
            .map_err(|(array, version)| LocalError::Unrecoverable { array, version })?
        };
        for c in order {
            self.replay_on_controller(c)?;
            self.note_event(SchedEvent::Replay {
                dag_index: c,
                epoch,
            });
            self.stats.replays += 1;
        }
        Ok(())
    }

    /// Deterministically re-executes one completed kernel CE on the
    /// controller from exact-version inputs; outputs land in the archive
    /// (and the master copy, when newer than what the controller holds).
    fn replay_on_controller(&mut self, c: DagIndex) -> Result<(), LocalError> {
        let l = self
            .logged
            .get(&c)
            .cloned()
            .ok_or_else(|| LocalError::BadArgs(format!("no replay log for CE #{c}")))?;
        let mut inputs: Vec<(ArrayId, HostBuf)> = Vec::new();
        for arg in &l.args {
            if let LocalArg::Buf(a) = arg {
                let need = l
                    .needs
                    .iter()
                    .find(|(x, _)| x == a)
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                let buf = self.exact_version_buf(*a, need)?;
                inputs.push((*a, buf));
            }
        }
        let result = {
            let mut kargs: Vec<KernelArg<'_>> = Vec::with_capacity(l.args.len());
            let mut cursor = inputs.iter_mut();
            for arg in &l.args {
                match arg {
                    LocalArg::Buf(_) => {
                        let (_, buf) = cursor.next().expect("pushed in order");
                        kargs.push(match buf {
                            HostBuf::F32(v) => KernelArg::F32(v),
                            HostBuf::I32(v) => KernelArg::I32(v),
                        });
                    }
                    LocalArg::F32(v) => kargs.push(KernelArg::Float(*v)),
                    LocalArg::I32(v) => kargs.push(KernelArg::Int(*v)),
                }
            }
            l.kernel.launch2d(l.grid, l.block, &mut kargs)
        };
        result.map_err(|e| LocalError::LaunchAt(c, e))?;
        for (a, buf) in inputs {
            if let Some((_, v_out)) = l.bumps.iter().find(|(b, _)| *b == a) {
                self.archive.insert((a, *v_out), buf.clone());
                self.install_master(a, *v_out, buf);
            }
        }
        Ok(())
    }

    /// A buffer holding *exactly* version `need` of `array` — replay
    /// inputs must not see newer content. Version 0 is the allocation
    /// state (zeros by construction); write-only arguments pass `need` 0
    /// because their prior contents are fully overwritten (CUDA-style).
    fn exact_version_buf(&self, array: ArrayId, need: u64) -> Result<HostBuf, LocalError> {
        if let Some(buf) = self.archive.get(&(array, need)) {
            return Ok(buf.clone());
        }
        if need == 0 {
            let shape = self
                .shapes
                .get(&array)
                .copied()
                .ok_or(LocalError::UnknownArray(array))?;
            return Ok(shape.zeros());
        }
        if self.master_versions.get(&array).copied().unwrap_or(0) == need {
            return Ok(self
                .master
                .get(&array)
                .ok_or(LocalError::UnknownArray(array))?
                .clone());
        }
        Err(LocalError::Unrecoverable {
            array,
            version: need,
        })
    }

    /// A controller-side copy of `array` at version `>= need`, rebuilt via
    /// lineage replay when the live copy is stale. Always succeeds for
    /// dispatched CEs: readiness gating means every needed version has a
    /// completed (hence replayable) writer.
    fn controller_buf(&mut self, array: ArrayId, need: u64) -> Result<(u64, HostBuf), LocalError> {
        let mv = self.master_versions.get(&array).copied().unwrap_or(0);
        if mv >= need {
            return Ok((
                mv,
                self.master
                    .get(&array)
                    .ok_or(LocalError::UnknownArray(array))?
                    .clone(),
            ));
        }
        if let Some(buf) = self.archive.get(&(array, need)) {
            return Ok((need, buf.clone()));
        }
        let epoch = self.detector.epoch();
        self.reconstruct(&[(array, need)], epoch)?;
        if let Some(buf) = self.archive.get(&(array, need)) {
            return Ok((need, buf.clone()));
        }
        let mv = self.master_versions.get(&array).copied().unwrap_or(0);
        if mv >= need {
            return Ok((
                mv,
                self.master
                    .get(&array)
                    .ok_or(LocalError::UnknownArray(array))?
                    .clone(),
            ));
        }
        Err(LocalError::Unrecoverable {
            array,
            version: need,
        })
    }

    /// Failure injection: shuts a worker down immediately. Any CE later
    /// routed to it (or any transfer sourced from it) surfaces as
    /// [`LocalError::WorkerDied`] instead of hanging — the behaviour a
    /// deployment would see when a node drops out mid-run.
    pub fn kill_worker(&mut self, worker: usize) {
        self.transport.shutdown(worker);
    }

    /// Re-admits a quarantined worker under a new membership epoch.
    ///
    /// The transport re-establishes the endpoint first
    /// ([`Transport::reconnect`]: respawn the thread in-process, re-dial
    /// and re-handshake over TCP). On success the membership change flows
    /// through the op log as [`PlannerOp::Rejoin`] — journals, replays and
    /// the hot standby all see it — the failure detector bumps its epoch,
    /// and the links are re-probed so min-transfer-time prices the
    /// returned node again. The node re-enters empty: its coherence
    /// entries were purged at quarantine and purged again here, and the
    /// controller's present/loaded caches for it are cleared, so every
    /// input it needs is re-supplied and every kernel re-shipped.
    ///
    /// Returns `false` without state changes when the worker is not
    /// quarantined (nothing to rejoin) or the transport cannot bring the
    /// endpoint back.
    pub fn rejoin(&mut self, worker: usize) -> Result<bool, LocalError> {
        if worker >= self.transport.workers() {
            return Err(LocalError::BadArgs(format!(
                "worker {worker} out of range (0..{})",
                self.transport.workers()
            )));
        }
        if !self.planner.is_quarantined(worker) {
            return Ok(false);
        }
        if !self.transport.reconnect(worker) {
            return Ok(false);
        }
        let epoch = self.detector.rejoin(worker);
        self.planner.rejoin(worker);
        self.note_event(SchedEvent::Rejoined { worker, epoch });
        // The returning node holds nothing: drop every controller-side
        // assumption about its store and shipped kernels.
        self.present[worker].clear();
        self.loaded[worker].clear();
        self.saw_worker_telemetry[worker] = false;
        self.pending_ctrl.retain(|&(_, _, w)| w != worker);
        // Incremental link re-probe: the transport re-measures what it
        // can (TCP re-probes the rejoined endpoint's links); the updated
        // matrix travels through the op log like any other reprobe.
        if let Some(links) = self.transport.measured_links().cloned() {
            self.planner.reprobe_links(links);
        }
        // Fresh sessions start with recording off; re-arm it.
        if self.telemetry.enabled() {
            let _ = self
                .transport
                .send(worker, CtrlMsg::Observe { enabled: true });
        }
        Ok(true)
    }

    /// Attaches a brand-new worker to the running cluster (elastic
    /// scale-out) and returns the index it was assigned.
    ///
    /// The transport admits the endpoint first ([`Transport::join`]: spawn
    /// a thread in-process, dial/handshake/register over TCP). The
    /// membership growth then flows through the op log as
    /// [`PlannerOp::Join`] — journals, replays and the hot standby all see
    /// the worker set grow — and the links touching the newcomer are
    /// re-probed incrementally (the conservative padding the scheduler
    /// starts from never prices a CE: the re-probe lands before the next
    /// plan). The newcomer starts empty and receives inputs and kernels
    /// on demand exactly like a rejoined node.
    pub fn join_worker(&mut self, addr: &str) -> Result<usize, LocalError> {
        // Quiesce in-flight work: frozen plan assignments must not race a
        // membership change.
        self.synchronize()?;
        let w = self.transport.join(addr).map_err(LocalError::Membership)?;
        let n = w + 1;
        self.cfg.planner.workers = n;
        self.present.resize_with(n, HashSet::new);
        self.loaded.resize_with(n, HashSet::new);
        self.kernels_by_worker.resize(n, 0);
        self.saw_worker_telemetry.resize(n, false);
        self.detector.grow(n);
        self.metrics.grow_workers(n);
        self.planner.join(w);
        self.note_event(SchedEvent::Joined {
            worker: w,
            epoch: self.detector.epoch(),
        });
        // Incremental link probe: measure only the newcomer's links and
        // ship the merged matrix through the op log like any reprobe.
        if let Some(links) = self.transport.probe_joined(w) {
            self.planner.reprobe_links(links.clone());
            self.metrics
                .set_bandwidth("measured", self.transport.kind(), &links);
        }
        if self.telemetry.enabled() {
            let _ = self.transport.send(w, CtrlMsg::Observe { enabled: true });
        }
        Ok(w)
    }

    /// Detaches worker `w` cleanly (elastic scale-in): the anti-entropy
    /// counterpart of a crash.
    ///
    /// Every array whose only up-to-date copy lives on `w` is fetched to
    /// the controller *before* the membership change commits, so the
    /// departure loses nothing: no quarantine, no lineage replay — the
    /// directory entries are rebalanced instead. The worker is asked to
    /// flush and halt ([`CtrlMsg::Leave`]), its ack awaited, and the
    /// change recorded as [`PlannerOp::Leave`] so journals, replays and
    /// the hot standby see it. Departed indices are never reused.
    pub fn leave_worker(&mut self, w: usize) -> Result<(), LocalError> {
        if w >= self.transport.workers() {
            return Err(LocalError::Membership(format!(
                "worker {w} out of range (0..{})",
                self.transport.workers()
            )));
        }
        if self.planner.is_departed(w) {
            return Ok(()); // idempotent
        }
        if self.planner.healthy_workers() <= 1 {
            return Err(LocalError::NoHealthyWorkers);
        }
        self.synchronize()?;
        // Rebalance: pull every sole-copy array onto the controller while
        // the departing worker can still serve it.
        let sole: Vec<ArrayId> = self
            .planner
            .coherence()
            .arrays()
            .into_iter()
            .filter(|&a| {
                let holders = self.planner.coherence().holders(a);
                !holders.is_empty() && holders.iter().all(|&h| h == Location::worker(w))
            })
            .collect();
        let rebalanced = sole.len();
        for a in sole {
            self.fetch_to_controller(a)?;
        }
        // From here the ack must not be mistaken for a death.
        self.expected_leave.insert(w);
        let acked = if self.transport.send(w, CtrlMsg::Leave).is_ok() {
            self.await_leave_ack(w)
        } else {
            false // endpoint already gone; its state is safe regardless
        };
        if !acked {
            // No clean ack — force the teardown; the data was already
            // rebalanced, so this still is not a recovery.
            self.transport.shutdown(w);
        }
        self.planner.leave(w).map_err(LocalError::Plan)?;
        self.detector.mark_dead(w);
        self.note_event(SchedEvent::Departed {
            worker: w,
            rebalanced,
            epoch: self.detector.epoch(),
        });
        self.present[w].clear();
        self.loaded[w].clear();
        self.saw_worker_telemetry[w] = false;
        self.pending_ctrl.retain(|&(_, _, dst)| dst != w);
        self.expected_leave.remove(&w);
        self.transport.shutdown(w);
        Ok(())
    }

    /// Waits briefly for the departing worker's [`WorkerMsg::Leave`] ack,
    /// merging unrelated stragglers (telemetry, late data) as usual.
    fn await_leave_ack(&mut self, w: usize) -> bool {
        let deadline = std::time::Instant::now()
            + Duration::from_nanos(self.cfg.planner.fault_cfg.detection_timeout.as_nanos());
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return false;
            }
            match self.transport.recv_timeout(left) {
                Ok(WorkerMsg::Leave { worker }) if worker == w => return true,
                Ok(WorkerMsg::Telemetry {
                    worker,
                    backlog,
                    counters,
                    spans,
                    ..
                }) => {
                    self.merge_worker_telemetry(worker, backlog, counters, spans);
                }
                Ok(WorkerMsg::Data {
                    array,
                    version,
                    buf,
                }) => {
                    self.install_master(array, version, buf);
                }
                Ok(_) => {}
                Err(_) => return false,
            }
        }
    }

    /// The link-bandwidth matrix the planner prices transfers with:
    /// measured by the transport when available (TCP probe round),
    /// uniform otherwise.
    pub fn link_matrix(&self) -> Option<&LinkMatrix> {
        self.planner.links()
    }

    /// The transport label (`"channel"` in-process, `"tcp"` distributed).
    pub fn transport_kind(&self) -> &'static str {
        self.transport.kind()
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> LocalStats {
        self.stats
    }

    /// Where the planner currently places CE `i` (updated by recovery).
    pub fn node_assignment(&self, i: DagIndex) -> Option<Location> {
        self.planner.assignment(i)
    }

    /// Whether worker `w` has been quarantined (dead or never spawned).
    pub fn is_quarantined(&self, w: usize) -> bool {
        self.planner.is_quarantined(w)
    }

    /// Number of workers still accepting assignments.
    pub fn healthy_workers(&self) -> usize {
        self.planner.healthy_workers()
    }

    /// The current membership epoch (bumps once per confirmed failure).
    pub fn epoch(&self) -> u64 {
        self.detector.epoch()
    }

    /// The Global DAG (read-only).
    pub fn dag(&self) -> &DepDag {
        self.planner.dag()
    }

    /// The coherence directory (read-only).
    pub fn coherence(&self) -> &Coherence {
        self.planner.coherence()
    }

    /// The trace of planned CEs (ring buffer, oldest first).
    pub fn sched_trace(&self) -> &SchedTrace {
        &self.trace
    }

    /// Installs a callback invoked for every planned CE.
    pub fn set_sched_observer(&mut self, observer: PlanObserver) {
        self.trace.set_observer(observer);
    }
}

impl crate::Observability for LocalRuntime {
    type Stats = LocalStats;

    fn sched_trace(&self) -> &SchedTrace {
        &self.trace
    }

    fn stats(&self) -> LocalStats {
        self.stats
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelc::compile_one;

    const SAXPY: &str = "__global__ void saxpy(float* y, const float* x, float a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { y[i] = a * x[i] + y[i]; }
    }";

    fn rt(workers: usize) -> LocalRuntime {
        LocalRuntime::try_new(LocalConfig::new(workers, PolicyKind::RoundRobin)).expect("startup")
    }

    #[test]
    fn saxpy_end_to_end() {
        let mut rt = rt(2);
        let n = 10_000usize;
        let y = rt.alloc_f32(n);
        let x = rt.alloc_f32(n);
        rt.write_f32(y, |v| v.iter_mut().for_each(|e| *e = 1.0))
            .unwrap();
        rt.write_f32(x, |v| {
            v.iter_mut().enumerate().for_each(|(i, e)| *e = i as f32)
        })
        .unwrap();
        let k = Arc::new(compile_one(SAXPY, "saxpy").unwrap());
        rt.launch(
            &k,
            64,
            256,
            vec![
                LocalArg::Buf(y),
                LocalArg::Buf(x),
                LocalArg::F32(3.0),
                LocalArg::I32(n as i32),
            ],
        )
        .unwrap();
        let out = rt.read_f32(y).unwrap();
        assert_eq!(out[10], 31.0);
        assert_eq!(out[9999], 3.0 * 9999.0 + 1.0);
        assert_eq!(rt.stats().kernels, 1);
    }

    #[test]
    fn dependent_kernels_run_in_order() {
        let mut rt = rt(2);
        let n = 1024usize;
        let a = rt.alloc_f32(n);
        let k_inc = Arc::new(
            compile_one(
                "__global__ void inc(float* a, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = a[i] + 1.0; }
                }",
                "inc",
            )
            .unwrap(),
        );
        // Ten dependent increments must serialize even across two workers.
        for _ in 0..10 {
            rt.launch(
                &k_inc,
                4,
                256,
                vec![LocalArg::Buf(a), LocalArg::I32(n as i32)],
            )
            .unwrap();
        }
        let out = rt.read_f32(a).unwrap();
        assert!(out.iter().all(|&v| v == 10.0), "got {}", out[0]);
    }

    #[test]
    fn independent_kernels_spread_across_workers() {
        let mut rt = rt(2);
        let n = 1 << 16;
        let a = rt.alloc_f32(n);
        let b = rt.alloc_f32(n);
        let k = Arc::new(
            compile_one(
                "__global__ void fill(float* a, float v, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = v; }
                }",
                "fill",
            )
            .unwrap(),
        );
        rt.launch(
            &k,
            256,
            256,
            vec![
                LocalArg::Buf(a),
                LocalArg::F32(5.0),
                LocalArg::I32(n as i32),
            ],
        )
        .unwrap();
        rt.launch(
            &k,
            256,
            256,
            vec![
                LocalArg::Buf(b),
                LocalArg::F32(7.0),
                LocalArg::I32(n as i32),
            ],
        )
        .unwrap();
        assert_eq!(rt.read_f32(a).unwrap()[123], 5.0);
        assert_eq!(rt.read_f32(b).unwrap()[456], 7.0);
    }

    #[test]
    fn p2p_moves_data_between_workers() {
        // Producer on worker 0 (round-robin), consumer lands on worker 1;
        // the array must travel P2P.
        let mut rt = rt(2);
        let n = 4096usize;
        let a = rt.alloc_f32(n);
        let b = rt.alloc_f32(n);
        let fill = Arc::new(
            compile_one(
                "__global__ void fill(float* a, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = 2.0; }
                }",
                "fill",
            )
            .unwrap(),
        );
        let copy = Arc::new(
            compile_one(
                "__global__ void copy(float* dst, const float* src, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { dst[i] = src[i]; }
                }",
                "copy",
            )
            .unwrap(),
        );
        rt.launch(
            &fill,
            16,
            256,
            vec![LocalArg::Buf(a), LocalArg::I32(n as i32)],
        )
        .unwrap();
        let _ = b;
        let c = rt.alloc_f32(n);
        // Round-robin sends the consumer to worker 1; `a` travels P2P.
        rt.launch(
            &copy,
            16,
            256,
            vec![LocalArg::Buf(c), LocalArg::Buf(a), LocalArg::I32(n as i32)],
        )
        .unwrap();
        rt.synchronize().unwrap();
        assert_eq!(rt.read_f32(c).unwrap()[0], 2.0);
        assert!(rt.stats().p2p_bytes > 0, "stats: {:?}", rt.stats());
    }

    #[test]
    fn launch_errors_surface() {
        let mut rt = rt(1);
        let a = rt.alloc_f32(4);
        let k = Arc::new(
            compile_one(
                "__global__ void oob(float* a) { a[blockIdx.x * blockDim.x + threadIdx.x] = 1.0; }",
                "oob",
            )
            .unwrap(),
        );
        rt.launch(&k, 8, 8, vec![LocalArg::Buf(a)]).unwrap();
        let err = rt.synchronize().unwrap_err();
        assert!(matches!(
            err,
            LocalError::Launch(LaunchError::OutOfBounds { .. })
                | LocalError::LaunchAt(_, LaunchError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn aliasing_rejected() {
        let mut rt = rt(1);
        let a = rt.alloc_f32(8);
        let k = Arc::new(
            compile_one(
                "__global__ void two(float* x, const float* y, int n) {
                    int i = threadIdx.x;
                    if (i < n) { x[i] = y[i]; }
                }",
                "two",
            )
            .unwrap(),
        );
        let err = rt
            .launch(
                &k,
                1,
                8,
                vec![LocalArg::Buf(a), LocalArg::Buf(a), LocalArg::I32(8)],
            )
            .unwrap_err();
        assert!(matches!(err, LocalError::Aliased(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut rt = rt(1);
        let k = Arc::new(compile_one(SAXPY, "saxpy").unwrap());
        assert!(matches!(
            rt.launch(&k, 1, 1, vec![LocalArg::I32(0)]),
            Err(LocalError::BadArgs(_))
        ));
    }

    fn inc_kernel() -> Arc<CompiledKernel> {
        Arc::new(
            compile_one(
                "__global__ void inc(float* a, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = a[i] + 1.0; }
                }",
                "inc",
            )
            .unwrap(),
        )
    }

    fn quarantined_worker(rt: &LocalRuntime) -> Option<usize> {
        rt.sched_trace().events().iter().find_map(|e| match e {
            SchedEvent::Quarantine { worker, .. } => Some(*worker),
            _ => None,
        })
    }

    #[test]
    fn killed_worker_surfaces_as_error_not_hang() {
        // Recovery disabled: the pre-failover contract — death surfaces as
        // an error naming the actual dead worker, never a hang.
        let mut cfg = LocalConfig::new(2, PolicyKind::RoundRobin);
        cfg.planner.fault_cfg.recovery = false;
        let mut rt = LocalRuntime::try_new(cfg).expect("startup");
        let a = rt.alloc_f32(256);
        let k = inc_kernel();
        rt.kill_worker(0);
        // Round-robin will try worker 0 first; the dead channel must turn
        // into an error rather than a lost message.
        let mut died = false;
        for _ in 0..2 {
            rt.launch(&k, 1, 256, vec![LocalArg::Buf(a), LocalArg::I32(256)])
                .unwrap();
            match rt.synchronize() {
                Err(LocalError::WorkerDied { worker, at_ce }) => {
                    assert_eq!(worker, 0, "the real dead worker is reported");
                    assert!(at_ce.is_some(), "the in-flight CE is reported");
                    died = true;
                    break;
                }
                other => other.unwrap(),
            }
        }
        assert!(died, "worker death must surface");
    }

    #[test]
    fn recovery_survives_a_killed_worker() {
        let mut rt = rt(2);
        let a = rt.alloc_f32(256);
        let k = inc_kernel();
        for _ in 0..3 {
            rt.launch(&k, 1, 256, vec![LocalArg::Buf(a), LocalArg::I32(256)])
                .unwrap();
        }
        rt.synchronize().unwrap();
        rt.kill_worker(0);
        for _ in 0..3 {
            rt.launch(&k, 1, 256, vec![LocalArg::Buf(a), LocalArg::I32(256)])
                .unwrap();
        }
        let out = rt.read_f32(a).unwrap();
        assert!(out.iter().all(|&v| v == 6.0), "got {}", out[0]);
        assert!(rt.is_quarantined(0));
        assert_eq!(rt.healthy_workers(), 1);
        assert_eq!(quarantined_worker(&rt), Some(0));
        assert_eq!(rt.epoch(), 1);
    }

    #[test]
    fn injected_kill_matches_fault_free_run() {
        let run = |faults: crate::faults::FaultPlan| {
            let mut cfg = LocalConfig::new(2, PolicyKind::RoundRobin);
            cfg.planner.faults = faults;
            let mut rt = LocalRuntime::try_new(cfg).expect("startup");
            let a = rt.alloc_f32(512);
            let k = inc_kernel();
            for _ in 0..6 {
                rt.launch(&k, 2, 256, vec![LocalArg::Buf(a), LocalArg::I32(512)])
                    .unwrap();
            }
            let out = rt.read_f32(a).unwrap();
            (out, rt)
        };
        let (clean, _) = run(crate::faults::FaultPlan::none());
        let (faulty, rt) = run(crate::faults::FaultPlan::kill_at_ce(3));
        assert_eq!(clean, faulty, "recovery must be bit-identical");
        let dead = quarantined_worker(&rt).expect("a quarantine was recorded");
        let events = rt.sched_trace().events();
        assert!(events
            .iter()
            .any(|e| matches!(e, SchedEvent::Fault { at_ce: 3, .. })));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SchedEvent::Replay { .. })),
            "lost versions were rebuilt by lineage replay: {events:?}"
        );
        assert!(rt.stats().replays > 0);
        // Degraded mode: every post-fault kernel avoids the dead node.
        for i in 4..6 {
            assert_ne!(
                rt.node_assignment(i),
                Some(Location::worker(dead)),
                "CE {i} must avoid the quarantined worker"
            );
        }
    }

    #[test]
    fn transient_failures_retry_then_succeed() {
        let mut cfg = LocalConfig::new(2, PolicyKind::RoundRobin);
        cfg.planner.faults =
            crate::faults::FaultPlan::with_events(vec![crate::faults::FaultEvent {
                at_ce: 0,
                kind: crate::faults::FaultKind::FailLaunch { times: 2 },
            }]);
        let mut rt = LocalRuntime::try_new(cfg).expect("startup");
        let a = rt.alloc_f32(128);
        let k = inc_kernel();
        rt.launch(&k, 1, 128, vec![LocalArg::Buf(a), LocalArg::I32(128)])
            .unwrap();
        let out = rt.read_f32(a).unwrap();
        assert!(out.iter().all(|&v| v == 1.0));
        let retries = rt
            .sched_trace()
            .events()
            .iter()
            .filter(|e| matches!(e, SchedEvent::Retry { at_ce: 0, .. }))
            .count();
        assert_eq!(retries, 2, "one Retry event per injected failure");
        assert!(quarantined_worker(&rt).is_none(), "no quarantine needed");
        assert_eq!(rt.stats().kernels, 1, "retries are not new kernels");
    }

    #[test]
    fn persistent_transient_failure_quarantines_the_node() {
        let mut cfg = LocalConfig::new(2, PolicyKind::RoundRobin);
        cfg.planner.faults =
            crate::faults::FaultPlan::with_events(vec![crate::faults::FaultEvent {
                at_ce: 0,
                kind: crate::faults::FaultKind::FailLaunch { times: 10 },
            }]);
        let mut rt = LocalRuntime::try_new(cfg).expect("startup");
        let a = rt.alloc_f32(128);
        let k = inc_kernel();
        rt.launch(&k, 1, 128, vec![LocalArg::Buf(a), LocalArg::I32(128)])
            .unwrap();
        let out = rt.read_f32(a).unwrap();
        assert!(out.iter().all(|&v| v == 1.0));
        let dead = quarantined_worker(&rt).expect("retry budget exhausted => quarantine");
        assert!(rt.is_quarantined(dead));
        assert!(
            rt.sched_trace()
                .events()
                .iter()
                .any(|e| matches!(e, SchedEvent::Reassign { dag_index: 0, .. })),
            "the failing CE moved to a healthy worker"
        );
    }

    #[test]
    fn dropped_transfer_is_redriven_after_timeout() {
        let mut cfg = LocalConfig::new(2, PolicyKind::RoundRobin);
        cfg.planner.faults =
            crate::faults::FaultPlan::with_events(vec![crate::faults::FaultEvent {
                at_ce: 1,
                kind: crate::faults::FaultKind::DropTransfer,
            }]);
        cfg.planner.fault_cfg.detection_timeout = SimDuration::from_millis(30);
        let mut rt = LocalRuntime::try_new(cfg).expect("startup");
        let a = rt.alloc_f32(128);
        rt.write_f32(a, |v| v.iter_mut().for_each(|e| *e = 1.0))
            .unwrap();
        let k = inc_kernel();
        rt.launch(&k, 1, 128, vec![LocalArg::Buf(a), LocalArg::I32(128)])
            .unwrap();
        let out = rt.read_f32(a).unwrap();
        assert!(out.iter().all(|&v| v == 2.0));
        let events = rt.sched_trace().events();
        assert!(events
            .iter()
            .any(|e| matches!(e, SchedEvent::TransferDropped { at_ce: 1, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, SchedEvent::TransferRedriven { at_ce: 1 })));
        assert!(rt.stats().redriven_bytes > 0);
    }

    #[test]
    fn delayed_transfer_is_recorded_and_completes() {
        let mut cfg = LocalConfig::new(2, PolicyKind::RoundRobin);
        cfg.planner.faults =
            crate::faults::FaultPlan::with_events(vec![crate::faults::FaultEvent {
                at_ce: 1,
                kind: crate::faults::FaultKind::DelayTransfer {
                    delay: SimDuration::from_millis(2),
                },
            }]);
        let mut rt = LocalRuntime::try_new(cfg).expect("startup");
        let a = rt.alloc_f32(64);
        rt.write_f32(a, |v| v.iter_mut().for_each(|e| *e = 1.0))
            .unwrap();
        let k = inc_kernel();
        rt.launch(&k, 1, 64, vec![LocalArg::Buf(a), LocalArg::I32(64)])
            .unwrap();
        let out = rt.read_f32(a).unwrap();
        assert!(out.iter().all(|&v| v == 2.0));
        assert!(rt
            .sched_trace()
            .events()
            .iter()
            .any(|e| matches!(e, SchedEvent::TransferDelayed { at_ce: 1, .. })));
    }

    #[test]
    fn spawn_failure_degrades_instead_of_panicking() {
        let cfg = LocalConfig::new(2, PolicyKind::RoundRobin);
        let transport = ChannelTransport::with_spawner(2, |i, rx, back, peers| {
            if i == 0 {
                Err(std::io::Error::other("no threads left"))
            } else {
                std::thread::Builder::new()
                    .spawn(move || crate::transport::run_worker(i, rx, back, peers))
            }
        });
        let mut rt = LocalRuntime::with_transport(cfg, Box::new(transport)).unwrap();
        assert!(rt.is_quarantined(0));
        assert_eq!(rt.healthy_workers(), 1);
        assert!(rt
            .sched_trace()
            .events()
            .iter()
            .any(|e| matches!(e, SchedEvent::SpawnFailed { worker: 0 })));
        let a = rt.alloc_f32(64);
        let k = inc_kernel();
        rt.launch(&k, 1, 64, vec![LocalArg::Buf(a), LocalArg::I32(64)])
            .unwrap();
        let out = rt.read_f32(a).unwrap();
        assert!(out.iter().all(|&v| v == 1.0));
        assert_eq!(rt.node_assignment(0), Some(Location::worker(1)));
    }

    #[test]
    fn all_spawns_failing_is_an_error() {
        let cfg = LocalConfig::new(2, PolicyKind::RoundRobin);
        let transport = ChannelTransport::with_spawner(2, |_, _, _, _| {
            Err(std::io::Error::other("no threads left"))
        });
        let result = LocalRuntime::with_transport(cfg, Box::new(transport));
        assert!(matches!(
            result.err(),
            Some(LocalError::SpawnFailed { worker: 0, .. })
        ));
    }

    #[test]
    fn min_transfer_size_keeps_work_local() {
        let mut rt = LocalRuntime::try_new(LocalConfig::new(
            2,
            PolicyKind::MinTransferSize(crate::policy::ExplorationLevel::Low),
        ))
        .expect("startup");
        let n = 1 << 14;
        let a = rt.alloc_f32(n);
        let k = Arc::new(
            compile_one(
                "__global__ void inc(float* a, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = a[i] + 1.0; }
                }",
                "inc",
            )
            .unwrap(),
        );
        for _ in 0..8 {
            rt.launch(&k, 64, 256, vec![LocalArg::Buf(a), LocalArg::I32(n as i32)])
                .unwrap();
        }
        rt.synchronize().unwrap();
        // First send moves the array once; locality keeps it there after.
        assert_eq!(rt.stats().send_bytes, (n * 4) as u64);
        assert_eq!(rt.stats().p2p_bytes, 0);
        assert_eq!(rt.read_f32(a).unwrap()[0], 8.0);
    }

    #[test]
    fn local_trace_mirrors_the_planner() {
        let mut rt = rt(2);
        let n = 1024usize;
        let a = rt.alloc_f32(n);
        let fill = Arc::new(
            compile_one(
                "__global__ void fill(float* a, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = 3.0; }
                }",
                "fill",
            )
            .unwrap(),
        );
        let inc = Arc::new(
            compile_one(
                "__global__ void inc(float* a, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { a[i] = a[i] + 1.0; }
                }",
                "inc",
            )
            .unwrap(),
        );
        rt.launch(
            &fill,
            4,
            256,
            vec![LocalArg::Buf(a), LocalArg::I32(n as i32)],
        )
        .unwrap();
        rt.launch(
            &inc,
            4,
            256,
            vec![LocalArg::Buf(a), LocalArg::I32(n as i32)],
        )
        .unwrap();
        rt.synchronize().unwrap();
        let plans: Vec<&Plan> = rt.sched_trace().plans().collect();
        assert_eq!(plans.len(), 2);
        // fill -> worker 0 (round-robin), inc -> worker 1 with a P2P pull.
        assert_eq!(plans[0].assigned_node, Location::worker(0));
        assert_eq!(plans[1].deps, vec![0]);
        assert_eq!(plans[1].movements[0].kind, MovementKind::P2p);
        assert!(plans[1].placement.is_none(), "no devices to place on");
        assert_eq!(rt.read_f32(a).unwrap()[0], 4.0);
    }
}
