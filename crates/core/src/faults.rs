//! Deterministic fault injection and the shared recovery machinery.
//!
//! Production deployments lose workers mid-CE, see kernel launches fail
//! transiently, and watch transfers stall. This module gives both runtimes
//! one seeded, replayable description of such events — the [`FaultPlan`] —
//! plus the pieces of recovery logic that are backend-independent: the
//! retry/backoff knobs ([`FaultConfig`]), per-worker liveness with an epoch
//! counter ([`FailureDetector`]), and the minimal-lineage closure
//! ([`replay_closure`]) that decides which completed DAG ancestors must be
//! re-executed to reconstruct array versions lost with a dead node.
//!
//! Determinism contract: a `FaultPlan` is keyed purely on DAG indices (the
//! dense submission order shared by [`crate::SimRuntime`] and
//! [`crate::LocalRuntime`]), the seeded generator uses [`desim::seeded_rng`],
//! and nothing here reads the wall clock — so the simulator prices a faulty
//! run without any real-time dependence and the local runtime replays the
//! exact same fault schedule on every run.

use std::collections::{BTreeSet, HashSet};

use desim::SimDuration;
use rand::Rng;

use crate::ce::ArrayId;
use crate::dag::DagIndex;

/// What goes wrong at a given CE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker assigned to this CE dies the moment it receives the
    /// launch command (before executing it). One-shot: after recovery the
    /// reassigned CE runs normally.
    KillWorker,
    /// The kernel launch fails transiently `times` times before
    /// succeeding. When `times` exceeds the configured retry budget the
    /// worker is treated as faulty and quarantined.
    FailLaunch {
        /// Number of consecutive transient failures to inject.
        times: u32,
    },
    /// The first planned data movement of this CE is lost in transit and
    /// must be re-driven after a detection timeout.
    DropTransfer,
    /// The first planned data movement of this CE arrives late by `delay`
    /// (timing-only: the simulator prices it, the local runtime records it).
    DelayTransfer {
        /// Extra latency before the transfer starts.
        delay: SimDuration,
    },
}

impl FaultKind {
    /// Short label used in traces.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::KillWorker => "kill-worker",
            FaultKind::FailLaunch { .. } => "fail-launch",
            FaultKind::DropTransfer => "drop-transfer",
            FaultKind::DelayTransfer { .. } => "delay-transfer",
        }
    }
}

/// One scheduled fault: `kind` fires when the CE at `at_ce` (Global DAG
/// index, submission order) is dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Global DAG index the fault is keyed on.
    pub at_ce: DagIndex,
    /// What happens there.
    pub kind: FaultKind,
}

/// A deterministic, replayable schedule of injected faults.
///
/// Lives in [`crate::PlannerConfig`] so the simulator and the local runtime
/// honour the identical schedule. Keying on DAG indices (not wall-clock
/// time) is what makes the two backends comparable fault-for-fault.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No faults (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from an explicit event list.
    pub fn with_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_ce);
        FaultPlan { events }
    }

    /// A single worker death at CE `at_ce`.
    pub fn kill_at_ce(at_ce: DagIndex) -> Self {
        FaultPlan::with_events(vec![FaultEvent {
            at_ce,
            kind: FaultKind::KillWorker,
        }])
    }

    /// Seeded single-death plan: kills the worker executing one CE chosen
    /// uniformly from `candidates` (typically the kernel CEs of a
    /// workload). Deterministic per seed via [`desim::seeded_rng`].
    pub fn one_death(seed: u64, candidates: &[DagIndex]) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate CE");
        let mut rng = desim::seeded_rng(seed);
        let at_ce = candidates[rng.gen_range(0..candidates.len())];
        FaultPlan::kill_at_ce(at_ce)
    }

    /// Seeded mixed-fault plan: one fault drawn per candidate CE with
    /// probability `rate`, kind chosen among all four [`FaultKind`]s.
    /// Deterministic per seed; no wall clock involved.
    pub fn seeded(seed: u64, candidates: &[DagIndex], rate: f64) -> Self {
        let mut rng = desim::seeded_rng(seed);
        let mut events = Vec::new();
        for &at_ce in candidates {
            if !rng.gen_bool(rate) {
                continue;
            }
            let kind = match rng.gen_range(0u32..4) {
                0 => FaultKind::KillWorker,
                1 => FaultKind::FailLaunch {
                    times: rng.gen_range(1u32..3),
                },
                2 => FaultKind::DropTransfer,
                _ => FaultKind::DelayTransfer {
                    delay: SimDuration::from_millis(rng.gen_range(1u64..50)),
                },
            };
            events.push(FaultEvent { at_ce, kind });
        }
        FaultPlan::with_events(events)
    }

    /// Every scheduled event, ordered by DAG index.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn kind_at(&self, at_ce: DagIndex) -> impl Iterator<Item = FaultKind> + '_ {
        self.events
            .iter()
            .filter(move |e| e.at_ce == at_ce)
            .map(|e| e.kind)
    }

    /// Whether the worker executing CE `at_ce` is scheduled to die.
    pub fn kill_at(&self, at_ce: DagIndex) -> bool {
        self.kind_at(at_ce)
            .any(|k| matches!(k, FaultKind::KillWorker))
    }

    /// Injected transient launch-failure count for CE `at_ce`, if any.
    pub fn fail_launch_at(&self, at_ce: DagIndex) -> Option<u32> {
        self.kind_at(at_ce).find_map(|k| match k {
            FaultKind::FailLaunch { times } => Some(times),
            _ => None,
        })
    }

    /// Whether this CE's first transfer is scheduled to be lost.
    pub fn drop_at(&self, at_ce: DagIndex) -> bool {
        self.kind_at(at_ce)
            .any(|k| matches!(k, FaultKind::DropTransfer))
    }

    /// Injected delay on this CE's first transfer, if any.
    pub fn delay_at(&self, at_ce: DagIndex) -> Option<SimDuration> {
        self.kind_at(at_ce).find_map(|k| match k {
            FaultKind::DelayTransfer { delay } => Some(delay),
            _ => None,
        })
    }
}

/// What goes wrong on the wire at a given frame.
///
/// All of these are *omission-class* faults the session-resume layer must
/// absorb: the planner-visible delivery stream of a chaos run is required
/// to be bit-identical to the clean run (no quarantine, no replay — just
/// retransmits and resumes counted in the wire stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// The frame is lost in transit and must be retransmitted from the
    /// unacked buffer.
    DropFrame,
    /// The frame arrives twice; the receiver's sequence cursor drops the
    /// duplicate.
    DupFrame,
    /// The frame arrives late by `delay` (reordering within the resend
    /// window; sequencing restores order).
    DelayFrame {
        /// Extra in-flight latency.
        delay: SimDuration,
    },
    /// The connection is torn down at this frame; the controller re-dials
    /// and resumes the session, replaying unacked frames.
    Sever,
    /// The peer is unreachable for the next `frames` control frames; all
    /// traffic in the window is absorbed by the resume machinery once the
    /// partition heals.
    Partition {
        /// Window length, in control frames sent to the peer.
        frames: u64,
    },
}

impl NetFaultKind {
    /// Short label used in traces.
    pub fn name(self) -> &'static str {
        match self {
            NetFaultKind::DropFrame => "drop-frame",
            NetFaultKind::DupFrame => "dup-frame",
            NetFaultKind::DelayFrame { .. } => "delay-frame",
            NetFaultKind::Sever => "sever",
            NetFaultKind::Partition { .. } => "partition",
        }
    }
}

/// One scheduled network fault: `kind` fires when the controller sends its
/// `at_frame`-th control frame (0-based, per peer) to worker `peer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultEvent {
    /// Worker whose connection misbehaves.
    pub peer: usize,
    /// 0-based per-peer control-frame count the fault is keyed on.
    pub at_frame: u64,
    /// What happens there.
    pub kind: NetFaultKind,
}

/// A deterministic, replayable schedule of network faults.
///
/// Keyed on per-peer control-frame counts (not wall-clock time) for the
/// same reason [`FaultPlan`] keys on DAG indices: the in-process and TCP
/// transports send the identical frame stream, so both can honour the
/// identical schedule and the chaos differential harness can assert
/// bit-identical outcomes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    events: Vec<NetFaultEvent>,
}

impl NetFaultPlan {
    /// No network faults (the default).
    pub fn none() -> Self {
        NetFaultPlan::default()
    }

    /// A plan from an explicit event list.
    pub fn with_events(mut events: Vec<NetFaultEvent>) -> Self {
        events.sort_by_key(|e| (e.peer, e.at_frame));
        NetFaultPlan { events }
    }

    /// A single connection sever at frame `at_frame` to worker `peer`.
    pub fn sever_at(peer: usize, at_frame: u64) -> Self {
        NetFaultPlan::with_events(vec![NetFaultEvent {
            peer,
            at_frame,
            kind: NetFaultKind::Sever,
        }])
    }

    /// Seeded mixed plan: for each of `peers` workers, each of the first
    /// `frames` control frames draws a fault with probability `rate`.
    /// Deterministic per seed via [`desim::seeded_rng`].
    pub fn seeded(seed: u64, peers: usize, frames: u64, rate: f64) -> Self {
        let mut rng = desim::seeded_rng(seed);
        let mut events = Vec::new();
        for peer in 0..peers {
            for at_frame in 0..frames {
                if !rng.gen_bool(rate) {
                    continue;
                }
                let kind = match rng.gen_range(0u32..5) {
                    0 => NetFaultKind::DropFrame,
                    1 => NetFaultKind::DupFrame,
                    2 => NetFaultKind::DelayFrame {
                        delay: SimDuration::from_millis(rng.gen_range(1u64..20)),
                    },
                    3 => NetFaultKind::Sever,
                    _ => NetFaultKind::Partition {
                        frames: rng.gen_range(1u64..8),
                    },
                };
                events.push(NetFaultEvent {
                    peer,
                    at_frame,
                    kind,
                });
            }
        }
        NetFaultPlan::with_events(events)
    }

    /// Every scheduled event, ordered by (peer, frame).
    pub fn events(&self) -> &[NetFaultEvent] {
        &self.events
    }

    /// True when no network fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All faults keyed on the `at_frame`-th control frame to `peer`.
    pub fn at(&self, peer: usize, at_frame: u64) -> impl Iterator<Item = NetFaultKind> + '_ {
        self.events
            .iter()
            .filter(move |e| e.peer == peer && e.at_frame == at_frame)
            .map(|e| e.kind)
    }
}

/// Detection and recovery knobs shared by both runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Transient launch failures tolerated per CE before the worker is
    /// quarantined and the CE replanned.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt ([`SimDuration::exp_backoff`]).
    pub backoff_base: SimDuration,
    /// Backoff ceiling.
    pub backoff_cap: SimDuration,
    /// How long the controller waits on the channel mesh before probing
    /// worker liveness (the simulator prices this as detection latency).
    pub detection_timeout: SimDuration,
    /// When false, a detected death surfaces as an error instead of
    /// triggering quarantine + replay (the pre-recovery behaviour).
    pub recovery: bool,
    /// Worker heartbeat cadence in milliseconds (TCP transport; carried in
    /// the adoption handshake).
    pub heartbeat_ms: u32,
    /// Heartbeats a worker may miss before its connection is considered
    /// stale and the suspect/resume machinery kicks in.
    pub stale_after_beats: u32,
    /// The omission-fault grace window: how long a severed or stale TCP
    /// connection may spend in `Suspected` while the controller retries a
    /// session resume before the worker is declared `Dead` and
    /// quarantined.
    pub reconnect_window: SimDuration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            max_retries: 3,
            backoff_base: SimDuration::from_millis(1),
            backoff_cap: SimDuration::from_millis(100),
            detection_timeout: SimDuration::from_millis(250),
            recovery: true,
            heartbeat_ms: 100,
            stale_after_beats: 10,
            reconnect_window: SimDuration::from_millis(2000),
        }
    }
}

/// One worker's membership state in the [`FailureDetector`].
///
/// `Healthy → Suspected → Dead` is the omission-fault ladder: a stale or
/// severed connection makes a worker *Suspected* (no new CEs placed on it,
/// session resume attempted), and only the expiry of the
/// [`FaultConfig::reconnect_window`] grace period — or a hard crash signal —
/// promotes it to *Dead* (quarantine + lineage replay). A Dead worker may
/// re-enter via `rejoin`, which starts a new membership epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Fully live: heartbeats fresh, eligible for new CEs.
    Healthy,
    /// In the grace window: not scheduled onto, not yet quarantined.
    Suspected,
    /// Confirmed dead: quarantined until an explicit rejoin.
    Dead,
}

/// Per-worker liveness with an epoch counter.
///
/// The epoch bumps once per confirmed failure *and* once per rejoin, so
/// every trace event carries which "view" of the cluster it was recorded
/// under — the standard way group-membership protocols disambiguate pre-
/// and post-failure messages. Suspicion is epoch-neutral: entering or
/// leaving `Suspected` changes no epoch, because the membership view has
/// not changed yet. The epoch is monotone; no transition ever lowers it.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    state: Vec<Health>,
    epoch: u64,
}

impl FailureDetector {
    /// All `workers` start alive, epoch 0.
    pub fn new(workers: usize) -> Self {
        FailureDetector {
            state: vec![Health::Healthy; workers],
            epoch: 0,
        }
    }

    /// The current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Grows the tracked worker set to `workers` (elastic scale-out): new
    /// slots enter Healthy. Growing never shrinks and never touches
    /// existing state; the membership-epoch bump for a join is recorded by
    /// the planner op, so the detector epoch moves with it.
    pub fn grow(&mut self, workers: usize) {
        assert!(workers >= self.state.len(), "the worker set never shrinks");
        if workers > self.state.len() {
            self.state.resize(workers, Health::Healthy);
            self.epoch += 1;
        }
    }

    /// Worker `w`'s membership state.
    pub fn health(&self, w: usize) -> Health {
        self.state.get(w).copied().unwrap_or(Health::Dead)
    }

    /// Whether worker `w` is still considered alive (Healthy or
    /// Suspected — in-flight work on a suspected node may yet complete).
    pub fn is_alive(&self, w: usize) -> bool {
        self.health(w) != Health::Dead
    }

    /// Whether worker `w` is in the suspect grace window.
    pub fn is_suspected(&self, w: usize) -> bool {
        self.health(w) == Health::Suspected
    }

    /// Moves a Healthy worker into the Suspected grace window. No epoch
    /// change. Returns true when the state actually changed (Dead workers
    /// stay dead, Suspected stays suspected).
    pub fn mark_suspected(&mut self, w: usize) -> bool {
        if self.state[w] == Health::Healthy {
            self.state[w] = Health::Suspected;
            true
        } else {
            false
        }
    }

    /// Clears a suspicion: the worker resumed within the grace window. No
    /// epoch change. Returns true when the state actually changed.
    pub fn reinstate(&mut self, w: usize) -> bool {
        if self.state[w] == Health::Suspected {
            self.state[w] = Health::Healthy;
            true
        } else {
            false
        }
    }

    /// Marks worker `w` dead and bumps the epoch; returns the new epoch.
    /// Idempotent: a second report of the same death changes nothing.
    pub fn mark_dead(&mut self, w: usize) -> u64 {
        if self.state[w] != Health::Dead {
            self.state[w] = Health::Dead;
            self.epoch += 1;
        }
        self.epoch
    }

    /// Re-admits a Dead worker under a new membership epoch; returns the
    /// new epoch. A rejoin of a merely-Suspected worker is a reinstate
    /// (epoch-neutral); rejoining a Healthy worker changes nothing.
    pub fn rejoin(&mut self, w: usize) -> u64 {
        match self.state[w] {
            Health::Dead => {
                self.state[w] = Health::Healthy;
                self.epoch += 1;
            }
            Health::Suspected => self.state[w] = Health::Healthy,
            Health::Healthy => {}
        }
        self.epoch
    }

    /// Number of workers still alive (Healthy or Suspected).
    pub fn healthy(&self) -> usize {
        self.state.iter().filter(|s| **s != Health::Dead).count()
    }
}

/// Computes the minimal set of *completed* DAG ancestors that must be
/// re-executed to reconstruct the array versions in `targets`.
///
/// Resolution per `(array, version)` pair: if `available` says the
/// controller can already produce those bytes (version 0 zeros, an archived
/// snapshot, or the live master copy) nothing is replayed; otherwise the
/// version's writer is consulted via `writer_of` — a completed writer joins
/// the replay set and its own input versions recurse, an incomplete writer
/// is skipped (it will be re-executed through normal dispatch after
/// reassignment, not replayed). A version with no writer and no
/// availability is unrecoverable and returned as `Err`.
///
/// The result is ascending DAG order, which is a valid topological order
/// (every ancestor precedes its descendants in submission order), so
/// executing it front to back reconstructs each input before its consumer.
pub fn replay_closure(
    targets: &[(ArrayId, u64)],
    mut writer_of: impl FnMut(ArrayId, u64) -> Option<(DagIndex, bool)>,
    mut needs_of: impl FnMut(DagIndex) -> Vec<(ArrayId, u64)>,
    mut available: impl FnMut(ArrayId, u64) -> bool,
) -> Result<Vec<DagIndex>, (ArrayId, u64)> {
    let mut out: BTreeSet<DagIndex> = BTreeSet::new();
    let mut seen: HashSet<(ArrayId, u64)> = HashSet::new();
    let mut stack: Vec<(ArrayId, u64)> = targets.to_vec();
    while let Some((a, v)) = stack.pop() {
        if !seen.insert((a, v)) || v == 0 || available(a, v) {
            continue;
        }
        match writer_of(a, v) {
            Some((w, completed)) => {
                if completed && out.insert(w) {
                    stack.extend(needs_of(w));
                }
            }
            None => return Err((a, v)),
        }
    }
    Ok(out.into_iter().collect())
}

/// A scheduling/recovery event recorded in [`crate::SchedTrace`].
///
/// Plans say where CEs *go*; events say what went *wrong* and how the
/// runtime recovered: every fault, retry, quarantine, replay and
/// reassignment decision, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedEvent {
    /// An injected or detected fault fired.
    Fault {
        /// CE in flight when the fault was attributed (the failing CE).
        at_ce: DagIndex,
        /// Worker involved, when one is (transfer faults have none).
        worker: Option<usize>,
        /// [`FaultKind::name`]-style label.
        kind: &'static str,
        /// Membership epoch after detection.
        epoch: u64,
    },
    /// A transient launch failure is being retried with backoff.
    Retry {
        /// The failing CE.
        at_ce: DagIndex,
        /// Worker the launch failed on.
        worker: usize,
        /// 1-based attempt number.
        attempt: u32,
        /// Backoff waited before this retry.
        backoff: SimDuration,
    },
    /// A node was quarantined: no policy will assign work to it again.
    Quarantine {
        /// The quarantined worker.
        worker: usize,
        /// The CE whose failure triggered the quarantine.
        at_ce: DagIndex,
        /// Arrays whose only up-to-date copy died with the node.
        lost: Vec<ArrayId>,
        /// Membership epoch of the quarantine.
        epoch: u64,
    },
    /// A completed ancestor CE was re-executed on the controller to
    /// reconstruct lost array versions.
    Replay {
        /// The replayed CE's DAG index.
        dag_index: DagIndex,
        /// Epoch of the recovery this replay belongs to.
        epoch: u64,
    },
    /// An in-flight CE was moved off a quarantined node.
    Reassign {
        /// The moved CE.
        dag_index: DagIndex,
        /// Quarantined worker it was assigned to.
        from: usize,
        /// Healthy worker it now targets.
        to: usize,
        /// Epoch of the recovery.
        epoch: u64,
    },
    /// A planned transfer was lost (injected) and will be re-driven.
    TransferDropped {
        /// CE whose movement was dropped.
        at_ce: DagIndex,
        /// The array that failed to arrive.
        array: ArrayId,
    },
    /// A planned transfer was delayed (injected, timing-only).
    TransferDelayed {
        /// CE whose movement was delayed.
        at_ce: DagIndex,
        /// The delayed array.
        array: ArrayId,
        /// Injected extra latency.
        delay: SimDuration,
    },
    /// The controller re-sent a CE's inputs after a timeout or recovery.
    TransferRedriven {
        /// The re-supplied CE.
        at_ce: DagIndex,
    },
    /// A worker thread failed to spawn at startup; the node starts
    /// quarantined instead of aborting the deployment.
    SpawnFailed {
        /// The worker that never came up.
        worker: usize,
    },
    /// A worker entered the suspect grace window (stale heartbeats or a
    /// severed connection under resume): no new CEs placed on it, no
    /// quarantine yet.
    Suspected {
        /// The suspected worker.
        worker: usize,
        /// Membership epoch (unchanged by suspicion).
        epoch: u64,
    },
    /// A suspected worker resumed within the grace window and is eligible
    /// for new work again.
    Reinstated {
        /// The reinstated worker.
        worker: usize,
        /// Membership epoch (unchanged).
        epoch: u64,
    },
    /// A previously-dead worker re-entered the cluster under a new
    /// membership epoch (its state treated as empty, links re-probed).
    Rejoined {
        /// The rejoined worker.
        worker: usize,
        /// The new membership epoch.
        epoch: u64,
    },
    /// A brand-new worker attached to the live controller (elastic
    /// scale-out): the worker set grew by one.
    Joined {
        /// Index the newcomer was assigned.
        worker: usize,
        /// The new membership epoch.
        epoch: u64,
    },
    /// A worker departed cleanly (elastic scale-in): its sole-copy arrays
    /// were rebalanced to the controller first, so nothing was lost and
    /// nothing was quarantined.
    Departed {
        /// The departed worker.
        worker: usize,
        /// Arrays whose authoritative copy moved to the controller.
        rebalanced: usize,
        /// The new membership epoch.
        epoch: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_queries_match_events() {
        let plan = FaultPlan::with_events(vec![
            FaultEvent {
                at_ce: 3,
                kind: FaultKind::KillWorker,
            },
            FaultEvent {
                at_ce: 5,
                kind: FaultKind::FailLaunch { times: 2 },
            },
            FaultEvent {
                at_ce: 7,
                kind: FaultKind::DropTransfer,
            },
            FaultEvent {
                at_ce: 9,
                kind: FaultKind::DelayTransfer {
                    delay: SimDuration::from_millis(5),
                },
            },
        ]);
        assert!(plan.kill_at(3) && !plan.kill_at(4));
        assert_eq!(plan.fail_launch_at(5), Some(2));
        assert_eq!(plan.fail_launch_at(3), None);
        assert!(plan.drop_at(7));
        assert_eq!(plan.delay_at(9), Some(SimDuration::from_millis(5)));
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let ces: Vec<DagIndex> = (0..32).collect();
        assert_eq!(
            FaultPlan::seeded(7, &ces, 0.3),
            FaultPlan::seeded(7, &ces, 0.3)
        );
        assert_ne!(
            FaultPlan::seeded(7, &ces, 1.0),
            FaultPlan::seeded(8, &ces, 1.0)
        );
        assert_eq!(FaultPlan::one_death(1, &ces), FaultPlan::one_death(1, &ces));
        assert_eq!(FaultPlan::one_death(1, &ces).events().len(), 1);
    }

    #[test]
    fn detector_epochs_count_failures_once() {
        let mut d = FailureDetector::new(3);
        assert_eq!(d.epoch(), 0);
        assert_eq!(d.healthy(), 3);
        assert_eq!(d.mark_dead(1), 1);
        assert_eq!(d.mark_dead(1), 1, "idempotent");
        assert_eq!(d.mark_dead(2), 2);
        assert!(d.is_alive(0) && !d.is_alive(1));
        assert_eq!(d.healthy(), 1);
    }

    #[test]
    fn suspicion_is_epoch_neutral_and_reversible() {
        let mut d = FailureDetector::new(2);
        assert!(d.mark_suspected(0));
        assert!(!d.mark_suspected(0), "already suspected");
        assert_eq!(d.epoch(), 0, "suspicion bumps no epoch");
        assert!(d.is_alive(0) && d.is_suspected(0));
        assert_eq!(d.healthy(), 2, "suspected still counts as alive");
        assert!(d.reinstate(0));
        assert!(!d.is_suspected(0) && d.is_alive(0));
        assert_eq!(d.epoch(), 0);
        assert!(!d.reinstate(1), "healthy worker has nothing to clear");
    }

    #[test]
    fn rejoin_bumps_epoch_only_from_dead() {
        let mut d = FailureDetector::new(2);
        d.mark_suspected(1);
        assert_eq!(d.rejoin(1), 0, "suspected rejoin is a reinstate");
        assert_eq!(d.mark_dead(1), 1);
        assert_eq!(d.rejoin(1), 2, "dead rejoin opens a new epoch");
        assert!(d.is_alive(1) && !d.is_suspected(1));
        assert_eq!(d.rejoin(1), 2, "healthy rejoin is a no-op");
        assert_eq!(d.health(1), Health::Healthy);
        assert_eq!(d.health(7), Health::Dead, "unknown index is dead");
    }

    #[test]
    fn net_fault_plans_are_reproducible_and_queryable() {
        assert_eq!(
            NetFaultPlan::seeded(5, 3, 64, 0.1),
            NetFaultPlan::seeded(5, 3, 64, 0.1)
        );
        assert_ne!(
            NetFaultPlan::seeded(5, 3, 64, 1.0),
            NetFaultPlan::seeded(6, 3, 64, 1.0)
        );
        let plan = NetFaultPlan::sever_at(1, 12);
        assert!(plan.at(1, 12).any(|k| matches!(k, NetFaultKind::Sever)));
        assert_eq!(plan.at(0, 12).count(), 0);
        assert_eq!(plan.at(1, 11).count(), 0);
        assert!(NetFaultPlan::none().is_empty());
        assert_eq!(NetFaultKind::Sever.name(), "sever");
    }

    #[test]
    fn replay_closure_walks_lineage_to_availability() {
        // Versions a@1 <- ce0, a@2 <- ce2 (needs a@1), a@3 <- ce4 (needs
        // a@2). a@1 is archived; target a@3 must replay {ce2, ce4} only.
        let a = ArrayId(0);
        let writers = move |_arr: ArrayId, v: u64| match v {
            1 => Some((0usize, true)),
            2 => Some((2usize, true)),
            3 => Some((4usize, true)),
            _ => None,
        };
        let needs = move |w: DagIndex| match w {
            0 => vec![],
            2 => vec![(a, 1)],
            4 => vec![(a, 2)],
            _ => unreachable!(),
        };
        let order = replay_closure(&[(a, 3)], writers, needs, |_, v| v == 1).unwrap();
        assert_eq!(order, vec![2, 4], "ascending DAG order, ce0 not needed");
    }

    #[test]
    fn replay_closure_skips_incomplete_writers() {
        let a = ArrayId(0);
        // a@2's writer is in flight (will be re-dispatched, not replayed);
        // its input a@1 is not pulled in through it.
        let order = replay_closure(
            &[(a, 2)],
            |_, v| match v {
                1 => Some((0, true)),
                2 => Some((1, false)),
                _ => None,
            },
            |_| vec![(a, 1)],
            |_, _| false,
        )
        .unwrap();
        assert!(order.is_empty());
    }

    #[test]
    fn replay_closure_reports_unrecoverable_versions() {
        let a = ArrayId(7);
        let err = replay_closure(&[(a, 5)], |_, _| None, |_| vec![], |_, _| false).unwrap_err();
        assert_eq!(err, (a, 5));
    }

    #[test]
    fn version_zero_is_always_available() {
        let a = ArrayId(0);
        let order = replay_closure(&[(a, 0)], |_, _| None, |_| vec![], |_, _| false).unwrap();
        assert!(order.is_empty(), "zeros are reconstructible from the shape");
    }
}
