//! Unified tracing and metrics for every runtime backend.
//!
//! The evaluation questions of the paper — where do the bytes go per
//! inter-node policy, how saturated is each device, when does recovery
//! overhead dominate — all need one answer surface instead of per-runtime
//! ad-hoc stats. This module provides it in three layers:
//!
//! 1. **[`Recorder`]** — the span/instant/counter/gauge sink trait. The
//!    default state is *off*: a [`Telemetry`] handle holding no recorder
//!    short-circuits every call without allocating, so the hot scheduling
//!    paths pay one branch when tracing is disabled. Call sites that must
//!    build dynamic payloads gate on [`Telemetry::enabled`] first.
//! 2. **[`Metrics`]** — the always-on registry both runtimes maintain
//!    directly (no locks on the hot path): per-CE plan/queue/transfer/
//!    execute latency aggregates, bytes moved split by [`MovementKind`],
//!    fault/retry/quarantine/replay counters, and per-worker kernel
//!    occupancy.
//! 3. **Exporters** — [`ChromeTracer`] renders recorded events as Chrome
//!    `trace_event` JSON (one process lane per node, one thread lane per
//!    stream; loadable in `chrome://tracing` or [Perfetto]), and
//!    [`Metrics::to_json_value`] / [`Metrics::to_csv`] emit flat dumps the
//!    `grout-bench` binaries write as machine-readable run artifacts.
//!
//! Timestamps are nanoseconds from an arbitrary per-run origin: the
//! simulator passes virtual time (making traces bit-for-bit deterministic
//! per seed), the local runtime passes wall-clock time since startup.
//! The [`SchedEvent`] vocabulary from the faults module rides along as
//! structured payloads on instant events, so a trace of a chaotic run shows
//! retries, quarantines and replays on the controller lane.
//!
//! [Perfetto]: https://ui.perfetto.dev

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use serde::json::Value;

use crate::faults::SchedEvent;
use crate::policy::LinkMatrix;
use crate::scheduler::MovementKind;

/// Where an event happened: one Chrome-trace lane per `(node, track)`.
///
/// `node` follows [`crate::Location`] numbering (0 = controller, `i + 1` =
/// worker `i`). `track` subdivides a node: track 0 is the control lane
/// (planning, faults), track 1 the network lane (transfers landing on this
/// node), and `2 + device * 16 + stream` one lane per device stream.
///
/// On a shared fleet the node space is further striped per tenant
/// session: session `s` occupies nodes `[s * SESSION_LANE_STRIDE,
/// (s + 1) * SESSION_LANE_STRIDE)` so two sessions' controller (or
/// worker-0) streams never merge into one Perfetto lane. Session 0 is
/// the untagged standalone deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lane {
    /// Node the event belongs to (0 = controller, `i + 1` = worker `i`),
    /// offset by `session * SESSION_LANE_STRIDE` on shared fleets.
    pub node: usize,
    /// Track within the node (0 control, 1 network, 2+ device streams).
    pub track: usize,
}

/// Nodes reserved per tenant session in the [`Lane`] pid space: lanes of
/// session `s` live at `node = s * SESSION_LANE_STRIDE + local_node`.
/// 4096 nodes per session is far beyond any real fleet.
pub const SESSION_LANE_STRIDE: usize = 1 << 12;

impl Lane {
    /// The controller's control lane.
    pub const CONTROLLER: Lane = Lane { node: 0, track: 0 };

    /// Control lane of an arbitrary node.
    pub fn control(node: usize) -> Lane {
        Lane { node, track: 0 }
    }

    /// Network lane of a node (transfers arriving there).
    pub fn network(node: usize) -> Lane {
        Lane { node, track: 1 }
    }

    /// Execution lane for a device stream on a node.
    pub fn stream(node: usize, device: usize, stream: usize) -> Lane {
        Lane {
            node,
            track: 2 + device * 16 + stream,
        }
    }

    /// This lane moved into `session`'s stripe of the node space (no-op
    /// for session 0, the standalone namespace).
    pub fn for_session(self, session: u64) -> Lane {
        Lane {
            node: self.local_node() + session as usize * SESSION_LANE_STRIDE,
            track: self.track,
        }
    }

    /// The tenant session this lane belongs to (0 = standalone).
    pub fn session(self) -> u64 {
        (self.node / SESSION_LANE_STRIDE) as u64
    }

    /// The node index within the owning session's stripe.
    pub fn local_node(self) -> usize {
        self.node % SESSION_LANE_STRIDE
    }

    /// Human label for the track, used as the Chrome thread name.
    /// Session-striped lanes carry an `s<id>` prefix so merged
    /// multi-tenant traces stay distinguishable track by track.
    pub fn track_name(self) -> String {
        let base = match self.track {
            0 => "control".to_string(),
            1 => "network".to_string(),
            t => {
                let t = t - 2;
                format!("gpu{} stream{}", t / 16, t % 16)
            }
        };
        match self.session() {
            0 => base,
            s => format!("s{s} {base}"),
        }
    }
}

/// A borrowed argument value attached to spans and instants.
///
/// Borrowed so the disabled path never allocates; recorders that retain
/// events (like [`ChromeTracer`]) copy what they need.
#[derive(Debug, Clone, Copy)]
pub enum ArgValue<'a> {
    /// Unsigned integer payload.
    U64(u64),
    /// Signed integer payload.
    I64(i64),
    /// Floating payload.
    F64(f64),
    /// String payload.
    Str(&'a str),
}

impl ArgValue<'_> {
    fn to_json(self) -> Value {
        match self {
            ArgValue::U64(v) => Value::U64(v),
            ArgValue::I64(v) => Value::I64(v),
            ArgValue::F64(v) => Value::F64(v),
            ArgValue::Str(v) => Value::String(v.to_string()),
        }
    }
}

/// A completed duration event (Chrome `ph: "X"`).
#[derive(Debug, Clone, Copy)]
pub struct SpanEvent<'a> {
    /// Display name (kernel name, `"plan"`, `"transfer"`, ...).
    pub name: &'a str,
    /// Category: `"plan"`, `"transfer"`, `"execute"`, `"host"`, `"fault"`.
    pub cat: &'static str,
    /// Lane the span ran on.
    pub lane: Lane,
    /// Start, nanoseconds since the run origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Structured payload.
    pub args: &'a [(&'static str, ArgValue<'a>)],
}

/// The event sink. All methods default to no-ops so recorders implement
/// only what they need; `enabled` gates payload construction at call
/// sites.
pub trait Recorder: Send {
    /// Whether this recorder wants events at all. Call sites use this to
    /// skip building dynamic names/args.
    fn enabled(&self) -> bool {
        true
    }

    /// A completed duration span.
    fn span(&mut self, span: &SpanEvent<'_>) {
        let _ = span;
    }

    /// A point-in-time event (Chrome `ph: "i"`).
    fn instant(
        &mut self,
        name: &str,
        lane: Lane,
        at_ns: u64,
        args: &[(&'static str, ArgValue<'_>)],
    ) {
        let _ = (name, lane, at_ns, args);
    }

    /// A cumulative counter sample (monotonically increasing value).
    fn counter(&mut self, name: &'static str, lane: Lane, at_ns: u64, value: f64) {
        let _ = (name, lane, at_ns, value);
    }

    /// A sampled level (may go up and down).
    fn gauge(&mut self, name: &'static str, lane: Lane, at_ns: u64, value: f64) {
        let _ = (name, lane, at_ns, value);
    }

    /// A timestamp-free structured event from a component with no clock
    /// (the [`crate::Planner`] emits these). [`ChromeTracer`] stamps them
    /// with the latest timestamp it has seen.
    fn mark(&mut self, name: &'static str, args: &[(&'static str, ArgValue<'_>)]) {
        let _ = (name, args);
    }
}

/// A cheap, cloneable handle to an optional shared [`Recorder`].
///
/// `Telemetry::off()` (the default) holds nothing: every method is a
/// single `None` check with no allocation, no lock, no virtual call —
/// the zero-overhead fast path the differential tests pin down. The
/// handle is `Clone` so the [`crate::Planner`] (itself `Clone`) and both
/// runtimes can share one recorder.
#[derive(Clone, Default)]
pub struct Telemetry {
    rec: Option<Arc<Mutex<dyn Recorder>>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.rec.is_some())
            .finish()
    }
}

impl Telemetry {
    /// The disabled handle (no recorder, zero-allocation fast path).
    pub fn off() -> Self {
        Telemetry::default()
    }

    /// Wrap an owned recorder. Use [`Shared`] instead when the caller
    /// needs the recorder back after the run.
    pub fn new(rec: impl Recorder + 'static) -> Self {
        Telemetry {
            rec: Some(Arc::new(Mutex::new(rec))),
        }
    }

    /// Attach an already-shared recorder.
    pub fn from_shared(rec: Arc<Mutex<dyn Recorder>>) -> Self {
        Telemetry { rec: Some(rec) }
    }

    /// Whether a recorder is attached *and* it wants events. Gate dynamic
    /// payload construction on this.
    pub fn enabled(&self) -> bool {
        match &self.rec {
            Some(r) => r.lock().expect("recorder poisoned").enabled(),
            None => false,
        }
    }

    /// Record a completed span.
    pub fn span(&self, span: &SpanEvent<'_>) {
        if let Some(r) = &self.rec {
            r.lock().expect("recorder poisoned").span(span);
        }
    }

    /// Record an instant event.
    pub fn instant(
        &self,
        name: &str,
        lane: Lane,
        at_ns: u64,
        args: &[(&'static str, ArgValue<'_>)],
    ) {
        if let Some(r) = &self.rec {
            r.lock()
                .expect("recorder poisoned")
                .instant(name, lane, at_ns, args);
        }
    }

    /// Record a counter sample.
    pub fn counter(&self, name: &'static str, lane: Lane, at_ns: u64, value: f64) {
        if let Some(r) = &self.rec {
            r.lock()
                .expect("recorder poisoned")
                .counter(name, lane, at_ns, value);
        }
    }

    /// Record a gauge sample.
    pub fn gauge(&self, name: &'static str, lane: Lane, at_ns: u64, value: f64) {
        if let Some(r) = &self.rec {
            r.lock()
                .expect("recorder poisoned")
                .gauge(name, lane, at_ns, value);
        }
    }

    /// Record a timestamp-free mark (see [`Recorder::mark`]).
    pub fn mark(&self, name: &'static str, args: &[(&'static str, ArgValue<'_>)]) {
        if let Some(r) = &self.rec {
            r.lock().expect("recorder poisoned").mark(name, args);
        }
    }

    /// Record a [`SchedEvent`] as a structured instant on the controller
    /// lane. Shared by both runtimes so chaos traces read identically.
    pub fn sched_event(&self, event: &SchedEvent, at_ns: u64) {
        if !self.enabled() {
            return;
        }
        let (name, args) = sched_event_payload(event);
        self.instant(name, Lane::CONTROLLER, at_ns, &args);
    }

    /// A handle that relocates every event into `session`'s stripe of
    /// the lane space before forwarding to the same recorder (see
    /// [`SESSION_LANE_STRIDE`]). Multi-tenant daemons hand each session
    /// runtime `tracer.telemetry().for_session(sid)` so one shared trace
    /// keeps per-tenant lanes apart. Session 0 is the identity.
    pub fn for_session(&self, session: u64) -> Telemetry {
        if session == 0 {
            return self.clone();
        }
        match &self.rec {
            Some(rec) => Telemetry::new(SessionLanes {
                inner: Arc::clone(rec),
                session,
                last_ns: 0,
            }),
            None => Telemetry::off(),
        }
    }
}

/// A [`Recorder`] adaptor moving every event into one session's lane
/// stripe before forwarding to a shared recorder. Timestamp-free marks
/// are stamped with the latest timestamp seen *by this session* and
/// pinned to the session's controller lane, so co-tenant marks never
/// collapse onto the shared `pid 0` lane.
struct SessionLanes {
    inner: Arc<Mutex<dyn Recorder>>,
    session: u64,
    last_ns: u64,
}

impl Recorder for SessionLanes {
    fn enabled(&self) -> bool {
        self.inner.lock().expect("recorder poisoned").enabled()
    }

    fn span(&mut self, span: &SpanEvent<'_>) {
        self.last_ns = self.last_ns.max(span.start_ns + span.dur_ns);
        let mut moved = *span;
        moved.lane = span.lane.for_session(self.session);
        self.inner.lock().expect("recorder poisoned").span(&moved);
    }

    fn instant(
        &mut self,
        name: &str,
        lane: Lane,
        at_ns: u64,
        args: &[(&'static str, ArgValue<'_>)],
    ) {
        self.last_ns = self.last_ns.max(at_ns);
        self.inner.lock().expect("recorder poisoned").instant(
            name,
            lane.for_session(self.session),
            at_ns,
            args,
        );
    }

    fn counter(&mut self, name: &'static str, lane: Lane, at_ns: u64, value: f64) {
        self.last_ns = self.last_ns.max(at_ns);
        self.inner.lock().expect("recorder poisoned").counter(
            name,
            lane.for_session(self.session),
            at_ns,
            value,
        );
    }

    fn gauge(&mut self, name: &'static str, lane: Lane, at_ns: u64, value: f64) {
        self.last_ns = self.last_ns.max(at_ns);
        self.inner.lock().expect("recorder poisoned").gauge(
            name,
            lane.for_session(self.session),
            at_ns,
            value,
        );
    }

    fn mark(&mut self, name: &'static str, args: &[(&'static str, ArgValue<'_>)]) {
        let lane = Lane::CONTROLLER.for_session(self.session);
        let at = self.last_ns;
        self.inner
            .lock()
            .expect("recorder poisoned")
            .instant(name, lane, at, args);
    }
}

/// Decompose a [`SchedEvent`] into an instant-event name plus args.
fn sched_event_payload(event: &SchedEvent) -> (&'static str, Vec<(&'static str, ArgValue<'_>)>) {
    match event {
        SchedEvent::Fault {
            at_ce,
            worker,
            kind,
            epoch,
        } => (
            "fault",
            vec![
                ("at_ce", ArgValue::U64(*at_ce as u64)),
                ("worker", ArgValue::I64(worker.map_or(-1, |w| w as i64))),
                ("kind", ArgValue::Str(kind)),
                ("epoch", ArgValue::U64(*epoch)),
            ],
        ),
        SchedEvent::Retry {
            at_ce,
            worker,
            attempt,
            backoff,
        } => (
            "retry",
            vec![
                ("at_ce", ArgValue::U64(*at_ce as u64)),
                ("worker", ArgValue::U64(*worker as u64)),
                ("attempt", ArgValue::U64(*attempt as u64)),
                ("backoff_us", ArgValue::F64(backoff.as_micros_f64())),
            ],
        ),
        SchedEvent::Quarantine {
            worker,
            at_ce,
            lost,
            epoch,
        } => (
            "quarantine",
            vec![
                ("worker", ArgValue::U64(*worker as u64)),
                ("at_ce", ArgValue::U64(*at_ce as u64)),
                ("lost_arrays", ArgValue::U64(lost.len() as u64)),
                ("epoch", ArgValue::U64(*epoch)),
            ],
        ),
        SchedEvent::Replay { dag_index, epoch } => (
            "replay",
            vec![
                ("dag_index", ArgValue::U64(*dag_index as u64)),
                ("epoch", ArgValue::U64(*epoch)),
            ],
        ),
        SchedEvent::Reassign {
            dag_index,
            from,
            to,
            epoch,
        } => (
            "reassign",
            vec![
                ("dag_index", ArgValue::U64(*dag_index as u64)),
                ("from", ArgValue::U64(*from as u64)),
                ("to", ArgValue::U64(*to as u64)),
                ("epoch", ArgValue::U64(*epoch)),
            ],
        ),
        SchedEvent::TransferDropped { at_ce, array } => (
            "transfer-dropped",
            vec![
                ("at_ce", ArgValue::U64(*at_ce as u64)),
                ("array", ArgValue::U64(array.0)),
            ],
        ),
        SchedEvent::TransferDelayed {
            at_ce,
            array,
            delay,
        } => (
            "transfer-delayed",
            vec![
                ("at_ce", ArgValue::U64(*at_ce as u64)),
                ("array", ArgValue::U64(array.0)),
                ("delay_us", ArgValue::F64(delay.as_micros_f64())),
            ],
        ),
        SchedEvent::TransferRedriven { at_ce } => (
            "transfer-redriven",
            vec![("at_ce", ArgValue::U64(*at_ce as u64))],
        ),
        SchedEvent::SpawnFailed { worker } => (
            "spawn-failed",
            vec![("worker", ArgValue::U64(*worker as u64))],
        ),
        SchedEvent::Suspected { worker, epoch } => (
            "suspected",
            vec![
                ("worker", ArgValue::U64(*worker as u64)),
                ("epoch", ArgValue::U64(*epoch)),
            ],
        ),
        SchedEvent::Reinstated { worker, epoch } => (
            "reinstated",
            vec![
                ("worker", ArgValue::U64(*worker as u64)),
                ("epoch", ArgValue::U64(*epoch)),
            ],
        ),
        SchedEvent::Rejoined { worker, epoch } => (
            "rejoined",
            vec![
                ("worker", ArgValue::U64(*worker as u64)),
                ("epoch", ArgValue::U64(*epoch)),
            ],
        ),
        SchedEvent::Joined { worker, epoch } => (
            "joined",
            vec![
                ("worker", ArgValue::U64(*worker as u64)),
                ("epoch", ArgValue::U64(*epoch)),
            ],
        ),
        SchedEvent::Departed {
            worker,
            rebalanced,
            epoch,
        } => (
            "departed",
            vec![
                ("worker", ArgValue::U64(*worker as u64)),
                ("rebalanced", ArgValue::U64(*rebalanced as u64)),
                ("epoch", ArgValue::U64(*epoch)),
            ],
        ),
    }
}

/// Keep a typed handle to a recorder that is also attached to a runtime.
///
/// [`Telemetry`] type-erases its recorder, so a caller that wants the
/// concrete exporter back after the run (e.g. to write the trace file)
/// wraps it in `Shared` first:
///
/// ```
/// use grout_core::telemetry::{ChromeTracer, Shared};
/// let tracer = Shared::new(ChromeTracer::new());
/// let telemetry = tracer.telemetry();
/// // ... attach `telemetry` to a runtime, run ...
/// let json = tracer.lock().to_string_pretty();
/// # let _ = json;
/// ```
pub struct Shared<R: Recorder + 'static>(Arc<Mutex<R>>);

impl<R: Recorder + 'static> Shared<R> {
    /// Share a recorder.
    pub fn new(rec: R) -> Self {
        Shared(Arc::new(Mutex::new(rec)))
    }

    /// A [`Telemetry`] handle feeding this recorder.
    pub fn telemetry(&self) -> Telemetry {
        Telemetry::from_shared(self.0.clone() as Arc<Mutex<dyn Recorder>>)
    }

    /// Lock the recorder for direct access (export, inspection).
    pub fn lock(&self) -> MutexGuard<'_, R> {
        self.0.lock().expect("recorder poisoned")
    }
}

impl<R: Recorder + 'static> Clone for Shared<R> {
    fn clone(&self) -> Self {
        Shared(self.0.clone())
    }
}

impl<R: Recorder + 'static> fmt::Debug for Shared<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Shared").finish()
    }
}

// ---------------------------------------------------------------------------
// Chrome trace_event exporter
// ---------------------------------------------------------------------------

/// A [`Recorder`] that accumulates Chrome `trace_event` JSON.
///
/// Output follows the `{"traceEvents": [...]}` object format: complete
/// spans are `ph: "X"`, instants `ph: "i"` (scope `"p"`), counters and
/// gauges `ph: "C"`, and process/thread name metadata (`ph: "M"`) gives
/// every node and stream a named lane. Timestamps are microseconds as
/// required by the format; nanosecond inputs are divided by 1000.0.
#[derive(Debug, Default)]
pub struct ChromeTracer {
    events: Vec<Value>,
    lanes: Vec<Lane>,
    last_ns: u64,
}

impl ChromeTracer {
    /// An empty tracer.
    pub fn new() -> Self {
        ChromeTracer::default()
    }

    /// Number of events recorded so far (excluding metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn see_lane(&mut self, lane: Lane) {
        if let Err(i) = self.lanes.binary_search(&lane) {
            self.lanes.insert(i, lane);
        }
    }

    fn base_event(name: &str, ph: &str, lane: Lane, ts_ns: u64) -> Vec<(String, Value)> {
        vec![
            ("name".to_string(), Value::String(name.to_string())),
            ("ph".to_string(), Value::String(ph.to_string())),
            ("ts".to_string(), Value::F64(ts_ns as f64 / 1000.0)),
            ("pid".to_string(), Value::U64(lane.node as u64)),
            ("tid".to_string(), Value::U64(lane.track as u64)),
        ]
    }

    fn args_object(args: &[(&'static str, ArgValue<'_>)]) -> Value {
        Value::Object(
            args.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }

    /// The full trace as a JSON value (`{"traceEvents": [...]}`).
    pub fn to_json_value(&self) -> Value {
        let mut events: Vec<Value> = Vec::with_capacity(self.events.len() + 2 * self.lanes.len());
        for lane in &self.lanes {
            // Decompose the session stripe so multi-tenant traces read
            // "s2 worker 0" instead of an anonymous huge pid.
            let base = if lane.local_node() == 0 {
                "controller".to_string()
            } else {
                format!("worker {}", lane.local_node() - 1)
            };
            let process = match lane.session() {
                0 => base,
                s => format!("s{s} {base}"),
            };
            events.push(Value::Object(vec![
                (
                    "name".to_string(),
                    Value::String("process_name".to_string()),
                ),
                ("ph".to_string(), Value::String("M".to_string())),
                ("pid".to_string(), Value::U64(lane.node as u64)),
                ("tid".to_string(), Value::U64(lane.track as u64)),
                (
                    "args".to_string(),
                    Value::Object(vec![("name".to_string(), Value::String(process))]),
                ),
            ]));
            events.push(Value::Object(vec![
                ("name".to_string(), Value::String("thread_name".to_string())),
                ("ph".to_string(), Value::String("M".to_string())),
                ("pid".to_string(), Value::U64(lane.node as u64)),
                ("tid".to_string(), Value::U64(lane.track as u64)),
                (
                    "args".to_string(),
                    Value::Object(vec![("name".to_string(), Value::String(lane.track_name()))]),
                ),
            ]));
        }
        events.extend(self.events.iter().cloned());
        Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(events)),
            (
                "displayTimeUnit".to_string(),
                Value::String("ms".to_string()),
            ),
        ])
    }

    /// Render the trace as compact JSON.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string(&self.to_json_value()).expect("render trace")
    }

    /// Render the trace as pretty-printed JSON.
    pub fn to_string_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_json_value()).expect("render trace")
    }

    /// Write the trace to a file (load it in `chrome://tracing` or
    /// Perfetto).
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

impl Recorder for ChromeTracer {
    fn span(&mut self, span: &SpanEvent<'_>) {
        self.see_lane(span.lane);
        self.last_ns = self.last_ns.max(span.start_ns + span.dur_ns);
        let mut ev = Self::base_event(span.name, "X", span.lane, span.start_ns);
        ev.push(("dur".to_string(), Value::F64(span.dur_ns as f64 / 1000.0)));
        ev.push(("cat".to_string(), Value::String(span.cat.to_string())));
        if !span.args.is_empty() {
            ev.push(("args".to_string(), Self::args_object(span.args)));
        }
        self.events.push(Value::Object(ev));
    }

    fn instant(
        &mut self,
        name: &str,
        lane: Lane,
        at_ns: u64,
        args: &[(&'static str, ArgValue<'_>)],
    ) {
        self.see_lane(lane);
        self.last_ns = self.last_ns.max(at_ns);
        let mut ev = Self::base_event(name, "i", lane, at_ns);
        ev.push(("s".to_string(), Value::String("p".to_string())));
        if !args.is_empty() {
            ev.push(("args".to_string(), Self::args_object(args)));
        }
        self.events.push(Value::Object(ev));
    }

    fn counter(&mut self, name: &'static str, lane: Lane, at_ns: u64, value: f64) {
        self.see_lane(lane);
        self.last_ns = self.last_ns.max(at_ns);
        let mut ev = Self::base_event(name, "C", lane, at_ns);
        ev.push((
            "args".to_string(),
            Value::Object(vec![("value".to_string(), Value::F64(value))]),
        ));
        self.events.push(Value::Object(ev));
    }

    fn gauge(&mut self, name: &'static str, lane: Lane, at_ns: u64, value: f64) {
        self.counter(name, lane, at_ns, value);
    }

    fn mark(&mut self, name: &'static str, args: &[(&'static str, ArgValue<'_>)]) {
        let at = self.last_ns;
        self.instant(name, Lane::CONTROLLER, at, args);
    }
}

// ---------------------------------------------------------------------------
// Cross-node clock alignment
// ---------------------------------------------------------------------------

/// Nanoseconds on a process-wide monotonic clock (anchored at first use).
///
/// Worker-side spans are stamped with this clock and shifted into the
/// controller's time domain by [`ClockSync`] at merge time. The
/// in-process transport shares the process clock, so its offset is
/// exactly zero and the same merge path applies unchanged.
pub fn monotonic_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    EPOCH
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_nanos() as u64
}

/// NTP-style running estimate of a remote clock's offset (and drift)
/// relative to the local monotonic clock.
///
/// Each heartbeat exchange yields one sample: the worker stamps `t1`
/// (its clock) on the ping, the controller stamps `t2` (its clock) on
/// receipt, and the worker stamps `t4` (its clock) on the pong. The
/// midpoint estimate `offset = t2 − (t1 + t4)/2` maps worker time into
/// controller time with error bounded by half the round-trip — exact
/// under symmetric path latency. Samples taken while the link is
/// congested (rtt ≫ the best observed rtt) carry a much looser bound
/// and are rejected once enough clean samples exist; a least-squares
/// fit over (local time, offset) tracks slow drift between the two
/// oscillators.
#[derive(Debug, Clone, Default)]
pub struct ClockSync {
    n: u64,
    min_rtt_ns: u64,
    /// Local-time anchor of the first sample (keeps the regression sums
    /// small).
    t0_ns: u64,
    sum_t: f64,
    sum_o: f64,
    sum_tt: f64,
    sum_to: f64,
}

impl ClockSync {
    /// An estimator with no samples (offset 0 until the first one).
    pub fn new() -> Self {
        ClockSync::default()
    }

    /// Fold in one exchange: `at_ns` is the local receipt time of the
    /// sample, `offset_ns` the midpoint estimate, `rtt_ns` the measured
    /// round-trip.
    pub fn observe(&mut self, at_ns: u64, offset_ns: i64, rtt_ns: u64) {
        if self.n == 0 {
            self.t0_ns = at_ns;
            self.min_rtt_ns = rtt_ns;
        }
        self.min_rtt_ns = self.min_rtt_ns.min(rtt_ns);
        // A queue-delayed exchange says little about the offset (the
        // error bound is rtt/2): ignore it once enough clean samples
        // exist to keep estimating without it.
        if self.n >= 8 && rtt_ns > self.min_rtt_ns.saturating_mul(3) {
            return;
        }
        let t = at_ns.saturating_sub(self.t0_ns) as f64;
        let o = offset_ns as f64;
        self.n += 1;
        self.sum_t += t;
        self.sum_o += o;
        self.sum_tt += t * t;
        self.sum_to += t * o;
    }

    /// Accepted samples so far.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Estimated drift in offset-nanoseconds per local nanosecond,
    /// clamped to ±1e-3: real oscillators stay within ~100 ppm, so
    /// anything larger is a fit artifact from a short baseline.
    pub fn drift(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let var = self.sum_tt - self.sum_t * self.sum_t / n;
        if var <= 1e3 {
            return 0.0; // all samples within ~32 ns: no usable baseline
        }
        let slope = (self.sum_to - self.sum_t * self.sum_o / n) / var;
        slope.clamp(-1e-3, 1e-3)
    }

    /// The estimated offset at local time `at_ns` (mean + drift
    /// extrapolation). Add this to a remote timestamp to land it in the
    /// local clock domain. 0 with no samples.
    pub fn offset_at(&self, at_ns: u64) -> i64 {
        if self.n == 0 {
            return 0;
        }
        let n = self.n as f64;
        let mean_t = self.sum_t / n;
        let mean_o = self.sum_o / n;
        let t = at_ns.saturating_sub(self.t0_ns) as f64;
        (mean_o + self.drift() * (t - mean_t)).round() as i64
    }

    /// Worst-case error of one clean sample: half the best observed
    /// round-trip (path asymmetry can hide up to that much one-way
    /// latency).
    pub fn error_bound_ns(&self) -> u64 {
        self.min_rtt_ns / 2
    }
}

/// Enforces monotone, non-overlapping span starts per [`Lane`] when
/// merging remote spans whose clock mapping is only accurate to about
/// half a round-trip: a span whose shifted start would land before the
/// end of the previous span on the same lane is clamped forward, so
/// merged Perfetto timelines never show negative gaps or overlaps
/// within a lane.
#[derive(Debug, Clone, Default)]
pub struct LaneAligner {
    watermarks: std::collections::HashMap<Lane, u64>,
}

impl LaneAligner {
    /// An aligner with no history.
    pub fn new() -> Self {
        LaneAligner::default()
    }

    /// Clamp `start_ns` so it never precedes the lane's watermark, then
    /// advance the watermark past the span. Returns the aligned start.
    pub fn align(&mut self, lane: Lane, start_ns: u64, dur_ns: u64) -> u64 {
        let w = self.watermarks.entry(lane).or_insert(0);
        let start = start_ns.max(*w);
        *w = start.saturating_add(dur_ns);
        start
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Count/sum/min/max aggregate over nanosecond latencies, plus a
/// power-of-two histogram for approximate percentiles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStat {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// Log2 histogram: `buckets[i]` counts samples in `[2^i, 2^(i+1))`
    /// ns (bucket 0 also takes 0 ns; bucket 31 takes everything ≥ 2^31
    /// ns ≈ 2.1 s).
    pub buckets: [u64; 32],
}

impl LatencyStat {
    /// Fold one sample in.
    pub fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns += ns;
        let bucket = (63 - u64::leading_zeros(ns.max(1)) as usize).min(31);
        self.buckets[bucket] += 1;
    }

    /// Arithmetic mean in nanoseconds (0.0 when empty — never NaN).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Approximate percentile from the log2 histogram: the midpoint of
    /// the bucket holding the `q`-quantile sample, clamped into the
    /// observed `[min, max]` range. Exact at the extremes and 0 when no
    /// samples were recorded — never NaN.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min_ns;
        }
        if q >= 1.0 {
            return self.max_ns;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let mid = if i == 0 {
                    1
                } else {
                    (1u64 << i) + (1u64 << (i - 1))
                };
                return mid.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    fn to_json(self) -> Value {
        Value::Object(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("sum_ns".to_string(), Value::U64(self.sum_ns)),
            ("min_ns".to_string(), Value::U64(self.min_ns)),
            ("max_ns".to_string(), Value::U64(self.max_ns)),
            ("mean_ns".to_string(), Value::F64(self.mean_ns())),
            ("p50_ns".to_string(), Value::U64(self.percentile_ns(0.50))),
            ("p90_ns".to_string(), Value::U64(self.percentile_ns(0.90))),
            ("p99_ns".to_string(), Value::U64(self.percentile_ns(0.99))),
        ])
    }
}

/// Per-peer wire observability snapshot: frames/bytes both directions,
/// the heartbeat RTT histogram, the current clock-offset estimate and
/// telemetry-batch accounting. Produced by `Transport::wire_stats`
/// implementations and surfaced through [`Metrics::to_json_value`] /
/// [`Metrics::to_csv`] and `grout-run --stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeerWireStats {
    /// Frames written to this peer.
    pub frames_sent: u64,
    /// Bytes written to this peer (payload + length prefix).
    pub bytes_sent: u64,
    /// Frames read from this peer.
    pub frames_recv: u64,
    /// Bytes read from this peer (payload + length prefix).
    pub bytes_recv: u64,
    /// Heartbeat round-trip-time histogram (count 0 on transports with
    /// no timed heartbeat exchange — the in-process mesh).
    pub hb_rtt: LatencyStat,
    /// Estimated clock offset: add to peer timestamps to land them in
    /// the controller's clock domain (0 in-process).
    pub clock_offset_ns: i64,
    /// Telemetry batches received from this peer.
    pub telemetry_batches: u64,
    /// Spans across those batches.
    pub telemetry_spans: u64,
    /// Peer-reported span backlog at its most recent flush (gauge).
    pub telemetry_backlog: u64,
    /// Session resumes: times a severed or partitioned connection was
    /// re-established and its unacked frames replayed without the planner
    /// noticing (0 on transports without the resume layer).
    pub resumes: u64,
}

impl PeerWireStats {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("frames_sent".to_string(), Value::U64(self.frames_sent)),
            ("bytes_sent".to_string(), Value::U64(self.bytes_sent)),
            ("frames_recv".to_string(), Value::U64(self.frames_recv)),
            ("bytes_recv".to_string(), Value::U64(self.bytes_recv)),
            ("hb_rtt".to_string(), self.hb_rtt.to_json()),
            (
                "clock_offset_ns".to_string(),
                Value::I64(self.clock_offset_ns),
            ),
            (
                "telemetry_batches".to_string(),
                Value::U64(self.telemetry_batches),
            ),
            (
                "telemetry_spans".to_string(),
                Value::U64(self.telemetry_spans),
            ),
            (
                "telemetry_backlog".to_string(),
                Value::U64(self.telemetry_backlog),
            ),
            ("resumes".to_string(), Value::U64(self.resumes)),
        ])
    }
}

/// The always-on metrics registry. Both runtimes own one directly and
/// update it with plain field access — no locks, no indirection — so its
/// cost is a handful of integer adds per CE.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Planner latency per CE (virtual for the sim, wall for local).
    pub plan: LatencyStat,
    /// Wait between dispatch and all inputs/parents ready (sim only).
    pub queue: LatencyStat,
    /// Per-movement transfer latency.
    pub transfer: LatencyStat,
    /// Kernel/host execution latency per CE.
    pub execute: LatencyStat,
    /// Payload bytes moved via direct controller sends.
    pub controller_send_bytes: u64,
    /// Payload bytes moved peer-to-peer between workers.
    pub p2p_bytes: u64,
    /// Payload bytes moved via two-hop controller staging.
    pub staged_bytes: u64,
    /// Injected or detected faults.
    pub faults: u64,
    /// Transient launch retries.
    pub retries: u64,
    /// Workers quarantined.
    pub quarantines: u64,
    /// Ancestor CEs replayed during recovery.
    pub replays: u64,
    /// In-flight CEs moved off quarantined nodes.
    pub reassigns: u64,
    /// Transfers lost and re-driven.
    pub transfers_dropped: u64,
    /// Transfers that arrived late.
    pub transfers_delayed: u64,
    /// Re-driven input supplies after timeout or recovery.
    pub transfers_redriven: u64,
    /// Worker threads that failed to spawn.
    pub spawn_failures: u64,
    /// Workers that entered the suspect grace window (omission faults).
    pub suspects: u64,
    /// Suspected workers that resumed within their grace window.
    pub reinstates: u64,
    /// Quarantined workers re-admitted under a new membership epoch.
    pub rejoins: u64,
    /// Workers attached to the live controller (elastic scale-out).
    pub joins: u64,
    /// Workers departed cleanly, directory entries rebalanced (elastic
    /// scale-in) — disjoint from `quarantines`.
    pub leaves: u64,
    /// Kernels completed per worker.
    pub kernels_by_worker: Vec<u64>,
    /// Busy nanoseconds per worker (kernel occupancy).
    pub busy_ns_by_worker: Vec<u64>,
    /// Where the link-bandwidth matrix came from: `""` (none recorded),
    /// `"uniform"` (modeling fallback), `"modeled"` (net-sim probe) or
    /// `"measured"` (transport probe round).
    pub bw_source: String,
    /// Transport carrying the transfer bytes above (`"channel"` for the
    /// in-process mesh, `"tcp"` for `grout-net`, `"sim"` for the
    /// simulator) — the per-run half of the local-channel vs TCP split.
    pub transport: String,
    /// The link-bandwidth matrix itself, `bw_bps[src][dst]` in integer
    /// bytes/sec (truncated from f64 so `Metrics` stays `Eq`; endpoint 0
    /// is the controller, endpoint `i + 1` worker `i`). Lets one artifact
    /// carry measured (TCP) and modeled (net-sim) matrices side by side
    /// for comparison.
    pub bw_bps: Vec<Vec<u64>>,
    /// Per-peer wire counters, heartbeat RTT histograms and clock
    /// offsets, indexed by worker. Empty until the runtime snapshots its
    /// transport (`LocalRuntime::refresh_wire_metrics`, called at every
    /// `synchronize`); always empty for the simulator.
    pub wire: Vec<PeerWireStats>,
    /// The tenant session this runtime's view belongs to when it runs on
    /// a shared fleet behind a `SessionTransport` (`None` ⇒ standalone
    /// deployment; renders as `0` in exports so the column is never
    /// blank).
    pub session: Option<u64>,
}

impl Metrics {
    /// A registry sized for `workers` workers.
    pub fn with_workers(workers: usize) -> Self {
        Metrics {
            kernels_by_worker: vec![0; workers],
            busy_ns_by_worker: vec![0; workers],
            ..Metrics::default()
        }
    }

    /// Extends the per-worker vectors for an elastic join. Indices are
    /// stable (the worker set never shrinks), so existing counters keep
    /// their meaning.
    pub fn grow_workers(&mut self, workers: usize) {
        if workers > self.kernels_by_worker.len() {
            self.kernels_by_worker.resize(workers, 0);
            self.busy_ns_by_worker.resize(workers, 0);
        }
    }

    /// Account payload bytes moved under `kind`.
    pub fn record_movement(&mut self, kind: MovementKind, payload_bytes: u64) {
        match kind {
            MovementKind::ControllerSend => self.controller_send_bytes += payload_bytes,
            MovementKind::P2p => self.p2p_bytes += payload_bytes,
            MovementKind::Staged => self.staged_bytes += payload_bytes,
        }
    }

    /// Account one kernel completion on `worker` lasting `busy_ns`.
    pub fn record_kernel(&mut self, worker: usize, busy_ns: u64) {
        if worker < self.kernels_by_worker.len() {
            self.kernels_by_worker[worker] += 1;
            self.busy_ns_by_worker[worker] += busy_ns;
        }
    }

    /// Bump the counter matching a [`SchedEvent`].
    pub fn record_event(&mut self, event: &SchedEvent) {
        match event {
            SchedEvent::Fault { .. } => self.faults += 1,
            SchedEvent::Retry { .. } => self.retries += 1,
            SchedEvent::Quarantine { .. } => self.quarantines += 1,
            SchedEvent::Replay { .. } => self.replays += 1,
            SchedEvent::Reassign { .. } => self.reassigns += 1,
            SchedEvent::TransferDropped { .. } => self.transfers_dropped += 1,
            SchedEvent::TransferDelayed { .. } => self.transfers_delayed += 1,
            SchedEvent::TransferRedriven { .. } => self.transfers_redriven += 1,
            SchedEvent::SpawnFailed { .. } => self.spawn_failures += 1,
            SchedEvent::Suspected { .. } => self.suspects += 1,
            SchedEvent::Reinstated { .. } => self.reinstates += 1,
            SchedEvent::Rejoined { .. } => self.rejoins += 1,
            SchedEvent::Joined { .. } => self.joins += 1,
            SchedEvent::Departed { .. } => self.leaves += 1,
        }
    }

    /// Record the link-bandwidth matrix the planner prices transfers
    /// with, plus its provenance (`source`: `"uniform"`, `"modeled"` or
    /// `"measured"`) and the transport label carrying the run's bytes.
    pub fn set_bandwidth(&mut self, source: &str, transport: &str, links: &LinkMatrix) {
        self.bw_source = source.to_string();
        self.transport = transport.to_string();
        let n = links.endpoints();
        self.bw_bps = (0..n)
            .map(|src| {
                (0..n)
                    .map(|dst| links.raw(src, dst).max(0.0) as u64)
                    .collect()
            })
            .collect();
    }

    /// Total payload bytes moved across all movement kinds.
    pub fn payload_bytes(&self) -> u64 {
        self.controller_send_bytes + self.p2p_bytes + self.staged_bytes
    }

    /// Total kernels across workers.
    pub fn total_kernels(&self) -> u64 {
        self.kernels_by_worker.iter().sum()
    }

    /// The registry as a flat JSON object (one key per metric; the
    /// latency aggregates nest count/sum/min/max/mean).
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("plan".to_string(), self.plan.to_json()),
            ("queue".to_string(), self.queue.to_json()),
            ("transfer".to_string(), self.transfer.to_json()),
            ("execute".to_string(), self.execute.to_json()),
            (
                "controller_send_bytes".to_string(),
                Value::U64(self.controller_send_bytes),
            ),
            ("p2p_bytes".to_string(), Value::U64(self.p2p_bytes)),
            ("staged_bytes".to_string(), Value::U64(self.staged_bytes)),
            (
                "payload_bytes".to_string(),
                Value::U64(self.payload_bytes()),
            ),
            ("faults".to_string(), Value::U64(self.faults)),
            ("retries".to_string(), Value::U64(self.retries)),
            ("quarantines".to_string(), Value::U64(self.quarantines)),
            ("replays".to_string(), Value::U64(self.replays)),
            ("reassigns".to_string(), Value::U64(self.reassigns)),
            (
                "transfers_dropped".to_string(),
                Value::U64(self.transfers_dropped),
            ),
            (
                "transfers_delayed".to_string(),
                Value::U64(self.transfers_delayed),
            ),
            (
                "transfers_redriven".to_string(),
                Value::U64(self.transfers_redriven),
            ),
            (
                "spawn_failures".to_string(),
                Value::U64(self.spawn_failures),
            ),
            ("suspects".to_string(), Value::U64(self.suspects)),
            ("reinstates".to_string(), Value::U64(self.reinstates)),
            ("rejoins".to_string(), Value::U64(self.rejoins)),
            (
                "kernels_by_worker".to_string(),
                Value::Array(
                    self.kernels_by_worker
                        .iter()
                        .map(|&k| Value::U64(k))
                        .collect(),
                ),
            ),
            (
                "busy_ns_by_worker".to_string(),
                Value::Array(
                    self.busy_ns_by_worker
                        .iter()
                        .map(|&k| Value::U64(k))
                        .collect(),
                ),
            ),
            (
                "bw_source".to_string(),
                Value::String(self.bw_source.clone()),
            ),
            (
                "transport".to_string(),
                Value::String(self.transport.clone()),
            ),
            (
                "bw_bps".to_string(),
                Value::Array(
                    self.bw_bps
                        .iter()
                        .map(|row| Value::Array(row.iter().map(|&b| Value::U64(b)).collect()))
                        .collect(),
                ),
            ),
            (
                "wire".to_string(),
                Value::Array(self.wire.iter().map(PeerWireStats::to_json).collect()),
            ),
            ("session".to_string(), Value::U64(self.session.unwrap_or(0))),
        ])
    }

    /// The registry rendered as pretty-printed JSON (what `--metrics-out`
    /// writes for `.json` paths).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json_value()).expect("render metrics")
    }

    /// The registry as `key,value` CSV lines (latency aggregates flatten
    /// to `name.count`, `name.mean_ns`, ...).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        let mut kv = |k: &str, v: String| {
            out.push_str(k);
            out.push(',');
            out.push_str(&v);
            out.push('\n');
        };
        // Flattening a LatencyStat always starts with its `count` column,
        // and every derived column (mean, percentiles) is 0 when count is
        // 0 — a consumer never sees NaN in the CSV.
        let stat_cols = |stat: LatencyStat| -> Vec<(&'static str, String)> {
            vec![
                ("count", stat.count.to_string()),
                ("sum_ns", stat.sum_ns.to_string()),
                ("min_ns", stat.min_ns.to_string()),
                ("max_ns", stat.max_ns.to_string()),
                ("mean_ns", format!("{}", stat.mean_ns())),
                ("p50_ns", stat.percentile_ns(0.50).to_string()),
                ("p90_ns", stat.percentile_ns(0.90).to_string()),
                ("p99_ns", stat.percentile_ns(0.99).to_string()),
            ]
        };
        for (name, stat) in [
            ("plan", self.plan),
            ("queue", self.queue),
            ("transfer", self.transfer),
            ("execute", self.execute),
        ] {
            for (col, v) in stat_cols(stat) {
                kv(&format!("{name}.{col}"), v);
            }
        }
        kv(
            "controller_send_bytes",
            self.controller_send_bytes.to_string(),
        );
        kv("p2p_bytes", self.p2p_bytes.to_string());
        kv("staged_bytes", self.staged_bytes.to_string());
        kv("payload_bytes", self.payload_bytes().to_string());
        kv("faults", self.faults.to_string());
        kv("retries", self.retries.to_string());
        kv("quarantines", self.quarantines.to_string());
        kv("replays", self.replays.to_string());
        kv("reassigns", self.reassigns.to_string());
        kv("transfers_dropped", self.transfers_dropped.to_string());
        kv("transfers_delayed", self.transfers_delayed.to_string());
        kv("transfers_redriven", self.transfers_redriven.to_string());
        kv("spawn_failures", self.spawn_failures.to_string());
        kv("suspects", self.suspects.to_string());
        kv("reinstates", self.reinstates.to_string());
        kv("rejoins", self.rejoins.to_string());
        for (w, k) in self.kernels_by_worker.iter().enumerate() {
            kv(&format!("kernels_by_worker.{w}"), k.to_string());
        }
        for (w, b) in self.busy_ns_by_worker.iter().enumerate() {
            kv(&format!("busy_ns_by_worker.{w}"), b.to_string());
        }
        kv("bw_source", self.bw_source.clone());
        kv("transport", self.transport.clone());
        for (src, row) in self.bw_bps.iter().enumerate() {
            for (dst, b) in row.iter().enumerate() {
                kv(&format!("bw_bps.{src}.{dst}"), b.to_string());
            }
        }
        // Per-peer wire rows carry the owning session id (0 for a
        // standalone deployment), so multi-tenant CSV exports from
        // different sessions stay distinguishable after concatenation.
        let session = self.session.unwrap_or(0);
        for (w, s) in self.wire.iter().enumerate() {
            kv(&format!("wire.{w}.session"), session.to_string());
            kv(&format!("wire.{w}.frames_sent"), s.frames_sent.to_string());
            kv(&format!("wire.{w}.bytes_sent"), s.bytes_sent.to_string());
            kv(&format!("wire.{w}.frames_recv"), s.frames_recv.to_string());
            kv(&format!("wire.{w}.bytes_recv"), s.bytes_recv.to_string());
            for (col, v) in stat_cols(s.hb_rtt) {
                kv(&format!("wire.{w}.hb_rtt.{col}"), v);
            }
            kv(
                &format!("wire.{w}.clock_offset_ns"),
                s.clock_offset_ns.to_string(),
            );
            kv(
                &format!("wire.{w}.telemetry_batches"),
                s.telemetry_batches.to_string(),
            );
            kv(
                &format!("wire.{w}.telemetry_spans"),
                s.telemetry_spans.to_string(),
            );
            kv(
                &format!("wire.{w}.telemetry_backlog"),
                s.telemetry_backlog.to_string(),
            );
            kv(&format!("wire.{w}.resumes"), s.resumes.to_string());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Labeled snapshots and the Prometheus text exposition
// ---------------------------------------------------------------------------

/// Whether a metric family only ever goes up ([`MetricKind::Counter`]) or
/// samples a level ([`MetricKind::Gauge`]) — the `# TYPE` line of the
/// exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing (`_total` families).
    Counter,
    /// A sampled level.
    Gauge,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One metric family: a name, a kind, a help line and its labeled
/// samples. Label sets are ordered `(key, value)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// The exposition name (`grout_…`).
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// The `# HELP` line.
    pub help: String,
    /// `(labels, value)` samples. Values are always finite (NaN and
    /// infinities are coerced to 0 at insertion).
    pub samples: Vec<(Vec<(String, String)>, f64)>,
}

/// A point-in-time, label-aware view of one or more [`Metrics`]
/// registries, rendered as the Prometheus text exposition (version
/// 0.0.4) by [`MetricsSnapshot::to_prometheus`]. Snapshots from several
/// sessions [`merge`](MetricsSnapshot::merge) into one exposition; the
/// per-session/per-worker/per-policy dimensions ride as labels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    families: Vec<MetricFamily>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Appends one sample, creating the family on first use. Non-finite
    /// values are coerced to 0 — the exposition never carries NaN.
    pub fn push(
        &mut self,
        name: &str,
        kind: MetricKind,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let value = if value.is_finite() { value } else { 0.0 };
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        match self.families.iter_mut().find(|f| f.name == name) {
            Some(f) => f.samples.push((labels, value)),
            None => self.families.push(MetricFamily {
                name: name.to_string(),
                kind,
                help: help.to_string(),
                samples: vec![(labels, value)],
            }),
        }
    }

    /// Folds another snapshot in, family by family (samples append in
    /// order; the first snapshot's kind/help win on a name collision).
    pub fn merge(&mut self, other: MetricsSnapshot) {
        for fam in other.families {
            match self.families.iter_mut().find(|f| f.name == fam.name) {
                Some(f) => f.samples.extend(fam.samples),
                None => self.families.push(fam),
            }
        }
    }

    /// The families recorded so far.
    pub fn families(&self) -> &[MetricFamily] {
        &self.families
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Renders the Prometheus text exposition: one `# HELP`/`# TYPE`
    /// pair per family, then `name{labels} value` lines. Label values
    /// are escaped per the format (`\\`, `\"`, `\n`); values are finite
    /// by construction.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for fam in &self.families {
            let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
            for (labels, value) in &fam.samples {
                out.push_str(&fam.name);
                if !labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(k);
                        out.push_str("=\"");
                        for c in v.chars() {
                            match c {
                                '\\' => out.push_str("\\\\"),
                                '"' => out.push_str("\\\""),
                                '\n' => out.push_str("\\n"),
                                c => out.push(c),
                            }
                        }
                        out.push('"');
                    }
                    out.push('}');
                }
                // Integral values print without a fractional part; the
                // format accepts either but integers read better for
                // counters.
                if value.fract() == 0.0 && value.abs() < 1e15 {
                    let _ = writeln!(out, " {}", *value as i64);
                } else {
                    let _ = writeln!(out, " {value}");
                }
            }
        }
        out
    }
}

impl Metrics {
    /// A labeled snapshot of this registry. `base` labels are attached
    /// to every sample; the session tag (when the registry belongs to a
    /// tenant on a shared fleet) rides as a `session` label, per-worker
    /// vectors as a `worker` label and the movement-kind byte split as a
    /// `policy` label.
    pub fn snapshot(&self, base: &[(&str, &str)]) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let session = self.session.map(|s| s.to_string());
        let mut labels: Vec<(&str, &str)> = base.to_vec();
        if let Some(s) = &session {
            labels.push(("session", s));
        }
        fn with<'a>(
            extra: &[(&'a str, &'a str)],
            labels: &[(&'a str, &'a str)],
        ) -> Vec<(&'a str, &'a str)> {
            labels.iter().chain(extra.iter()).copied().collect()
        }

        for (phase, stat) in [
            ("plan", &self.plan),
            ("queue", &self.queue),
            ("transfer", &self.transfer),
            ("execute", &self.execute),
        ] {
            let l = with(&[("phase", phase)], &labels);
            snap.push(
                "grout_ce_phase_count",
                MetricKind::Counter,
                "CEs that passed this scheduling phase",
                &l,
                stat.count as f64,
            );
            snap.push(
                "grout_ce_phase_sum_ns",
                MetricKind::Counter,
                "Cumulative nanoseconds spent in this phase",
                &l,
                stat.sum_ns as f64,
            );
            for (q, name) in [(0.50, "p50"), (0.99, "p99")] {
                snap.push(
                    "grout_ce_phase_latency_ns",
                    MetricKind::Gauge,
                    "Phase latency percentile over the run so far",
                    &with(&[("phase", phase), ("stat", name)], &labels),
                    stat.percentile_ns(q) as f64,
                );
            }
        }

        for (policy, bytes) in [
            ("controller_send", self.controller_send_bytes),
            ("p2p", self.p2p_bytes),
            ("staged", self.staged_bytes),
        ] {
            snap.push(
                "grout_moved_bytes_total",
                MetricKind::Counter,
                "Payload bytes moved, split by movement policy",
                &with(&[("policy", policy)], &labels),
                bytes as f64,
            );
        }

        for (kind, count) in [
            ("fault", self.faults),
            ("retry", self.retries),
            ("quarantine", self.quarantines),
            ("replay", self.replays),
            ("reassign", self.reassigns),
            ("transfer_dropped", self.transfers_dropped),
            ("transfer_delayed", self.transfers_delayed),
            ("transfer_redriven", self.transfers_redriven),
            ("spawn_failed", self.spawn_failures),
            ("suspected", self.suspects),
            ("reinstated", self.reinstates),
            ("rejoined", self.rejoins),
            ("joined", self.joins),
            ("departed", self.leaves),
        ] {
            snap.push(
                "grout_sched_events_total",
                MetricKind::Counter,
                "Scheduling events by kind",
                &with(&[("kind", kind)], &labels),
                count as f64,
            );
        }

        for (w, (kernels, busy)) in self
            .kernels_by_worker
            .iter()
            .zip(self.busy_ns_by_worker.iter())
            .enumerate()
        {
            let w = w.to_string();
            let l = with(&[("worker", &w)], &labels);
            snap.push(
                "grout_worker_kernels_total",
                MetricKind::Counter,
                "Kernels completed per worker",
                &l,
                *kernels as f64,
            );
            snap.push(
                "grout_worker_busy_ns_total",
                MetricKind::Counter,
                "Kernel-occupied nanoseconds per worker",
                &l,
                *busy as f64,
            );
        }

        for (w, peer) in self.wire.iter().enumerate() {
            let w = w.to_string();
            for (dir, frames, bytes) in [
                ("sent", peer.frames_sent, peer.bytes_sent),
                ("recv", peer.frames_recv, peer.bytes_recv),
            ] {
                let l = with(&[("worker", &w), ("dir", dir)], &labels);
                snap.push(
                    "grout_wire_frames_total",
                    MetricKind::Counter,
                    "Wire frames per peer and direction",
                    &l,
                    frames as f64,
                );
                snap.push(
                    "grout_wire_bytes_total",
                    MetricKind::Counter,
                    "Wire bytes per peer and direction",
                    &l,
                    bytes as f64,
                );
            }
            for (stat, ns) in [
                ("p50", peer.hb_rtt.percentile_ns(0.50)),
                ("p99", peer.hb_rtt.percentile_ns(0.99)),
            ] {
                snap.push(
                    "grout_wire_hb_rtt_ns",
                    MetricKind::Gauge,
                    "Heartbeat round-trip percentile per peer",
                    &with(&[("worker", &w), ("stat", stat)], &labels),
                    ns as f64,
                );
            }
            snap.push(
                "grout_wire_resumes_total",
                MetricKind::Counter,
                "Severed connections resumed without planner impact",
                &with(&[("worker", &w)], &labels),
                peer.resumes as f64,
            );
            snap.push(
                "grout_wire_telemetry_backlog",
                MetricKind::Gauge,
                "Peer-reported span backlog at its last flush",
                &with(&[("worker", &w)], &labels),
                peer.telemetry_backlog as f64,
            );
        }
        snap
    }
}

// ---------------------------------------------------------------------------
// The fixed-capacity time-series ring
// ---------------------------------------------------------------------------

/// Per-peer wire slice of one [`HistorySample`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerSample {
    /// Cumulative frames written to the peer.
    pub frames_sent: u64,
    /// Cumulative bytes written to the peer.
    pub bytes_sent: u64,
    /// Cumulative frames read from the peer.
    pub frames_recv: u64,
    /// Cumulative bytes read from the peer.
    pub bytes_recv: u64,
    /// Median heartbeat round-trip at sample time (0 in-process).
    pub hb_rtt_p50_ns: u64,
}

impl PeerSample {
    /// Condenses full wire stats into the ring's per-peer slice.
    pub fn from_wire(stats: &PeerWireStats) -> PeerSample {
        PeerSample {
            frames_sent: stats.frames_sent,
            bytes_sent: stats.bytes_sent,
            frames_recv: stats.frames_recv,
            bytes_recv: stats.bytes_recv,
            hb_rtt_p50_ns: stats.hb_rtt.percentile_ns(0.50),
        }
    }
}

/// One scheduler-tick observation in the [`MetricsHistory`] ring.
/// Counters (`faults`, `ces_done`, peer frames/bytes) are cumulative —
/// rates come from differencing adjacent samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistorySample {
    /// [`monotonic_ns`] at sampling time.
    pub at_ns: u64,
    /// Frames queued across every session's pending frontier.
    pub queue_depth: u64,
    /// Resident bytes across every session.
    pub resident_bytes: u64,
    /// Cumulative execution faults observed by the fleet.
    pub faults: u64,
    /// Sessions attached at sample time.
    pub sessions_active: u64,
    /// Workers currently alive.
    pub workers_alive: u64,
    /// Outstanding CEs per worker (the backlog signal).
    pub occupancy: Vec<u64>,
    /// Per-peer wire counters and heartbeat RTT.
    pub peers: Vec<PeerSample>,
    /// Cumulative CEs completed per session, ascending by session id.
    pub ces_done: Vec<(u64, u64)>,
}

/// A fixed-capacity time-series ring of [`HistorySample`]s: the fleet
/// thread pushes one sample per placement-refresh tick, introspection
/// endpoints read recent windows. Old samples fall off the front, so
/// memory is bounded regardless of uptime.
#[derive(Debug, Clone, Default)]
pub struct MetricsHistory {
    cap: usize,
    samples: std::collections::VecDeque<HistorySample>,
}

impl MetricsHistory {
    /// Default ring capacity: at the fleet's ~16 ms sampling cadence,
    /// roughly the last minute.
    pub const DEFAULT_CAP: usize = 4096;

    /// A ring bounded to `cap` samples (clamped to ≥ 2 so rates are
    /// always computable).
    pub fn with_capacity(cap: usize) -> Self {
        MetricsHistory {
            cap: cap.max(2),
            samples: std::collections::VecDeque::new(),
        }
    }

    /// A ring with [`DEFAULT_CAP`](Self::DEFAULT_CAP).
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAP)
    }

    /// Appends one sample, dropping the oldest at capacity.
    pub fn push(&mut self, sample: HistorySample) {
        if self.cap == 0 {
            // Default-constructed (e.g. inside a Default struct): adopt
            // the standard capacity on first use.
            self.cap = Self::DEFAULT_CAP;
        }
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&HistorySample> {
        self.samples.back()
    }

    /// The samples whose timestamps fall within `last_ns` of the newest
    /// sample (all of them when `last_ns` spans the whole ring).
    pub fn window(&self, last_ns: u64) -> Vec<&HistorySample> {
        let Some(newest) = self.samples.back() else {
            return Vec::new();
        };
        let cutoff = newest.at_ns.saturating_sub(last_ns);
        self.samples.iter().filter(|s| s.at_ns >= cutoff).collect()
    }

    /// Faults per second over the `last_ns` window (0 with fewer than
    /// two samples — never NaN). This is the live oversubscription
    /// signal ROADMAP's fault-feedback work reads.
    pub fn fault_rate_per_s(&self, last_ns: u64) -> f64 {
        let w = self.window(last_ns);
        let (Some(first), Some(last)) = (w.first(), w.last()) else {
            return 0.0;
        };
        let dt_ns = last.at_ns.saturating_sub(first.at_ns);
        if dt_ns == 0 {
            return 0.0;
        }
        let df = last.faults.saturating_sub(first.faults);
        df as f64 * 1e9 / dt_ns as f64
    }

    /// The `last_ns` window rendered as Chrome `trace_event` counter
    /// events (`ph: "C"`): fleet-level series on the controller lane,
    /// occupancy per worker on the worker control lanes, CE completions
    /// as one multi-series counter keyed `s<session>`. Loadable in
    /// Perfetto next to a span trace of the same run.
    pub fn to_chrome_value(&self, last_ns: u64) -> Value {
        let mut events = Vec::new();
        let counter = |name: &str, pid: u64, ts_ns: u64, args: Vec<(String, Value)>| {
            Value::Object(vec![
                ("name".to_string(), Value::String(name.to_string())),
                ("ph".to_string(), Value::String("C".to_string())),
                ("ts".to_string(), Value::F64(ts_ns as f64 / 1000.0)),
                ("pid".to_string(), Value::U64(pid)),
                ("tid".to_string(), Value::U64(0)),
                ("args".to_string(), Value::Object(args)),
            ])
        };
        for s in self.window(last_ns) {
            for (name, v) in [
                ("queue_depth", s.queue_depth),
                ("resident_bytes", s.resident_bytes),
                ("faults", s.faults),
                ("sessions_active", s.sessions_active),
                ("workers_alive", s.workers_alive),
            ] {
                events.push(counter(
                    name,
                    0,
                    s.at_ns,
                    vec![("value".to_string(), Value::U64(v))],
                ));
            }
            for (w, occ) in s.occupancy.iter().enumerate() {
                events.push(counter(
                    "occupancy",
                    w as u64 + 1,
                    s.at_ns,
                    vec![("value".to_string(), Value::U64(*occ))],
                ));
            }
            if !s.ces_done.is_empty() {
                events.push(counter(
                    "ces_done",
                    0,
                    s.at_ns,
                    s.ces_done
                        .iter()
                        .map(|(sid, n)| (format!("s{sid}"), Value::U64(*n)))
                        .collect(),
                ));
            }
        }
        Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(events)),
            (
                "displayTimeUnit".to_string(),
                Value::String("ms".to_string()),
            ),
        ])
    }

    /// [`to_chrome_value`](Self::to_chrome_value) rendered compact.
    pub fn to_chrome_string(&self, last_ns: u64) -> String {
        serde_json::to_string(&self.to_chrome_value(last_ns)).expect("render history")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    #[test]
    fn latency_stat_aggregates() {
        let mut s = LatencyStat::default();
        assert_eq!(s.mean_ns(), 0.0);
        s.record(10);
        s.record(30);
        s.record(20);
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_ns, 60);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        assert_eq!(s.mean_ns(), 20.0);
    }

    #[test]
    fn latency_stat_percentiles_and_zero_sample_safety() {
        // Zero samples: every derived figure is 0, never NaN.
        let empty = LatencyStat::default();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean_ns(), 0.0);
        assert_eq!(empty.percentile_ns(0.5), 0);
        assert_eq!(empty.percentile_ns(0.99), 0);
        let mut m = Metrics::with_workers(1);
        m.wire.push(PeerWireStats::default()); // hb_rtt has count 0
        let csv = m.to_csv();
        assert!(!csv.contains("NaN"), "zero-sample CSV must not carry NaN");
        assert!(csv.contains("queue.count,0\n"));
        assert!(csv.contains("queue.p99_ns,0\n"));
        assert!(csv.contains("wire.0.hb_rtt.count,0\n"));
        assert!(csv.contains("wire.0.hb_rtt.p50_ns,0\n"));
        // The session column is never blank: standalone runs export 0.
        assert!(csv.contains("wire.0.session,0\n"));
        let json = serde_json::to_string(&m.to_json_value()).expect("render");
        assert!(!json.contains("NaN"));
        assert!(json.contains("\"wire\""));

        // Percentiles bracket the observed range and order correctly.
        let mut s = LatencyStat::default();
        for ns in [100u64, 200, 400, 800, 100_000] {
            s.record(ns);
        }
        let (p50, p99) = (s.percentile_ns(0.5), s.percentile_ns(0.99));
        assert!((s.min_ns..=s.max_ns).contains(&p50));
        assert!((s.min_ns..=s.max_ns).contains(&p99));
        assert!(p50 <= p99);
        assert!(p50 < 1_000, "median must not be dragged up by the outlier");
        assert_eq!(s.percentile_ns(0.0), s.min_ns);
        assert_eq!(s.percentile_ns(1.0), s.max_ns);
    }

    /// Synthetic two-clock harness: the worker clock reads
    /// `skew + (1 + drift) * t` when the controller clock reads `t`.
    /// Exchanges have asymmetric up/down latencies (bounded by `rtt`).
    fn feed_exchanges(
        sync: &mut ClockSync,
        skew_ns: i64,
        drift: f64,
        exchanges: &[(u64, u64, u64)], // (controller send time, up latency, down latency)
    ) -> u64 {
        let worker_clock =
            |t_ctrl: u64| -> u64 { (skew_ns + ((1.0 + drift) * t_ctrl as f64) as i64) as u64 };
        let mut max_rtt = 0;
        for &(t_send, up, down) in exchanges {
            let t1 = worker_clock(t_send); // worker stamps the ping
            let t2 = t_send + up; // controller stamps receipt
            let t4 = worker_clock(t_send + up + down); // worker stamps the pong
            let rtt = t4 - t1;
            let offset = t2 as i64 - ((t1 + t4) / 2) as i64;
            sync.observe(t2, offset, rtt);
            max_rtt = max_rtt.max(rtt);
        }
        max_rtt
    }

    #[test]
    fn clock_sync_recovers_a_skewed_clock_within_the_rtt_bound() {
        // Worker clock is 3.2 ms ahead; exchanges take 40–90 µs per leg.
        let skew = 3_200_000i64;
        let mut sync = ClockSync::new();
        let exchanges: Vec<(u64, u64, u64)> = (0..20)
            .map(|i| {
                let t = 1_000_000 + i * 100_000_000u64; // every 100 ms
                let up = 40_000 + (i * 7919) % 50_000; // deterministic jitter
                let down = 40_000 + (i * 104_729) % 50_000;
                (t, up, down)
            })
            .collect();
        let max_rtt = feed_exchanges(&mut sync, skew, 0.0, &exchanges);
        assert!(sync.samples() >= 8);
        let est = sync.offset_at(2_000_000_000);
        // True offset (controller − worker) is −skew; one exchange's
        // error is ≤ rtt/2, and averaging only helps.
        let err = (est - (-skew)).unsigned_abs();
        assert!(
            err <= max_rtt / 2,
            "offset error {err} ns exceeds rtt/2 bound {}",
            max_rtt / 2
        );
    }

    #[test]
    fn clock_sync_tracks_drift_and_rejects_congested_samples() {
        // 100 ppm drift on top of a −1 ms skew.
        let skew = -1_000_000i64;
        let drift = 1e-4;
        let mut sync = ClockSync::new();
        let mut exchanges: Vec<(u64, u64, u64)> = (0..30)
            .map(|i| (1_000_000 + i * 100_000_000u64, 20_000, 20_000))
            .collect();
        // A congested exchange mid-run: 30 ms legs, wildly asymmetric.
        exchanges.push((1_550_000_000, 60_000_000, 1_000));
        exchanges.sort();
        feed_exchanges(&mut sync, skew, drift, &exchanges);
        // The drift estimate has the right sign and magnitude: the worker
        // clock runs fast, so controller − worker shrinks over time.
        let d = sync.drift();
        assert!(d < 0.0, "worker running fast must give negative drift");
        assert!(d.abs() < 1e-3, "drift clamp");
        // Extrapolate to a time past the sampled window: the estimate
        // stays within the clean-sample bound even though a congested
        // sample (error up to 30 ms) was offered.
        let at = 3_500_000_000u64;
        let truth = -((skew as f64) + drift * at as f64) as i64;
        let err = (sync.offset_at(at) - truth).unsigned_abs();
        assert!(
            err <= 200_000,
            "drift-corrected offset error {err} ns too large (congested sample not rejected?)"
        );
    }

    #[test]
    fn lane_aligner_makes_merged_spans_monotone_per_lane() {
        // Worker spans stamped on a skewed clock, merged with an offset
        // estimate that is slightly wrong (as a real rtt/2 error is):
        // consecutive spans could land before the previous span's end.
        let lane = Lane::stream(1, 0, 0);
        let spans = [(1_000u64, 500u64), (1_400, 300), (2_100, 100)];
        let offset_err = 250i64; // the merge maps everything 250 ns late
        let mut aligner = LaneAligner::new();
        let mut prev_end = 0u64;
        for (start, dur) in spans {
            let shifted = (start as i64 + offset_err) as u64;
            let aligned = aligner.align(lane, shifted, dur);
            assert!(
                aligned >= prev_end,
                "span start {aligned} overlaps previous end {prev_end}"
            );
            prev_end = aligned + dur;
        }
        // Other lanes are independent.
        assert_eq!(aligner.align(Lane::network(2), 10, 5), 10);
    }

    #[test]
    fn metrics_event_counters_cover_the_vocabulary() {
        let mut m = Metrics::with_workers(2);
        m.record_event(&SchedEvent::Fault {
            at_ce: 0,
            worker: Some(1),
            kind: "kill-worker",
            epoch: 1,
        });
        m.record_event(&SchedEvent::Retry {
            at_ce: 1,
            worker: 0,
            attempt: 1,
            backoff: SimDuration::from_millis(1),
        });
        m.record_event(&SchedEvent::Quarantine {
            worker: 1,
            at_ce: 0,
            lost: vec![],
            epoch: 1,
        });
        m.record_event(&SchedEvent::Replay {
            dag_index: 0,
            epoch: 1,
        });
        m.record_event(&SchedEvent::Reassign {
            dag_index: 2,
            from: 1,
            to: 0,
            epoch: 1,
        });
        m.record_event(&SchedEvent::TransferDropped {
            at_ce: 3,
            array: crate::ArrayId(0),
        });
        m.record_event(&SchedEvent::TransferDelayed {
            at_ce: 3,
            array: crate::ArrayId(0),
            delay: SimDuration::from_millis(2),
        });
        m.record_event(&SchedEvent::TransferRedriven { at_ce: 3 });
        m.record_event(&SchedEvent::SpawnFailed { worker: 0 });
        assert_eq!(
            (m.faults, m.retries, m.quarantines, m.replays, m.reassigns),
            (1, 1, 1, 1, 1)
        );
        assert_eq!(
            (
                m.transfers_dropped,
                m.transfers_delayed,
                m.transfers_redriven,
                m.spawn_failures
            ),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn movement_and_kernel_accounting() {
        let mut m = Metrics::with_workers(2);
        m.record_movement(MovementKind::ControllerSend, 100);
        m.record_movement(MovementKind::P2p, 200);
        m.record_movement(MovementKind::Staged, 50);
        m.record_kernel(0, 1_000);
        m.record_kernel(0, 3_000);
        m.record_kernel(1, 500);
        assert_eq!(m.payload_bytes(), 350);
        assert_eq!(m.kernels_by_worker, vec![2, 1]);
        assert_eq!(m.busy_ns_by_worker, vec![4_000, 500]);
        assert_eq!(m.total_kernels(), 3);
    }

    #[test]
    fn disabled_telemetry_reports_disabled() {
        let t = Telemetry::off();
        assert!(!t.enabled());
        // All sinks are inert no-ops.
        t.span(&SpanEvent {
            name: "x",
            cat: "execute",
            lane: Lane::CONTROLLER,
            start_ns: 0,
            dur_ns: 1,
            args: &[],
        });
        t.instant("i", Lane::CONTROLLER, 0, &[]);
        t.counter("c", Lane::CONTROLLER, 0, 1.0);
        t.mark("m", &[]);
    }

    #[test]
    fn chrome_tracer_emits_schema_shaped_events() {
        let mut tr = ChromeTracer::new();
        tr.span(&SpanEvent {
            name: "axpy",
            cat: "execute",
            lane: Lane::stream(1, 0, 2),
            start_ns: 2_000,
            dur_ns: 3_000,
            args: &[("bytes", ArgValue::U64(64))],
        });
        tr.instant("fault", Lane::CONTROLLER, 1_000, &[]);
        tr.counter("bytes", Lane::CONTROLLER, 500, 42.0);
        tr.mark("planner", &[("ces", ArgValue::U64(1))]);
        assert_eq!(tr.len(), 4);

        let Value::Object(top) = tr.to_json_value() else {
            panic!("trace must be a JSON object");
        };
        let events = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key");
        let Value::Array(events) = events else {
            panic!("traceEvents must be an array");
        };
        // 2 lanes seen -> 4 metadata events, plus the 4 recorded ones.
        assert_eq!(events.len(), 8);
        for ev in events {
            let Value::Object(fields) = ev else {
                panic!("every event is an object");
            };
            for key in ["name", "ph", "pid", "tid"] {
                assert!(
                    fields.iter().any(|(k, _)| k == key),
                    "event missing {key}: {fields:?}"
                );
            }
        }
        // The mark is stamped with the latest seen timestamp (5 us).
        let json = tr.to_json_string();
        assert!(json.contains("\"planner\""));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    }

    #[test]
    fn shared_recorder_roundtrip() {
        let shared = Shared::new(ChromeTracer::new());
        let t = shared.telemetry();
        assert!(t.enabled());
        t.instant("hello", Lane::CONTROLLER, 10, &[]);
        assert_eq!(shared.lock().len(), 1);
    }

    #[test]
    fn metrics_dumps_are_well_formed() {
        let mut m = Metrics::with_workers(1);
        m.plan.record(100);
        m.record_movement(MovementKind::P2p, 7);
        let json = serde_json::to_string(&m.to_json_value()).expect("render metrics");
        assert!(json.contains("\"p2p_bytes\":7"));
        assert!(json.contains("\"plan\""));
        let csv = m.to_csv();
        assert!(csv.starts_with("metric,value\n"));
        assert!(csv.contains("p2p_bytes,7\n"));
        assert!(csv.contains("plan.count,1\n"));
        assert!(csv.contains("kernels_by_worker.0,0\n"));
    }

    #[test]
    fn session_lanes_offset_and_name_tracks() {
        assert_eq!(Lane::stream(2, 1, 3).for_session(7).session(), 7);
        assert_eq!(Lane::stream(2, 1, 3).for_session(7).local_node(), 2);
        assert_eq!(
            Lane::stream(2, 1, 3).for_session(7).track_name(),
            "s7 gpu1 stream3"
        );
        assert_eq!(Lane::control(0).for_session(0), Lane::control(0));
        assert_eq!(Lane::network(1).track_name(), "network");

        let shared = Shared::new(ChromeTracer::new());
        let base = shared.telemetry();
        let s3 = base.for_session(3);
        assert!(s3.enabled());
        s3.instant("tick", Lane::control(1), 10, &[]);
        s3.span(&SpanEvent {
            name: "ce",
            cat: "execute",
            lane: Lane::stream(1, 0, 0),
            start_ns: 10,
            dur_ns: 10,
            args: &[],
        });
        s3.mark("done", &[]);
        base.instant("root", Lane::CONTROLLER, 30, &[]);
        let json = shared.lock().to_json_string();
        // Session 3's events live in a disjoint pid stripe with session-
        // prefixed process/track names; session 0 keeps the bare names.
        assert!(json.contains("\"s3 worker 0\""));
        assert!(json.contains("\"s3 control\""));
        assert!(json.contains("\"controller\""));
        let parsed = serde_json::from_str(&json).expect("trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap();
        let tick = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("tick"))
            .unwrap();
        assert_eq!(
            tick.get("pid").and_then(|p| p.as_u64()),
            Some(1 + 3 * SESSION_LANE_STRIDE as u64)
        );
        // The mark lands on session 3's controller lane at the last
        // timestamp the wrapper saw (20 us end of the span).
        let done = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("done"))
            .unwrap();
        assert_eq!(
            done.get("pid").and_then(|p| p.as_u64()),
            Some(3 * SESSION_LANE_STRIDE as u64)
        );
    }

    #[test]
    fn snapshot_renders_prometheus_with_labels() {
        let mut m = Metrics::with_workers(2);
        m.plan.record(100);
        m.plan.record(300);
        m.record_movement(MovementKind::P2p, 7);
        m.faults = 2;
        m.kernels_by_worker[1] = 5;
        m.session = Some(4);
        let snap = m.snapshot(&[("role", "ctld")]);
        let text = snap.to_prometheus();
        assert!(text.contains("# HELP grout_moved_bytes_total "));
        assert!(text.contains("# TYPE grout_moved_bytes_total counter"));
        assert!(
            text.contains("grout_moved_bytes_total{role=\"ctld\",session=\"4\",policy=\"p2p\"} 7")
        );
        assert!(
            text.contains("grout_sched_events_total{role=\"ctld\",session=\"4\",kind=\"fault\"} 2")
        );
        assert!(
            text.contains("grout_worker_kernels_total{role=\"ctld\",session=\"4\",worker=\"1\"} 5")
        );
        assert!(text.contains("grout_ce_phase_count{role=\"ctld\",session=\"4\",phase=\"plan\"} 2"));
        assert!(!text.contains("NaN"), "exposition must never carry NaN");
        // Exposition lines are either comments or `name{...} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("grout_"),
                "unexpected line: {line}"
            );
        }
        // A second session merges into the same families.
        let mut m2 = Metrics::with_workers(1);
        m2.record_movement(MovementKind::P2p, 9);
        m2.session = Some(5);
        let mut merged = snap.clone();
        merged.merge(m2.snapshot(&[("role", "ctld")]));
        let text = merged.to_prometheus();
        assert_eq!(text.matches("# TYPE grout_moved_bytes_total").count(), 1);
        assert!(text.contains("session=\"4\",policy=\"p2p\"} 7"));
        assert!(text.contains("session=\"5\",policy=\"p2p\"} 9"));
    }

    #[test]
    fn snapshot_coerces_non_finite_values() {
        let mut snap = MetricsSnapshot::new();
        snap.push("grout_bad", MetricKind::Gauge, "h", &[], f64::NAN);
        snap.push(
            "grout_bad",
            MetricKind::Gauge,
            "h",
            &[("a", "b\"c\n")],
            f64::INFINITY,
        );
        let text = snap.to_prometheus();
        assert!(text.contains("grout_bad 0"));
        assert!(text.contains("grout_bad{a=\"b\\\"c\\n\"} 0"));
    }

    #[test]
    fn history_ring_wraps_and_windows() {
        let mut h = MetricsHistory::with_capacity(4);
        for i in 0..10u64 {
            h.push(HistorySample {
                at_ns: i * 1_000,
                faults: i,
                queue_depth: i,
                ..HistorySample::default()
            });
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.latest().unwrap().at_ns, 9_000);
        // Window of 2 us from the newest (9 us): samples at 7, 8, 9 us.
        assert_eq!(h.window(2_000).len(), 3);
        assert_eq!(h.window(u64::MAX).len(), 4);
        assert_eq!(MetricsHistory::new().window(1).len(), 0);
        // 3 faults over 3 us -> 1e6 faults/sec.
        let rate = h.fault_rate_per_s(3_000);
        assert!((rate - 1e6).abs() < 1.0, "rate={rate}");
        assert_eq!(MetricsHistory::new().fault_rate_per_s(1_000), 0.0);
    }

    #[test]
    fn history_renders_chrome_counters() {
        let mut h = MetricsHistory::new();
        h.push(HistorySample {
            at_ns: 5_000,
            queue_depth: 3,
            occupancy: vec![1, 2],
            ces_done: vec![(1, 10), (2, 4)],
            ..HistorySample::default()
        });
        let json = h.to_chrome_string(u64::MAX);
        let parsed = serde_json::from_str(&json).expect("chrome window parses");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap();
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C")));
        let occ: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("occupancy"))
            .collect();
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[1].get("pid").and_then(|p| p.as_u64()), Some(2));
        let done = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("ces_done"))
            .unwrap();
        let args = done.get("args").unwrap();
        assert_eq!(args.get("s1").and_then(|v| v.as_u64()), Some(10));
        assert_eq!(args.get("s2").and_then(|v| v.as_u64()), Some(4));
    }
}
