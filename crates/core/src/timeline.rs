//! Independent event-driven validation of a simulated run.
//!
//! The analytic runtime computes CE timelines at submit time; this module
//! *replays* the resulting records through the discrete-event engine
//! ([`desim::Sim`]) as begin/end events and re-checks the invariants the
//! analytic math is supposed to guarantee:
//!
//! - a CUDA stream is a FIFO: kernel windows on one (worker, device,
//!   stream) never overlap;
//! - data dependencies are respected in time: a CE never starts before
//!   every CE it depends on (by argument read/write sets) has finished;
//! - the controller is serial for host operations.
//!
//! Because the replay uses an entirely different mechanism (a calendar
//! queue walking begin/end events in time order), it cross-checks the
//! analytic scheduler rather than re-deriving it. It also produces
//! utilization summaries for reporting.

use std::collections::HashMap;

use desim::{Sim, SimDuration, SimTime};

use crate::sim_runtime::CeRecord;

/// Outcome of replaying a run's records.
#[derive(Debug, Clone)]
pub struct TimelineReport {
    /// Events replayed (2 per CE).
    pub events: u64,
    /// Invariant violations found (empty on a correct run).
    pub violations: Vec<String>,
    /// Busy time per (worker, device), for utilization reporting.
    pub device_busy: HashMap<(usize, usize), SimDuration>,
    /// The makespan observed during replay.
    pub makespan: SimTime,
}

impl TimelineReport {
    /// True when every invariant held.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }

    /// Busy fraction of a device over the makespan.
    pub fn utilization(&self, worker: usize, device: usize) -> f64 {
        let busy = self
            .device_busy
            .get(&(worker, device))
            .copied()
            .unwrap_or(SimDuration::ZERO);
        if self.makespan.as_nanos() == 0 {
            0.0
        } else {
            busy.as_nanos() as f64 / self.makespan.as_nanos() as f64
        }
    }
}

#[derive(Default)]
struct ReplayState {
    /// CE index currently occupying each (worker, device, stream).
    occupied: HashMap<(usize, usize, usize), usize>,
    /// Completion flags per CE index.
    done: Vec<bool>,
    violations: Vec<String>,
    device_busy: HashMap<(usize, usize), SimDuration>,
}

/// Replays `records` through the event engine and validates the run.
pub fn validate(records: &[CeRecord]) -> TimelineReport {
    // Precompute dependency pairs from argument read/write sets.
    let mut deps: Vec<(usize, usize)> = Vec::new();
    for j in 0..records.len() {
        for i in 0..j {
            if records[j].ce.depends_on(&records[i].ce) {
                deps.push((i, j));
            }
        }
    }

    let mut sim = Sim::new(ReplayState {
        done: vec![false; records.len()],
        ..Default::default()
    });

    for (idx, r) in records.iter().enumerate() {
        let key = match (r.device, r.stream) {
            (Some(d), Some(s)) => Some((r.location.0, d.0, s.0)),
            _ => None,
        };
        let label = r.ce.label();
        let (start, finish) = (r.start, r.finish);
        // Begin event: claim the stream.
        {
            let label = label.clone();
            sim.schedule_at(start, move |s| {
                if let Some(key) = key {
                    if let Some(&other) = s.state.occupied.get(&key) {
                        s.state.violations.push(format!(
                            "{label} begins on stream {key:?} while CE #{other} still occupies it"
                        ));
                    }
                    s.state.occupied.insert(key, idx);
                }
            });
        }
        // End event: release the stream, account busy time, mark done.
        sim.schedule_at(finish, move |s| {
            if let Some(key) = key {
                if s.state.occupied.get(&key) == Some(&idx) {
                    s.state.occupied.remove(&key);
                }
                *s.state
                    .device_busy
                    .entry((key.0, key.1))
                    .or_insert(SimDuration::ZERO) += finish - start;
            }
            s.state.done[idx] = true;
        });
    }

    // Dependency checks ride as begin-time probes: when the dependent
    // starts, its ancestor must already be done. Schedule them one tick
    // before the begin events of the same instant would be ambiguous, so
    // instead verify directly from timestamps (ties are allowed: an end and
    // a begin may share an instant).
    let mut report_violations: Vec<String> = Vec::new();
    for &(i, j) in &deps {
        if records[j].start < records[i].finish {
            report_violations.push(format!(
                "{} starts at {} before its dependency {} finishes at {}",
                records[j].ce.label(),
                records[j].start,
                records[i].ce.label(),
                records[i].finish
            ));
        }
    }

    let makespan = sim.run();
    let events = sim.events_run();
    let mut state = sim.state;
    state.violations.extend(report_violations);
    TimelineReport {
        events,
        violations: state.violations,
        device_busy: state.device_busy,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::CeArg;
    use crate::policy::PolicyKind;
    use crate::sim_runtime::{SimConfig, SimRuntime};
    use gpu_sim::KernelCost;

    const GIB: u64 = 1 << 30;

    fn cost() -> KernelCost {
        KernelCost {
            flops: 1e12,
            bytes_read: GIB,
            bytes_written: 0,
        }
    }

    #[test]
    fn clean_runs_validate() {
        let mut rt = SimRuntime::try_new(SimConfig::paper_grout(2, PolicyKind::RoundRobin))
            .expect("valid config");
        let a = rt.alloc(GIB);
        let b = rt.alloc(GIB);
        rt.host_write(a, GIB);
        rt.launch("k1", cost(), vec![CeArg::read_write(a, GIB)]);
        rt.launch(
            "k2",
            cost(),
            vec![CeArg::read(a, GIB), CeArg::write(b, GIB)],
        );
        rt.launch("k3", cost(), vec![CeArg::read_write(b, GIB)]);
        let report = validate(rt.records());
        assert!(report.is_valid(), "violations: {:?}", report.violations);
        assert_eq!(report.events, rt.records().len() as u64 * 2);
        assert_eq!(report.makespan, rt.elapsed());
    }

    #[test]
    fn workload_runs_validate() {
        use grout_test_workload::submit_mini;
        let mut rt = SimRuntime::try_new(SimConfig::grcuda_baseline()).expect("valid config");
        submit_mini(&mut rt);
        let report = validate(rt.records());
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    /// A tiny CE soup exercising streams and both nodes.
    mod grout_test_workload {
        use super::*;

        pub fn submit_mini(rt: &mut SimRuntime) {
            let arrays: Vec<_> = (0..6).map(|_| rt.alloc(4 * GIB)).collect();
            for &x in &arrays {
                rt.host_write(x, 4 * GIB);
            }
            for round in 0..4 {
                for (i, &x) in arrays.iter().enumerate() {
                    if (round + i) % 3 == 0 {
                        rt.launch("touch", cost(), vec![CeArg::read_write(x, 4 * GIB)]);
                    } else {
                        rt.launch("scan", cost(), vec![CeArg::read(x, 4 * GIB)]);
                    }
                }
            }
            rt.host_read(arrays[0], 4 * GIB);
        }
    }

    #[test]
    fn corrupted_records_are_caught() {
        let mut rt = SimRuntime::try_new(SimConfig::paper_grout(1, PolicyKind::RoundRobin))
            .expect("valid config");
        let a = rt.alloc(GIB);
        rt.launch("w", cost(), vec![CeArg::write(a, GIB)]);
        rt.launch("r", cost(), vec![CeArg::read(a, GIB)]);
        let mut records = rt.records().to_vec();
        // Corrupt the dependent's start to precede its dependency's finish.
        records[1].start = desim::SimTime::ZERO;
        let report = validate(&records);
        assert!(!report.is_valid());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("before its dependency")),
            "violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn utilization_is_sane() {
        let mut rt = SimRuntime::try_new(SimConfig::paper_grout(1, PolicyKind::RoundRobin))
            .expect("valid config");
        let a = rt.alloc(GIB);
        for _ in 0..4 {
            rt.launch("k", cost(), vec![CeArg::read_write(a, GIB)]);
        }
        let report = validate(rt.records());
        let u = report.utilization(1, 0).max(report.utilization(1, 1));
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }
}
