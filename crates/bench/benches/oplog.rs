//! Op-log overhead benchmarks: the costs the state-machine refactor
//! added to the planner's hot path, measured head-to-head.
//!
//! - `plan_bare` vs `plan_logged`: one `PlanCe` through a bare
//!   `Planner::apply` vs through `LoggedPlanner` (the clone-into-log tax
//!   every runtime mutation now pays);
//! - `plan_journalled`: the same op with a flush-per-op `JournalSink`
//!   attached (the crash-recovery write amplification);
//! - `digest`: one `state_digest()` over a planner carrying a large DAG
//!   (the standby ack cross-check cost, paid per shipped op);
//! - `encode_op`/`decode_op`: the wire codec round-trip for the common
//!   op shapes;
//! - `replay`: throughput of `replay_ops` over a long captured log (the
//!   recovery-time metric: ops re-applied per second).
//!
//! Besides the console lines, results land in `BENCH_oplog.json` at the
//! repo root so runs can be diffed in review.

use std::time::{Duration, Instant};

use grout::core::{
    replay_ops, Ce, CeArg, CeId, CeKind, KernelCost, LinkMatrix, LoggedPlanner, Planner,
    PlannerConfig, PlannerOp, PolicyKind,
};
use grout::net::oplog::JournalSink;
use grout::net::wire;

const MIB: u64 = 1 << 20;

fn cfg(workers: usize) -> PlannerConfig {
    PlannerConfig::new(workers, PolicyKind::RoundRobin)
}

fn kernel_ce(id: u64, a: grout::ArrayId, b: grout::ArrayId) -> Ce {
    Ce {
        id: CeId(id),
        kind: CeKind::Kernel {
            name: "bench_k".into(),
            cost: KernelCost {
                flops: 1e6,
                bytes_read: MIB,
                bytes_written: MIB,
            },
        },
        args: vec![CeArg::read_write(a, MIB), CeArg::read(b, MIB)],
    }
}

struct BenchResult {
    name: &'static str,
    mean_ns: f64,
    iters: u64,
}

/// Fixed warm-up, then a bounded measurement loop; mirrors the criterion
/// shim's loop but keeps the mean so it can be serialized.
fn time(name: &'static str, budget: Duration, mut routine: impl FnMut()) -> BenchResult {
    for _ in 0..3 {
        routine();
    }
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        routine();
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("bench oplog/{name}: {mean_ns:.1} ns/iter ({iters} iters)");
    BenchResult {
        name,
        mean_ns,
        iters,
    }
}

/// One planning step against a planner that is freshly rebuilt whenever
/// the DAG grows past `reset_every` (unbounded growth would measure DAG
/// size, not logging overhead).
fn bench_plan(name: &'static str, budget: Duration, logged: bool, journal: bool) -> BenchResult {
    let reset_every = 4096u64;
    let journal_path = std::env::temp_dir().join(format!(
        "grout-bench-oplog-{}-{name}.grjl",
        std::process::id()
    ));
    let fresh = |n: &mut u64| {
        *n = 0;
        let mut p = LoggedPlanner::new(Planner::new(cfg(4), None));
        if journal {
            let sink = JournalSink::create(&journal_path, p.config(), &None).expect("journal");
            p.add_sink(Box::new(sink));
        }
        let a = p.alloc(MIB);
        let b = p.alloc(MIB);
        (p, a, b)
    };
    let mut n = 0u64;
    let result = if logged {
        let (mut p, mut a, mut b) = fresh(&mut n);
        time(name, budget, move || {
            if n >= reset_every {
                (p, a, b) = fresh(&mut n);
            }
            let ce = kernel_ce(n, a, b);
            n += 1;
            let plan = p.plan_ce(&ce).expect("plan");
            p.mark_completed(plan.dag_index);
        })
    } else {
        fn fresh_bare() -> (Planner, grout::ArrayId, grout::ArrayId) {
            let mut p = Planner::new(PlannerConfig::new(4, PolicyKind::RoundRobin), None);
            let alloc =
                |p: &mut Planner| match p.apply(&PlannerOp::Alloc { bytes: MIB }).expect("alloc") {
                    grout::core::PlannerResp::Array(id) => id,
                    _ => unreachable!(),
                };
            let a = alloc(&mut p);
            let b = alloc(&mut p);
            (p, a, b)
        }
        let (mut bare, mut aid, mut bid) = fresh_bare();
        time(name, budget, move || {
            if n >= reset_every {
                n = 0;
                (bare, aid, bid) = fresh_bare();
            }
            let ce = kernel_ce(n, aid, bid);
            n += 1;
            let plan = match bare.apply(&PlannerOp::PlanCe { ce }).expect("plan") {
                grout::core::PlannerResp::Plan(plan) => plan,
                _ => unreachable!(),
            };
            bare.apply(&PlannerOp::MarkCompleted {
                dag_index: plan.dag_index,
            })
            .expect("complete");
        })
    };
    std::fs::remove_file(&journal_path).ok();
    result
}

/// A planner carrying `ces` planned+completed kernels (digest workload).
fn loaded_planner(ces: u64) -> LoggedPlanner {
    let mut p = LoggedPlanner::new(Planner::new(cfg(4), Some(LinkMatrix::uniform(5, 10e9))));
    let a = p.alloc(MIB);
    let b = p.alloc(MIB);
    for i in 0..ces {
        let plan = p.plan_ce(&kernel_ce(i, a, b)).expect("plan");
        p.mark_completed(plan.dag_index);
    }
    p
}

fn main() {
    let budget = Duration::from_millis(400);
    let mut results = Vec::new();

    results.push(bench_plan("plan_bare", budget, false, false));
    results.push(bench_plan("plan_logged", budget, true, false));
    results.push(bench_plan("plan_journalled", budget, true, true));

    let loaded = loaded_planner(2000);
    results.push(time("digest_2k_ces", budget, || {
        std::hint::black_box(loaded.state_digest());
    }));

    let op = PlannerOp::PlanCe {
        ce: kernel_ce(7, grout::ArrayId(1), grout::ArrayId(2)),
    };
    results.push(time("encode_op", budget, || {
        std::hint::black_box(wire::encode_op(&op));
    }));
    let bytes = wire::encode_op(&op);
    results.push(time("decode_op", budget, || {
        std::hint::black_box(wire::decode_op(&bytes).expect("decode"));
    }));

    let log = loaded_planner(2000);
    let replay_res = time("replay_2k_ces", Duration::from_secs(2), || {
        let mut replica = Planner::new(cfg(4), Some(LinkMatrix::uniform(5, 10e9)));
        let _ = replay_ops(&mut replica, log.ops());
        std::hint::black_box(replica.state_digest());
    });
    let ops_per_replay = log.ops().len() as f64;
    println!(
        "bench oplog/replay throughput: {:.0} ops/s",
        ops_per_replay / (replay_res.mean_ns / 1e9)
    );
    results.push(replay_res);

    write_artifact(&results);
}

fn write_artifact(results: &[BenchResult]) {
    use serde::json::Value;

    struct Artifact<'a>(&'a [BenchResult]);
    impl serde::Serialize for Artifact<'_> {
        fn to_json_value(&self) -> Value {
            let rows = self
                .0
                .iter()
                .map(|r| {
                    Value::Object(vec![
                        ("name".into(), Value::String(r.name.into())),
                        ("mean_ns".into(), Value::F64(r.mean_ns)),
                        ("iters".into(), Value::U64(r.iters)),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("bench".into(), Value::String("oplog".into())),
                ("unit".into(), Value::String("ns_per_iter".into())),
                ("results".into(), Value::Array(rows)),
            ])
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_oplog.json");
    let body = serde_json::to_string_pretty(&Artifact(results)).expect("serialize");
    std::fs::write(path, body + "\n").expect("write BENCH_oplog.json");
    println!("bench oplog: artifact written to BENCH_oplog.json");
}
