//! kernelc throughput: runtime compilation cost (the NVRTC path) and
//! interpreter element throughput for the paper's kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use grout::workloads::{BLACK_SCHOLES_KERNEL, MV_KERNEL};
use kernelc::{compile_one, KernelArg};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernelc_compile");
    group.bench_function("black_scholes", |b| {
        b.iter(|| compile_one(BLACK_SCHOLES_KERNEL, "black_scholes").unwrap())
    });
    group.bench_function("mv", |b| b.iter(|| compile_one(MV_KERNEL, "mv").unwrap()));
    group.finish();
}

fn bench_launch(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernelc_launch");
    let n = 1 << 18;
    group.throughput(Throughput::Elements(n as u64));
    let saxpy = compile_one(
        "__global__ void saxpy(float* y, const float* x, float a, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { y[i] = a * x[i] + y[i]; }
        }",
        "saxpy",
    )
    .unwrap();
    let mut y = vec![1.0f32; n];
    let mut x = vec![2.0f32; n];
    group.bench_function("saxpy_256k", |b| {
        b.iter(|| {
            saxpy
                .launch(
                    (n as u32).div_ceil(256),
                    256,
                    &mut [
                        KernelArg::F32(&mut y),
                        KernelArg::F32(&mut x),
                        KernelArg::Float(1.0001),
                        KernelArg::Int(n as i32),
                    ],
                )
                .unwrap()
        })
    });
    let bs = compile_one(BLACK_SCHOLES_KERNEL, "black_scholes").unwrap();
    let mut spot = vec![100.0f32; n];
    let mut call = vec![0.0f32; n];
    let mut put = vec![0.0f32; n];
    group.bench_function("black_scholes_256k", |b| {
        b.iter(|| {
            bs.launch(
                (n as u32).div_ceil(256),
                256,
                &mut [
                    KernelArg::F32(&mut spot),
                    KernelArg::F32(&mut call),
                    KernelArg::F32(&mut put),
                    KernelArg::Float(100.0),
                    KernelArg::Float(0.05),
                    KernelArg::Float(0.2),
                    KernelArg::Float(1.0),
                    KernelArg::Int(n as i32),
                ],
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compile, bench_launch, bench_local_runtime);
criterion_main!(benches);

fn bench_local_runtime(c: &mut Criterion) {
    use grout::core::{LocalArg, LocalConfig, LocalRuntime, PolicyKind};
    use std::sync::Arc;

    // End-to-end framework overhead: dependent 4 KiB kernels through the
    // threaded controller/worker machinery (dominated by scheduling and
    // channel traffic, not compute).
    let mut group = c.benchmark_group("local_runtime");
    group.sample_size(20);
    let k = Arc::new(
        compile_one(
            "__global__ void inc(float* a, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { a[i] = a[i] + 1.0; }
            }",
            "inc",
        )
        .unwrap(),
    );
    group.bench_function("dependent_chain_64", |b| {
        b.iter(|| {
            let mut rt = LocalRuntime::try_new(LocalConfig::new(2, PolicyKind::RoundRobin))
                .expect("spawn workers");
            let a = rt.alloc_f32(1024);
            for _ in 0..64 {
                rt.launch(&k, 4, 256, vec![LocalArg::Buf(a), LocalArg::I32(1024)])
                    .unwrap();
            }
            rt.synchronize().unwrap();
        })
    });
    group.finish();
}
