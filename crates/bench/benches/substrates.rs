//! Microbenchmarks of the substrate layers: DAG maintenance, coherence
//! bookkeeping, the UVM cost engine, network transfers and stream
//! scheduling. These bound the framework's own overhead (the paper's
//! premise is that scheduling cost is negligible next to data movement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grout::core::{ArrayId, Ce, CeArg, CeId, CeKind, Coherence, DepDag, KernelCost, Location};
use grout::desim::{SimDuration, SimTime};
use grout::net_sim::{EndpointId, Network, Topology};
use grout::uvm_sim::{AllocId, ArgAccess, UvmConfig, UvmDevice};

fn kernel_ce(id: u64, arrays: &[u64]) -> Ce {
    Ce {
        id: CeId(id),
        kind: CeKind::Kernel {
            name: "k".into(),
            cost: KernelCost::default(),
        },
        args: arrays
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                if i == 0 {
                    CeArg::write(ArrayId(a), 1 << 20)
                } else {
                    CeArg::read(ArrayId(a), 1 << 20)
                }
            })
            .collect(),
    }
}

fn bench_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag");
    // A producer/consumer chain alternating over a rolling window of arrays.
    group.bench_function("add_ce_chain_1k", |b| {
        b.iter(|| {
            let mut dag = DepDag::new();
            for i in 0..1000u64 {
                let ce = kernel_ce(i, &[i % 16, (i + 1) % 16, (i + 2) % 16]);
                std::hint::black_box(dag.add_ce(&ce));
            }
            dag.len()
        })
    });
    group.finish();
}

fn bench_coherence(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherence");
    for workers in [2usize, 64] {
        group.bench_with_input(
            BenchmarkId::new("write_invalidate_cycle", workers),
            &workers,
            |b, &n| {
                let mut coh = Coherence::new();
                for a in 0..64u64 {
                    coh.register(ArrayId(a));
                }
                b.iter(|| {
                    for a in 0..64u64 {
                        for w in 0..n {
                            coh.record_copy(ArrayId(a), Location::worker(w));
                        }
                        coh.record_write(ArrayId(a), Location::worker(a as usize % n));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_uvm(c: &mut Criterion) {
    let mut group = c.benchmark_group("uvm");
    group.bench_function("kernel_access_fitting", |b| {
        let mut dev = UvmDevice::new(UvmConfig::default(), 16 << 30, 12e9);
        let args = [ArgAccess::streamed_read(AllocId(1), 8 << 30)];
        b.iter(|| std::hint::black_box(dev.kernel_access(&args)))
    });
    group.bench_function("kernel_access_storming", |b| {
        let mut dev = UvmDevice::new(UvmConfig::default(), 16 << 30, 12e9);
        let args = [ArgAccess::streamed_read(AllocId(1), 48 << 30)];
        b.iter(|| std::hint::black_box(dev.kernel_access(&args)))
    });
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("network");
    group.bench_function("transfer_issue", |b| {
        let topo = Topology::paper_oci(4, SimDuration::from_micros(50));
        let mut net = Network::new(topo);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            std::hint::black_box(net.transfer(
                SimTime(t),
                EndpointId(t as usize % 5),
                EndpointId((t as usize + 1) % 5),
                1 << 20,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dag,
    bench_coherence,
    bench_uvm,
    bench_network
);
criterion_main!(benches);
