//! Introspection-plane benchmarks: what the always-on observability
//! layer costs on the serving path.
//!
//! - `metrics_snapshot`: freezing a populated [`Metrics`] registry into
//!   a labeled [`MetricsSnapshot`] — the per-scrape aggregation cost;
//! - `history_push`: appending one [`HistorySample`] (4 workers, 4 wire
//!   peers, 8 sessions) to the fixed-capacity ring — paid on every
//!   fleet placement-refresh tick;
//! - `metrics_render`: rendering a fleet-sized snapshot to the
//!   Prometheus text exposition — the `/metrics` response body cost;
//! - `eventlog_line`: emitting one structured JSONL event into a void
//!   sink — the per-log-line serialization cost.
//!
//! Besides the console lines, results land in `BENCH_obs.json` at the
//! repo root so runs can be diffed in review.

use std::time::{Duration, Instant};

use grout::core::eventlog::{EventLog, Value as JsonValue};
use grout::core::{HistorySample, Metrics, MetricsHistory, PeerSample, PeerWireStats};

struct Row {
    name: &'static str,
    value: f64,
    unit: &'static str,
}

/// Times `routine` for at least `budget`, returning ns per iteration.
fn time(name: &'static str, budget: Duration, mut routine: impl FnMut()) -> Row {
    // Warm-up round so lazy allocations do not land in the measurement.
    routine();
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        routine();
        iters += 1;
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("bench obs/{name}: {ns:.1} ns/iter ({iters} iters)");
    Row {
        name,
        value: ns,
        unit: "ns_per_iter",
    }
}

/// A registry shaped like a busy 4-worker fleet mid-run.
fn populated_metrics() -> Metrics {
    let mut m = Metrics::default();
    for i in 0..512u64 {
        m.plan.record(1_000 + i * 13);
        m.queue.record(5_000 + i * 7);
        m.transfer.record(20_000 + i * 101);
        m.execute.record(50_000 + i * 211);
    }
    m.controller_send_bytes = 48 << 20;
    m.p2p_bytes = 16 << 20;
    m.staged_bytes = 4 << 20;
    m.faults = 12;
    m.retries = 3;
    m.kernels_by_worker = vec![400, 380, 410, 395];
    m.busy_ns_by_worker = vec![9e8 as u64, 8e8 as u64, 95e7 as u64, 91e7 as u64];
    m.wire = (0..4)
        .map(|i| {
            let mut w = PeerWireStats {
                frames_sent: 10_000 + i,
                bytes_sent: (12 << 20) + i,
                frames_recv: 9_000 + i,
                bytes_recv: (10 << 20) + i,
                ..PeerWireStats::default()
            };
            for r in 0..64u64 {
                w.hb_rtt.record(200_000 + r * 1_000);
            }
            w
        })
        .collect();
    m.session = Some(1);
    m
}

fn sample() -> HistorySample {
    HistorySample {
        at_ns: 1,
        queue_depth: 37,
        resident_bytes: 3 << 30,
        faults: 2,
        sessions_active: 8,
        workers_alive: 4,
        occupancy: vec![9, 11, 8, 10],
        peers: (0..4)
            .map(|_| PeerSample::from_wire(&PeerWireStats::default()))
            .collect(),
        ces_done: (1..=8).map(|s| (s, s * 100)).collect(),
    }
}

fn main() {
    let budget = Duration::from_millis(200);
    let mut rows = Vec::new();

    let metrics = populated_metrics();
    rows.push(time("metrics_snapshot", budget, || {
        let snap = metrics.snapshot(&[("role", "session")]);
        assert!(!snap.is_empty());
    }));

    let mut history = MetricsHistory::new();
    rows.push(time("history_push", budget, || {
        history.push(sample());
    }));

    let snap = metrics.snapshot(&[("role", "session")]);
    let body = snap.to_prometheus();
    println!(
        "bench obs/metrics_render: body is {} bytes over {} families",
        body.len(),
        snap.families().len()
    );
    rows.push(time("metrics_render", budget, || {
        let body = snap.to_prometheus();
        assert!(!body.is_empty());
    }));
    rows.push(Row {
        name: "metrics_render_bytes",
        value: body.len() as f64,
        unit: "bytes",
    });

    // A sink that only counts: measures serialization, not I/O.
    struct Void;
    impl std::io::Write for Void {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let log = EventLog::to_writer("bench", Box::new(Void)).with_rate_cap(u32::MAX);
    rows.push(time("eventlog_line", budget, || {
        log.info(
            "bench_event",
            Some(7),
            "one structured line with a couple of fields",
            &[
                ("kernels", JsonValue::U64(42)),
                ("bytes", JsonValue::U64(1 << 20)),
            ],
        );
    }));

    write_artifact(&rows);
}

fn write_artifact(rows: &[Row]) {
    use serde::json::Value;

    struct Artifact<'a>(&'a [Row]);
    impl serde::Serialize for Artifact<'_> {
        fn to_json_value(&self) -> Value {
            let rows = self
                .0
                .iter()
                .map(|r| {
                    Value::Object(vec![
                        ("name".into(), Value::String(r.name.into())),
                        ("value".into(), Value::F64(r.value)),
                        ("unit".into(), Value::String(r.unit.into())),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("bench".into(), Value::String("obs".into())),
                ("results".into(), Value::Array(rows)),
            ])
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let body = serde_json::to_string_pretty(&Artifact(rows)).expect("serialize");
    std::fs::write(path, body + "\n").expect("write BENCH_obs.json");
    println!("bench obs: artifact written to BENCH_obs.json");
}
