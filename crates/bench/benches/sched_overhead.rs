//! Criterion version of the paper's Figure 9: wall-clock cost of one
//! Controller scheduling decision, per policy, versus cluster size.
//! Static policies must stay flat; the online min-transfer policies grow
//! linearly with the node count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grout::core::{ExplorationLevel, LinkMatrix, NodeScheduler, PolicyKind};
use grout_bench::fig9_state;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_sched_overhead");
    type MakeScheduler = Box<dyn Fn() -> NodeScheduler>;
    for nodes in [2usize, 16, 64, 256] {
        let (_, coherence, ce) = fig9_state(nodes);
        let make: Vec<(&'static str, MakeScheduler)> = vec![
            (
                "round-robin",
                Box::new(move || NodeScheduler::new(PolicyKind::RoundRobin, nodes, None)),
            ),
            (
                "vector-step",
                Box::new(move || {
                    NodeScheduler::new(PolicyKind::VectorStep(vec![1, 2, 3]), nodes, None)
                }),
            ),
            (
                "min-transfer-size",
                Box::new(move || {
                    NodeScheduler::new(
                        PolicyKind::MinTransferSize(ExplorationLevel::Medium),
                        nodes,
                        None,
                    )
                }),
            ),
            (
                "min-transfer-time",
                Box::new(move || {
                    NodeScheduler::new(
                        PolicyKind::MinTransferTime(ExplorationLevel::Medium),
                        nodes,
                        Some(LinkMatrix::uniform(nodes + 1, 500e6)),
                    )
                }),
            ),
        ];
        for (name, mk) in make {
            group.bench_with_input(BenchmarkId::new(name, nodes), &nodes, |b, _| {
                let mut sched = mk();
                b.iter(|| std::hint::black_box(sched.assign(&ce, &coherence)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
