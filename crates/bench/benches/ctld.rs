//! Control-plane benchmarks: the costs and wins of the multi-tenant
//! session layer, measured on one shared in-process fleet.
//!
//! - `attach_detach`: minting a session on a live [`FleetMux`] and
//!   tearing it down again (namespace attach, fair-share registration,
//!   reclaim broadcast);
//! - `ops_per_s_{1,4,16}`: aggregate kernel-CE throughput with 1, 4 and
//!   16 concurrent tenant sessions driving the same two-worker fleet —
//!   the multi-tenancy scaling curve;
//! - `frames_per_ce_{unbatched,batched}`: wire frames per logical
//!   control message at 16 concurrent sessions with CE batching off vs
//!   on — the before/after the `--batch` knob buys.
//!
//! Besides the console lines, results land in `BENCH_ctld.json` at the
//! repo root so runs can be diffed in review.

use std::sync::Arc;
use std::time::{Duration, Instant};

use grout::core::{BatchStats, ChannelTransport, FleetMux, LocalRuntime, Runtime};
use grout::LocalArg;

const N: usize = 256;
const LAUNCHES_PER_SESSION: u64 = 24;

const SRC: &str = "
    __global__ void scale(float* y, float a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { y[i] = a * y[i]; }
    }
";

struct Row {
    name: &'static str,
    value: f64,
    unit: &'static str,
}

fn session_workload(rt: &mut LocalRuntime) {
    let ks = kernelc::compile(SRC).expect("compiles");
    let scale = Arc::new(ks[0].clone());
    let a = rt.alloc_f32(N);
    rt.write_f32(a, |v| {
        v.iter_mut().enumerate().for_each(|(i, x)| *x = i as f32)
    })
    .unwrap();
    for _ in 0..LAUNCHES_PER_SESSION {
        rt.launch(
            &scale,
            2,
            128,
            vec![
                LocalArg::Buf(a),
                LocalArg::F32(1.0001),
                LocalArg::I32(N as i32),
            ],
        )
        .unwrap();
    }
    rt.synchronize().unwrap();
}

/// Runs `sessions` concurrent tenants over one fresh two-worker fleet;
/// returns the wall time and the fleet's batching counters.
fn run_fleet(sessions: usize, batch: bool) -> (Duration, BatchStats) {
    let mut fleet = FleetMux::with_batching(Box::new(ChannelTransport::new(2)), batch);
    let start = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..sessions {
        let session = fleet.session(2);
        handles.push(std::thread::spawn(move || {
            let mut rt = Runtime::builder()
                .workers(2)
                .build_with_transport(Box::new(session))
                .expect("session runtime");
            session_workload(&mut rt);
        }));
    }
    for h in handles {
        h.join().expect("session thread");
    }
    let elapsed = start.elapsed();
    let stats = fleet.batch_stats();
    fleet.shutdown();
    (elapsed, stats)
}

fn main() {
    let mut rows = Vec::new();

    // Attach/detach latency on a live fleet.
    let mut fleet = FleetMux::new(Box::new(ChannelTransport::new(2)));
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < Duration::from_millis(200) {
        let session = fleet.session(2);
        drop(session); // detach: reclaim broadcast + fair-share removal
        iters += 1;
    }
    let attach_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    fleet.shutdown();
    println!("bench ctld/attach_detach: {attach_ns:.1} ns/iter ({iters} iters)");
    rows.push(Row {
        name: "attach_detach",
        value: attach_ns,
        unit: "ns_per_iter",
    });

    // Multi-tenancy scaling: aggregate CE throughput at 1/4/16 sessions.
    for (name, sessions) in [
        ("ops_per_s_1_session", 1usize),
        ("ops_per_s_4_sessions", 4),
        ("ops_per_s_16_sessions", 16),
    ] {
        let (elapsed, _) = run_fleet(sessions, false);
        let ces = (sessions as u64 * LAUNCHES_PER_SESSION) as f64;
        let ops_per_s = ces / elapsed.as_secs_f64();
        println!("bench ctld/{name}: {ops_per_s:.0} CE/s ({ces} CEs in {elapsed:?})");
        rows.push(Row {
            name,
            value: ops_per_s,
            unit: "ce_per_s",
        });
    }

    // CE batching: frames per logical message at 16 sessions, off vs on.
    let (_, unbatched) = run_fleet(16, false);
    let (_, batched) = run_fleet(16, true);
    let ratio = |s: &BatchStats| s.frames as f64 / s.messages.max(1) as f64;
    let (off, on) = (ratio(&unbatched), ratio(&batched));
    println!(
        "bench ctld/frames_per_ce: {off:.3} unbatched vs {on:.3} batched \
         ({} of {} frames were batches)",
        batched.batched_frames, batched.frames
    );
    assert!(
        on < off,
        "batching must reduce frames per CE at 16 sessions ({on:.3} !< {off:.3})"
    );
    rows.push(Row {
        name: "frames_per_ce_unbatched_x16",
        value: off,
        unit: "frames_per_msg",
    });
    rows.push(Row {
        name: "frames_per_ce_batched_x16",
        value: on,
        unit: "frames_per_msg",
    });
    rows.push(Row {
        name: "batched_frame_share_x16",
        value: batched.batched_frames as f64 / batched.frames.max(1) as f64,
        unit: "ratio",
    });

    write_artifact(&rows);
}

fn write_artifact(rows: &[Row]) {
    use serde::json::Value;

    struct Artifact<'a>(&'a [Row]);
    impl serde::Serialize for Artifact<'_> {
        fn to_json_value(&self) -> Value {
            let rows = self
                .0
                .iter()
                .map(|r| {
                    Value::Object(vec![
                        ("name".into(), Value::String(r.name.into())),
                        ("value".into(), Value::F64(r.value)),
                        ("unit".into(), Value::String(r.unit.into())),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("bench".into(), Value::String("ctld".into())),
                ("results".into(), Value::Array(rows)),
            ])
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ctld.json");
    let body = serde_json::to_string_pretty(&Artifact(rows)).expect("serialize");
    std::fs::write(path, body + "\n").expect("write BENCH_ctld.json");
    println!("bench ctld: artifact written to BENCH_ctld.json");
}
