//! One criterion bench per data-bearing figure: times regenerating each
//! figure's full data series through the simulated cluster. (Figure 9 has
//! its own dedicated bench in `sched_overhead.rs`.)

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20))
        .warm_up_time(Duration::from_secs(2));
    group.bench_function("fig1_black_scholes_sweep", |b| {
        b.iter(|| std::hint::black_box(grout_bench::fig1()))
    });
    group.bench_function("fig6a_single_node_slowdowns", |b| {
        b.iter(|| std::hint::black_box(grout_bench::fig6a()))
    });
    group.bench_function("fig6b_grout_slowdowns", |b| {
        b.iter(|| std::hint::black_box(grout_bench::fig6b()))
    });
    group.bench_function("fig7_speedups", |b| {
        b.iter(|| std::hint::black_box(grout_bench::fig7()))
    });
    group.bench_function("fig8_policy_matrix", |b| {
        b.iter(|| std::hint::black_box(grout_bench::fig8()))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
