//! Machine-readable artifact emission shared by the bench binaries.
//!
//! Every binary that accepts `--trace-out <path>` / `--metrics-out <path>`
//! parses them through [`ArtifactArgs`] and funnels its output through the
//! helpers here, so all artifacts share one shape:
//!
//! - `--trace-out` writes a Chrome `trace_event` JSON file (load it at
//!   <https://ui.perfetto.dev> or `chrome://tracing`),
//! - `--metrics-out` writes a flat JSON object of labeled [`Metrics`]
//!   dumps (latency stats, per-policy bytes moved, fault counters,
//!   per-worker kernel occupancy). Paths ending in `.csv` get the CSV
//!   rendering instead.

use grout::core::{ChromeTracer, Metrics, Shared, SimConfig, SimRuntime};
use grout::workloads::SimWorkload;
use std::path::PathBuf;

/// Parsed `--trace-out` / `--metrics-out` flags.
#[derive(Debug, Clone, Default)]
pub struct ArtifactArgs {
    /// Destination for the Chrome `trace_event` JSON, if requested.
    pub trace_out: Option<PathBuf>,
    /// Destination for the metrics dump (JSON, or CSV for `.csv` paths).
    pub metrics_out: Option<PathBuf>,
}

impl ArtifactArgs {
    /// Extracts `--trace-out <path>` and `--metrics-out <path>` from the
    /// raw argument list (other arguments are left for the caller).
    pub fn parse(args: &[String]) -> ArtifactArgs {
        let path_after = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from)
        };
        ArtifactArgs {
            trace_out: path_after("--trace-out"),
            metrics_out: path_after("--metrics-out"),
        }
    }

    /// Whether any artifact was requested (skip instrumentation otherwise).
    pub fn wanted(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Writes the tracer's Chrome trace if `--trace-out` was given.
    pub fn write_trace(&self, tracer: &ChromeTracer) {
        if let Some(path) = &self.trace_out {
            tracer.write_to(path).expect("write trace artifact");
            eprintln!("trace: wrote {} events to {}", tracer.len(), path.display());
        }
    }

    /// Writes labeled metrics dumps if `--metrics-out` was given. Each
    /// `(label, metrics)` pair becomes one top-level key of the JSON
    /// object; a `.csv` path instead concatenates labeled CSV sections.
    pub fn write_metrics(&self, labeled: &[(&str, &Metrics)]) {
        let Some(path) = &self.metrics_out else {
            return;
        };
        let is_csv = path.extension().is_some_and(|e| e == "csv");
        let body = if is_csv {
            labeled
                .iter()
                .map(|(label, m)| format!("# {label}\n{}", m.to_csv()))
                .collect::<Vec<_>>()
                .join("\n")
        } else {
            let obj = serde_json::Value::Object(
                labeled
                    .iter()
                    .map(|(label, m)| (label.to_string(), m.to_json_value()))
                    .collect(),
            );
            serde_json::to_string_pretty(&obj).expect("render metrics artifact")
        };
        std::fs::write(path, body).expect("write metrics artifact");
        eprintln!(
            "metrics: wrote {} section(s) to {}",
            labeled.len(),
            path.display()
        );
    }
}

/// Runs `workload` at `footprint_bytes` on a fresh instrumented runtime
/// and returns it with its recording still attached, so callers can pull
/// both the Chrome trace and the [`Metrics`] registry out of one run.
pub fn instrumented_run(
    workload: &dyn SimWorkload,
    cfg: SimConfig,
    footprint_bytes: u64,
) -> (SimRuntime, Shared<ChromeTracer>) {
    let tracer = Shared::new(ChromeTracer::new());
    let mut rt = grout::Runtime::builder()
        .sim_config(cfg)
        .telemetry(tracer.telemetry())
        .build_sim()
        .expect("valid config");
    workload.submit(&mut rt, footprint_bytes);
    (rt, tracer)
}

/// Emits the requested artifacts from one instrumented representative run
/// (used by the figure bins, whose sweeps are too big to trace whole).
pub fn emit_representative(
    art: &ArtifactArgs,
    label: &str,
    workload: &dyn SimWorkload,
    cfg: SimConfig,
    footprint_bytes: u64,
) {
    if !art.wanted() {
        return;
    }
    let (rt, tracer) = instrumented_run(workload, cfg, footprint_bytes);
    art.write_trace(&tracer.lock());
    art.write_metrics(&[(label, rt.metrics())]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_both_flags_anywhere() {
        let art = ArtifactArgs::parse(&strings(&[
            "bin",
            "cg",
            "--trace-out",
            "t.json",
            "96",
            "--metrics-out",
            "m.csv",
        ]));
        assert_eq!(
            art.trace_out.as_deref(),
            Some(std::path::Path::new("t.json"))
        );
        assert_eq!(
            art.metrics_out.as_deref(),
            Some(std::path::Path::new("m.csv"))
        );
        assert!(art.wanted());
        assert!(!ArtifactArgs::parse(&strings(&["bin", "cg"])).wanted());
    }

    #[test]
    fn instrumented_run_collects_spans_and_metrics() {
        use grout::workloads::ConjugateGradient;
        let cfg = SimConfig::paper_grout(2, grout::PolicyKind::RoundRobin);
        let (rt, tracer) = instrumented_run(&ConjugateGradient::default(), cfg, 1 << 28);
        assert!(rt.metrics().total_kernels() > 0);
        assert!(!tracer.lock().is_empty());
    }
}
