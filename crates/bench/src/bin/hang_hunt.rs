//! Concurrency stress tool: searches for LocalRuntime protocol deadlocks
//! over random kernel-stream shapes, each case guarded by a watchdog.
//! (This harness caught the stale-forward race fixed by version-gated
//! `Send`; kept as a regression hunting tool.)
//!
//! Run with: `cargo run --release -p grout-bench --bin hang_hunt [-- --repro]`
//! (add `--trace-out`/`--metrics-out` for one instrumented local-runtime run)
use grout::core::{ChromeTracer, LocalArg, LocalConfig, LocalRuntime, PolicyKind, Runtime, Shared};
use grout::kernelc;
use grout_bench::ArtifactArgs;
use std::sync::Arc;

fn run_ops(ops: &[(u8, u8, u8)], workers: usize) {
    let src = "
        __global__ void write_k(float* a, float v, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { a[i] = v + (float)i; }
        }
        __global__ void addinto(float* b, const float* a, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { b[i] = b[i] + a[i] * 0.5; }
        }
        __global__ void scale(float* a, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { a[i] = a[i] * 1.25 + 1.0; }
        }
    ";
    let kernels = kernelc::compile(src).unwrap();
    let write_k = Arc::new(kernels[0].clone());
    let addinto = Arc::new(kernels[1].clone());
    let scale = Arc::new(kernels[2].clone());
    let n = 64usize;
    let mut rt = LocalRuntime::try_new(LocalConfig::new(workers, PolicyKind::RoundRobin))
        .expect("spawn workers");
    let arrays: Vec<_> = (0..4).map(|_| rt.alloc_f32(n)).collect();
    for &(a, b, kind) in ops {
        let (a, b) = (arrays[a as usize], arrays[b as usize]);
        match kind {
            0 => rt.launch(
                &write_k,
                1,
                64,
                vec![
                    LocalArg::Buf(a),
                    LocalArg::F32(3.5),
                    LocalArg::I32(n as i32),
                ],
            ),
            1 if a != b => rt.launch(
                &addinto,
                1,
                64,
                vec![LocalArg::Buf(b), LocalArg::Buf(a), LocalArg::I32(n as i32)],
            ),
            _ => rt.launch(
                &scale,
                1,
                64,
                vec![LocalArg::Buf(a), LocalArg::I32(n as i32)],
            ),
        }
        .unwrap();
    }
    rt.synchronize().unwrap();
    for &x in &arrays {
        rt.read_f32(x).unwrap();
    }
}

fn repro() {
    let ops: Vec<(u8, u8, u8)> = vec![
        (2, 2, 0),
        (2, 0, 2),
        (2, 3, 1),
        (1, 1, 2),
        (0, 0, 2),
        (1, 0, 2),
        (0, 2, 2),
        (2, 0, 1),
        (2, 1, 0),
        (0, 3, 1),
    ];
    for round in 0..2000 {
        eprintln!("== round {round}");
        let o = ops.clone();
        let h = std::thread::spawn(move || run_ops(&o, 3));
        let start = std::time::Instant::now();
        while !h.is_finished() {
            if start.elapsed().as_secs() > 5 {
                eprintln!("HANG at round {round}");
                std::process::exit(1);
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        h.join().unwrap();
    }
    println!("repro did not hang");
}

/// One instrumented three-worker run so `--trace-out`/`--metrics-out` have
/// real wall-clock spans and per-worker kernel counts to export.
fn emit_artifacts(art: &ArtifactArgs) {
    if !art.wanted() {
        return;
    }
    let inc = Arc::new(
        kernelc::compile(
            "
        __global__ void inc(float* a, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { a[i] = a[i] + 1.0; }
        }
    ",
        )
        .unwrap()[0]
            .clone(),
    );
    let tracer = Shared::new(ChromeTracer::new());
    let mut rt = Runtime::builder()
        .workers(3)
        .telemetry(tracer.telemetry())
        .build_local()
        .expect("spawn workers");
    let n = 256usize;
    let arrays: Vec<_> = (0..3).map(|_| rt.alloc_f32(n)).collect();
    for round in 0..4 {
        let a = arrays[round % arrays.len()];
        rt.launch(&inc, 4, 64, vec![LocalArg::Buf(a), LocalArg::I32(n as i32)])
            .unwrap();
    }
    rt.synchronize().unwrap();
    art.write_trace(&tracer.lock());
    art.write_metrics(&[("hang-hunt-local3", rt.metrics())]);
}

fn main() {
    let art = ArtifactArgs::parse(&std::env::args().collect::<Vec<_>>());
    if std::env::args().any(|a| a == "--repro") {
        repro();
        emit_artifacts(&art);
        return;
    }
    // Deterministic pseudo-random search; each case in a watchdog thread.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for case in 0..5000u64 {
        let len = (next() % 12 + 2) as usize;
        let ops: Vec<(u8, u8, u8)> = (0..len)
            .map(|_| ((next() % 4) as u8, (next() % 4) as u8, (next() % 3) as u8))
            .collect();
        for workers in [1usize, 3] {
            let ops2 = ops.clone();
            let h = std::thread::spawn(move || run_ops(&ops2, workers));
            let start = std::time::Instant::now();
            while !h.is_finished() {
                if start.elapsed().as_secs() > 5 {
                    println!("HANG case={case} workers={workers} ops={ops:?}");
                    std::process::exit(1);
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            h.join().unwrap();
        }
        if case % 500 == 0 {
            println!("...{case}");
        }
    }
    println!("no hang in 5000 cases");
    emit_artifacts(&art);
}
