//! Chaos harness: differential fault-injection sweep over a seed matrix.
//!
//! For every seed, a workload with one injected worker death must
//! (a) complete on the local runtime with results bit-identical to its
//! fault-free run, (b) complete in the simulator under the *same*
//! `FaultPlan`, (c) quarantine the same worker in both runtimes (the
//! shared planner makes the victim deterministic), and — on a serialized
//! chain, where detection order is fully determined — (d) agree on the
//! full quarantine identity (worker, discovered-at CE) and route every
//! post-fault kernel away from the dead node. Each case runs under a
//! watchdog so a recovery deadlock is a FAIL, not a hung CI job.
//!
//! Run with: `cargo run --release -p grout-bench --bin chaos -- --seeds 8`
//! (add `--trace-out`/`--metrics-out` for an instrumented faulted sim run
//! whose metrics dump carries the fault/retry/quarantine counters)
//!
//! `--kill-process` switches to process-level chaos: spawn real
//! `grout-workerd` processes, SIGKILL one mid-run while it holds the only
//! fresh copy of an array, and assert the controller quarantines it,
//! lineage-replays the lost data, and finishes bit-identical to a clean
//! in-process run. Requires the `grout-workerd` binary next to this one
//! (`cargo build -p grout --bins`) or a `GROUT_WORKERD` env override.
//!
//! Network chaos (omission faults, below the crash-stop model):
//!
//! - `--net-seeds N`: in-process differential sweep — each seed derives a
//!   deterministic [`NetFaultPlan`] (frame drops, duplicates, delays,
//!   severs, partitions) injected into the channel transport; every run
//!   must be bit-identical (results *and* planner state digest) to the
//!   clean run with zero quarantines, the modeled severs counted as
//!   session resumes.
//! - `--net-sever`: TCP differential — sever worker 0's socket under the
//!   controller mid-stream; the v4 session layer must resume and replay
//!   so the run stays bit-identical with zero quarantines and ≥1 resume.
//! - `--sigstop`: TCP differential — SIGSTOP one workerd past the
//!   staleness window (suspect fires, socket severed), SIGCONT it inside
//!   the reconnect window; the resume must reinstate the worker with no
//!   quarantine and bit-identical results.
//! - `--elastic`: TCP differential — a third workerd joins the live
//!   two-worker chain mid-run and receives CE placements, then a
//!   founding worker departs via a clean Leave; the run must stay
//!   bit-identical with the static two-worker run, with zero
//!   quarantines and zero session resumes.
use grout::core::{
    first_divergence, CeArg, ChromeTracer, KernelCost, LocalArg, LocalConfig, LocalRuntime,
    NetFaultPlan, PeerWireStats, PlannerOp, Runtime, Shared, SimConfig, SimRuntime,
};
use grout::desim::SimDuration;
use grout::kernelc;
use grout::{ExplorationLevel, FaultPlan, PolicyKind, SchedEvent};
use grout_bench::ArtifactArgs;
use std::sync::Arc;

const N: usize = 256;
const BYTES: u64 = (N * 4) as u64;
const CHAIN: usize = 6;

const SRC: &str = "
    __global__ void write_k(float* a, float v, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { a[i] = v + (float)i; }
    }
    __global__ void addinto(float* b, const float* a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { b[i] = b[i] + a[i] * 0.5; }
    }
    __global__ void scale(float* a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { a[i] = a[i] * 1.25 + 1.0; }
    }
";

fn local_cfg(workers: usize, faults: FaultPlan) -> LocalConfig {
    let mut cfg = LocalConfig::new(workers, PolicyKind::RoundRobin);
    cfg.planner.faults = faults;
    cfg.planner.fault_cfg.detection_timeout = SimDuration::from_millis(60);
    cfg
}

fn sim_cfg(workers: usize, faults: FaultPlan) -> SimConfig {
    let mut cfg = SimConfig::paper_grout(workers, PolicyKind::RoundRobin);
    cfg.planner.faults = faults;
    cfg.planner.fault_cfg.detection_timeout = SimDuration::from_millis(60);
    cfg
}

fn quarantine_of(events: &[SchedEvent]) -> Option<(usize, usize)> {
    events.iter().find_map(|e| match e {
        SchedEvent::Quarantine { worker, at_ce, .. } => Some((*worker, *at_ce)),
        _ => None,
    })
}

fn has_replay(events: &[SchedEvent]) -> bool {
    events
        .iter()
        .any(|e| matches!(e, SchedEvent::Replay { .. }))
}

/// One run's per-peer wire counters, for divergence reports. Empty on
/// transports that track none.
fn wire_table(label: &str, wire: &[PeerWireStats]) -> String {
    if wire.is_empty() {
        return format!("  {label}: no wire stats (transport tracks none)\n");
    }
    let mut s = format!("  {label} per-peer wire stats:\n");
    for (w, p) in wire.iter().enumerate() {
        s.push_str(&format!(
            "    w{w}: frames {}/{} in/out, bytes {}/{}, resumes {}\n",
            p.frames_recv, p.frames_sent, p.bytes_recv, p.bytes_sent, p.resumes
        ));
    }
    s
}

/// Localizes a differential mismatch in op-log terms: the first index
/// where the faulted run's planner history departs from the clean run's
/// is where recovery started rewriting the plan — the place to start
/// debugging. (The logs *should* diverge on a faulted run; this is only
/// consulted when the *results* diverged too.) Both runs' per-peer wire
/// counters ride along: on an omission-fault mismatch, the retransmit /
/// resume counts usually say which link misbehaved.
fn op_log_divergence(
    clean: &[PlannerOp],
    faulted: &[PlannerOp],
    clean_wire: &[PeerWireStats],
    faulted_wire: &[PeerWireStats],
) -> String {
    let head = match first_divergence(clean, faulted) {
        Some(i) => format!(
            "op logs first diverge at index {i}: clean {} vs faulted {}",
            clean
                .get(i)
                .map_or("<end of log>".into(), |o| format!("{o:?}")),
            faulted
                .get(i)
                .map_or("<end of log>".into(), |o| format!("{o:?}")),
        ),
        None => format!(
            "op logs share their common prefix (lengths {} vs {})",
            clean.len(),
            faulted.len()
        ),
    };
    format!(
        "{head}\n{}{}",
        wire_table("clean", clean_wire),
        wire_table("faulted", faulted_wire)
    )
}

/// Strict check on a serialized chain: full (worker, at_ce) agreement.
fn check_chain(faults: FaultPlan) {
    let inc_src = "
        __global__ void inc(float* a, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { a[i] = a[i] + 1.0; }
        }
    ";
    let inc = Arc::new(kernelc::compile(inc_src).unwrap()[0].clone());
    let run_local = |faults: FaultPlan| {
        let mut rt = LocalRuntime::try_new(local_cfg(2, faults)).expect("spawn workers");
        let a = rt.alloc_f32(N);
        for _ in 0..CHAIN {
            rt.launch(&inc, 4, 64, vec![LocalArg::Buf(a), LocalArg::I32(N as i32)])
                .unwrap();
        }
        rt.synchronize().unwrap();
        let events = rt.sched_trace().events().to_vec();
        let assign: Vec<_> = (0..CHAIN)
            .map(|i| rt.node_assignment(i).and_then(|l| l.worker_index()))
            .collect();
        let ops = rt.op_log().to_vec();
        rt.refresh_wire_metrics();
        let wire = rt.metrics().wire.clone();
        (rt.read_f32(a).unwrap(), events, assign, ops, wire)
    };

    let (clean, _, _, clean_ops, clean_wire) = run_local(FaultPlan::none());
    let (faulted, local_events, local_assign, faulted_ops, faulted_wire) =
        run_local(faults.clone());
    if clean != faulted {
        panic!(
            "chain results diverged after recovery; {}",
            op_log_divergence(&clean_ops, &faulted_ops, &clean_wire, &faulted_wire)
        );
    }

    let mut rt = SimRuntime::try_new(sim_cfg(2, faults)).expect("valid config");
    let a = rt.alloc(BYTES);
    let cost = KernelCost {
        flops: 1e6,
        bytes_read: BYTES,
        bytes_written: BYTES,
    };
    for _ in 0..CHAIN {
        rt.launch("inc", cost, vec![CeArg::read_write(a, BYTES)]);
    }
    let sim_events = rt.sched_trace().events().to_vec();

    let lq = quarantine_of(&local_events).expect("local quarantined");
    let sq = quarantine_of(&sim_events).expect("sim quarantined");
    assert_eq!(lq, sq, "quarantine identity diverged on the chain");
    assert!(has_replay(&local_events), "local trace missing replay");
    assert!(has_replay(&sim_events), "sim trace missing replay");
    let (dead, at_ce) = lq;
    for (dag, &assigned) in local_assign.iter().enumerate().skip(at_ce) {
        assert_ne!(assigned, Some(dead), "local CE {dag} on dead node");
        assert_ne!(
            rt.node_assignment(dag).and_then(|l| l.worker_index()),
            Some(dead),
            "sim CE {dag} on dead node"
        );
    }
}

/// Randomized check: bit-identical local results + same victim in the sim.
fn check_random(ops: &[(u8, u8, u8)], kill_at: usize, workers: usize) {
    let kernels = kernelc::compile(SRC).unwrap();
    let write_k = Arc::new(kernels[0].clone());
    let addinto = Arc::new(kernels[1].clone());
    let scale = Arc::new(kernels[2].clone());

    let run_local = |faults: FaultPlan| {
        let mut rt = LocalRuntime::try_new(local_cfg(workers, faults)).expect("spawn workers");
        let arrays: Vec<_> = (0..3).map(|_| rt.alloc_f32(N)).collect();
        for &(a, b, kind) in ops {
            let (a, b) = (arrays[a as usize], arrays[b as usize]);
            match kind {
                0 => rt.launch(
                    &write_k,
                    4,
                    64,
                    vec![
                        LocalArg::Buf(a),
                        LocalArg::F32(3.5),
                        LocalArg::I32(N as i32),
                    ],
                ),
                1 if a != b => rt.launch(
                    &addinto,
                    4,
                    64,
                    vec![LocalArg::Buf(b), LocalArg::Buf(a), LocalArg::I32(N as i32)],
                ),
                _ => rt.launch(
                    &scale,
                    4,
                    64,
                    vec![LocalArg::Buf(a), LocalArg::I32(N as i32)],
                ),
            }
            .unwrap();
        }
        rt.synchronize().unwrap();
        let events = rt.sched_trace().events().to_vec();
        let outs: Vec<Vec<f32>> = arrays.iter().map(|&x| rt.read_f32(x).unwrap()).collect();
        let ops = rt.op_log().to_vec();
        rt.refresh_wire_metrics();
        let wire = rt.metrics().wire.clone();
        (outs, events, ops, wire)
    };

    let (clean, _, clean_ops, clean_wire) = run_local(FaultPlan::none());
    let (faulted, local_events, faulted_ops, faulted_wire) =
        run_local(FaultPlan::kill_at_ce(kill_at));
    if clean != faulted {
        panic!(
            "random workload results diverged; {}",
            op_log_divergence(&clean_ops, &faulted_ops, &clean_wire, &faulted_wire)
        );
    }
    // (No replay assertion here: a killed CE whose inputs are all still
    // version 0 recovers from the controller's zero-state without lineage.)
    let (local_dead, _) = quarantine_of(&local_events).expect("local quarantined");

    let mut rt = SimRuntime::try_new(sim_cfg(workers, FaultPlan::kill_at_ce(kill_at)))
        .expect("valid config");
    let arrays: Vec<_> = (0..3).map(|_| rt.alloc(BYTES)).collect();
    let cost = KernelCost {
        flops: 1e6,
        bytes_read: BYTES,
        bytes_written: 0,
    };
    for &(a, b, kind) in ops {
        let args = match kind {
            0 => vec![CeArg::write(arrays[a as usize], BYTES)],
            1 if a != b => vec![
                CeArg::read(arrays[a as usize], BYTES),
                CeArg::read_write(arrays[b as usize], BYTES),
            ],
            _ => vec![CeArg::read_write(arrays[a as usize], BYTES)],
        };
        rt.launch("k", cost, args);
    }
    let (sim_dead, _) = quarantine_of(rt.sched_trace().events()).expect("sim quarantined");
    // The shared planner makes the victim deterministic across runtimes;
    // the discovery CE may differ on parallel DAGs (detection timing).
    assert_eq!(local_dead, sim_dead, "different victim across runtimes");
}

/// One seed's full differential check (runs inside a watchdog thread).
fn check_seed(seed: u64) {
    let candidates: Vec<usize> = (1..CHAIN - 1).collect();
    check_chain(FaultPlan::one_death(seed, &candidates));

    // Seeded xorshift workload, mirrored into both runtimes.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let len = (next() % 8 + 4) as usize;
    let ops: Vec<(u8, u8, u8)> = (0..len)
        .map(|_| ((next() % 3) as u8, (next() % 3) as u8, (next() % 3) as u8))
        .collect();
    let kill_at = (next() % len as u64) as usize;
    let workers = (next() % 2 + 2) as usize;
    check_random(&ops, kill_at, workers);
}

/// Where the `grout-workerd` binary lives: `GROUT_WORKERD` env override,
/// else a sibling of this executable (both land in the same target dir).
/// The position-independent chain kernel every TCP differential runs:
/// `a[i] += 1.0` is the same arithmetic on every worker, so placement
/// changes (faults, elastic membership) can never change the bits.
fn inc_kernel() -> Arc<kernelc::CompiledKernel> {
    Arc::new(
        kernelc::compile(
            "__global__ void inc(float* a, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { a[i] = a[i] + 1.0; }
            }",
        )
        .unwrap()[0]
            .clone(),
    )
}

fn workerd_path() -> std::path::PathBuf {
    if let Some(p) = std::env::var_os("GROUT_WORKERD") {
        return p.into();
    }
    let mut p = std::env::current_exe().expect("current exe");
    p.set_file_name("grout-workerd");
    p
}

/// Number of `ph:"X"` spans with category `cat` on process `pid` in a
/// Chrome trace value (the merged-trace schema check, in-process).
fn count_spans(trace: &serde_json::Value, pid: u64, cat: &str) -> usize {
    use serde_json::Value;
    let Value::Object(top) = trace else { return 0 };
    let Some(Value::Array(events)) = top.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v)
    else {
        return 0;
    };
    events
        .iter()
        .filter(|ev| {
            let Value::Object(fields) = ev else {
                return false;
            };
            let field = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
            field("ph") == Some(&Value::String("X".into()))
                && field("pid") == Some(&Value::U64(pid))
                && field("cat") == Some(&Value::String(cat.into()))
        })
        .count()
}

/// Process-level chaos: SIGKILL a real `grout-workerd` mid-run.
///
/// The victim is the worker holding the only fresh copy of the array (the
/// one that ran the last pre-kill CE), so recovery *must* lineage-replay —
/// the controller's master copy is stale. The post-recovery result must be
/// bit-identical to a clean in-process run of the same chain.
///
/// The run is traced: the victim's pre-death execute spans were streamed
/// to the controller before the SIGKILL (the engine flushes telemetry
/// ahead of every completion), so they must survive in the merged trace
/// even though the worker is gone.
///
/// With `--metrics-out`, the artifact carries the TCP run's *measured*
/// bandwidth matrix next to a net-sim run's *modeled* one (`bw_source`
/// distinguishes them), so the two can be compared in one file.
fn check_kill_process(art: ArtifactArgs) {
    use grout::{TcpExt, WorkerSpec};

    let inc = inc_kernel();
    let n = N as i32;
    let pre = CHAIN / 2;
    let post = CHAIN - pre;

    // Clean in-process reference.
    let expected: Vec<u32> = {
        let mut rt = LocalRuntime::try_new(local_cfg(2, FaultPlan::none())).expect("spawn");
        let a = rt.alloc_f32(N);
        rt.write_f32(a, |v| {
            v.iter_mut().enumerate().for_each(|(i, x)| *x = i as f32)
        })
        .unwrap();
        for _ in 0..CHAIN {
            rt.launch(&inc, 4, 64, vec![LocalArg::Buf(a), LocalArg::I32(n)])
                .unwrap();
        }
        rt.synchronize().unwrap();
        rt.read_f32(a)
            .unwrap()
            .iter()
            .map(|x| x.to_bits())
            .collect()
    };

    // Distributed victim run, traced: worker-side spans stream back over
    // the wire and land in this tracer clock-aligned.
    let tracer = Shared::new(ChromeTracer::new());
    let workerd = workerd_path();
    let mut rt = Runtime::builder()
        .telemetry(tracer.telemetry())
        .tcp(vec![
            WorkerSpec::Spawn(workerd.clone()),
            WorkerSpec::Spawn(workerd),
        ])
        .build()
        .expect("spawn grout-workerd pair");
    let a = rt.alloc_f32(N);
    rt.write_f32(a, |v| {
        v.iter_mut().enumerate().for_each(|(i, x)| *x = i as f32)
    })
    .unwrap();
    for _ in 0..pre {
        rt.launch(&inc, 4, 64, vec![LocalArg::Buf(a), LocalArg::I32(n)])
            .unwrap();
    }
    rt.synchronize().unwrap();

    // dag 0 is the host write; the last pre-kill inc is dag `pre`. Its
    // worker holds the only fresh copy of `a`.
    let victim = rt
        .node_assignment(pre)
        .and_then(|l| l.worker_index())
        .expect("chain CE assigned to a worker");
    let pid = rt.worker_pid(victim).expect("spawned worker has a pid");
    let status = std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "SIGKILL failed");

    for _ in 0..post {
        rt.launch(&inc, 4, 64, vec![LocalArg::Buf(a), LocalArg::I32(n)])
            .unwrap();
    }
    rt.synchronize().expect("recovery heals the run");
    let got: Vec<u32> = rt
        .read_f32(a)
        .unwrap()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    assert_eq!(expected, got, "post-recovery results diverged");

    // The faulted-chain counters: quarantine recorded, lost data replayed.
    let events = rt.sched_trace().events().to_vec();
    let (dead, _) = quarantine_of(&events).expect("quarantine event recorded");
    assert_eq!(dead, victim, "quarantined a different worker than killed");
    assert!(
        has_replay(&events),
        "no lineage replay despite orphaned data"
    );
    assert!(rt.metrics().quarantines >= 1);
    assert!(rt.metrics().replays >= 1);
    assert!(rt.is_quarantined(victim));
    assert_eq!(rt.healthy_workers(), 1);
    assert_eq!(rt.metrics().bw_source, "measured");

    // The dead worker's pre-death telemetry survives: its execute spans
    // were flushed to the controller before the kill, so the merged trace
    // keeps its lane (pid = worker index + 1) even though the process is
    // gone and its post-kill work was replayed elsewhere.
    let trace = tracer.lock().to_json_value();
    let victim_execs = count_spans(&trace, (victim + 1) as u64, "execute");
    assert!(
        victim_execs >= 1,
        "merged trace lost the killed worker's pre-death execute spans"
    );
    let survivor = 1 - victim;
    assert!(
        count_spans(&trace, (survivor + 1) as u64, "execute") >= 1,
        "merged trace missing the surviving worker's execute spans"
    );

    if art.wanted() {
        // Measured (TCP probe round) vs modeled (net-sim probe) matrices,
        // side by side in one artifact.
        let mut sim = SimRuntime::try_new(SimConfig::paper_grout(
            2,
            PolicyKind::MinTransferTime(ExplorationLevel::Medium),
        ))
        .expect("valid config");
        let a = sim.alloc(BYTES);
        let cost = KernelCost {
            flops: 1e6,
            bytes_read: BYTES,
            bytes_written: BYTES,
        };
        for _ in 0..CHAIN {
            sim.launch("inc", cost, vec![CeArg::read_write(a, BYTES)]);
        }
        art.write_metrics(&[
            ("dist-tcp-measured", rt.metrics()),
            ("sim-net-modeled", sim.metrics()),
        ]);
    }
}

/// In-process network-chaos differential for one seed: a deterministic
/// omission-fault schedule (drops, duplicates, delays, severs,
/// partitions) below the reliable-session model must leave the run
/// *bit-identical* — same results, same planner state digest, same op
/// log — with zero quarantines. Modeled severs/partitions count as
/// session resumes in the wire stats.
fn check_net_seed(seed: u64) {
    let kernels = kernelc::compile(SRC).unwrap();
    let write_k = Arc::new(kernels[0].clone());
    let scale = Arc::new(kernels[2].clone());
    let workers = (seed % 2 + 2) as usize;

    let run = |plan: NetFaultPlan| {
        let mut rt = Runtime::builder()
            .workers(workers)
            .net_faults(plan)
            .build_local()
            .expect("spawn workers");
        let a = rt.alloc_f32(N);
        let b = rt.alloc_f32(N);
        rt.launch(
            &write_k,
            4,
            64,
            vec![
                LocalArg::Buf(a),
                LocalArg::F32(2.0),
                LocalArg::I32(N as i32),
            ],
        )
        .unwrap();
        rt.launch(
            &write_k,
            4,
            64,
            vec![
                LocalArg::Buf(b),
                LocalArg::F32(7.0),
                LocalArg::I32(N as i32),
            ],
        )
        .unwrap();
        for _ in 0..CHAIN {
            rt.launch(
                &scale,
                4,
                64,
                vec![LocalArg::Buf(a), LocalArg::I32(N as i32)],
            )
            .unwrap();
            rt.launch(
                &scale,
                4,
                64,
                vec![LocalArg::Buf(b), LocalArg::I32(N as i32)],
            )
            .unwrap();
        }
        rt.synchronize().unwrap();
        rt.refresh_wire_metrics();
        let outs: Vec<Vec<u32>> = [a, b]
            .iter()
            .map(|&x| {
                rt.read_f32(x)
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();
        (
            outs,
            rt.planner().state_digest(),
            rt.op_log().to_vec(),
            rt.metrics().wire.clone(),
            rt.metrics().quarantines,
        )
    };

    let plan = NetFaultPlan::seeded(seed, workers, 48, 0.25);
    let resumable = plan
        .events()
        .iter()
        .any(|e| e.kind.name() == "sever" || e.kind.name() == "partition");
    let (clean, clean_digest, clean_ops, clean_wire, _) = run(NetFaultPlan::none());
    let (chaotic, chaos_digest, chaos_ops, chaos_wire, quarantines) = run(plan);
    assert_eq!(quarantines, 0, "network chaos must never quarantine");
    if clean != chaotic || clean_digest != chaos_digest {
        panic!(
            "net chaos diverged (digest {clean_digest:016x} vs {chaos_digest:016x}); {}",
            op_log_divergence(&clean_ops, &chaos_ops, &clean_wire, &chaos_wire)
        );
    }
    // Op-for-op equality modulo completion-arrival order (two clean runs
    // already differ there — worker threads race to finish; the planner's
    // completed-set is order-insensitive and the digest proves it).
    let (c_plan, c_done) = split_completions(&clean_ops);
    let (x_plan, x_done) = split_completions(&chaos_ops);
    assert_eq!(
        c_plan, x_plan,
        "planning ops must match op-for-op under pure omission faults"
    );
    assert_eq!(c_done, x_done, "completed-CE sets diverged");
    let resumes: u64 = chaos_wire.iter().map(|w| w.resumes).sum();
    if resumable {
        assert!(
            resumes >= 1,
            "plan had severs/partitions but no resume was counted"
        );
    }
}

/// Splits an op log into its deterministic planning prefix-order (everything
/// but `MarkCompleted`) and the sorted set of completed dag indices.
/// Completion *arrival* order races between worker threads, so even two
/// clean runs interleave `MarkCompleted` differently; the planner's
/// completed-set is order-insensitive, so comparing it as a sorted set is
/// exactly as strong as the digest check that accompanies it.
fn split_completions(ops: &[PlannerOp]) -> (Vec<PlannerOp>, Vec<usize>) {
    let mut plan = Vec::new();
    let mut done = Vec::new();
    for op in ops {
        match op {
            PlannerOp::MarkCompleted { dag_index } => done.push(*dag_index),
            other => plan.push(other.clone()),
        }
    }
    done.sort_unstable();
    (plan, done)
}

/// Planner-op equality modulo physically non-deterministic payloads: the
/// measured link matrices of two separate TCP runs differ in the raw
/// bandwidth floats (and suspect/reinstate pairs are timing artifacts
/// that net out), so membership and placement ops are compared in order
/// and completions as a set.
fn assert_ops_equivalent(clean: &[PlannerOp], faulted: &[PlannerOp], what: &str) {
    let strip = |ops: &[PlannerOp]| -> Vec<PlannerOp> {
        ops.iter()
            .filter(|o| {
                !matches!(
                    o,
                    PlannerOp::ReprobeLinks { .. }
                        | PlannerOp::Suspect { .. }
                        | PlannerOp::Reinstate { .. }
                )
            })
            .cloned()
            .collect()
    };
    let (c_plan, c_done) = split_completions(&strip(clean));
    let (f_plan, f_done) = split_completions(&strip(faulted));
    assert_eq!(
        c_plan, f_plan,
        "{what}: op logs diverged beyond link-probe/suspicion noise"
    );
    assert_eq!(c_done, f_done, "{what}: completed-CE sets diverged");
}

/// One TCP chain over a spawned workerd pair with `plan` injected at the
/// socket layer. Returns everything the differentials compare. The fault
/// knobs are deliberately aggressive (20ms beats, 3-beat staleness) so a
/// CI-sized run crosses the staleness window quickly; the reconnect
/// window stays wide so omission faults never escalate to quarantine.
#[allow(clippy::type_complexity)]
fn run_dist_chain(
    plan: NetFaultPlan,
    mid_run: impl FnOnce(&mut grout::DistRuntime, usize),
) -> (
    Vec<u32>,
    Vec<SchedEvent>,
    Vec<PlannerOp>,
    Vec<PeerWireStats>,
    u64,
) {
    use grout::{TcpExt, WorkerSpec};

    let inc = inc_kernel();
    let fc = grout::core::FaultConfig {
        heartbeat_ms: 20,
        stale_after_beats: 3,
        reconnect_window: SimDuration::from_millis(10_000),
        detection_timeout: SimDuration::from_millis(100),
        ..Default::default()
    };
    let workerd = workerd_path();
    let mut rt = Runtime::builder()
        .fault_config(fc)
        .net_faults(plan)
        .tcp(vec![
            WorkerSpec::Spawn(workerd.clone()),
            WorkerSpec::Spawn(workerd),
        ])
        .build()
        .expect("spawn grout-workerd pair");
    let n = N as i32;
    let a = rt.alloc_f32(N);
    rt.write_f32(a, |v| {
        v.iter_mut().enumerate().for_each(|(i, x)| *x = i as f32)
    })
    .unwrap();
    let pre = CHAIN / 2;
    for _ in 0..pre {
        rt.launch(&inc, 4, 64, vec![LocalArg::Buf(a), LocalArg::I32(n)])
            .unwrap();
    }
    rt.synchronize().unwrap();
    mid_run(&mut rt, pre);
    for _ in 0..(CHAIN - pre) {
        rt.launch(&inc, 4, 64, vec![LocalArg::Buf(a), LocalArg::I32(n)])
            .unwrap();
    }
    rt.synchronize().expect("chaos run completes");
    let bits: Vec<u32> = rt
        .read_f32(a)
        .unwrap()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    rt.refresh_wire_metrics();
    (
        bits,
        rt.sched_trace().events().to_vec(),
        rt.op_log().to_vec(),
        rt.metrics().wire.clone(),
        rt.metrics().quarantines,
    )
}

/// TCP sever differential: worker 0's controller socket is cut
/// mid-stream by the injected plan; the session must resume on a fresh
/// socket, replay unacked frames, and leave the run bit-identical with
/// zero quarantines and ≥1 counted resume.
fn check_net_sever() {
    let (clean, _, clean_ops, clean_wire, _) = run_dist_chain(NetFaultPlan::none(), |_, _| {});
    let (severed, events, sev_ops, sev_wire, quarantines) =
        run_dist_chain(NetFaultPlan::sever_at(0, 3), |_, _| {});
    assert_eq!(quarantines, 0, "a resumable sever must not quarantine");
    assert!(
        quarantine_of(&events).is_none(),
        "quarantine event recorded for a resumable sever"
    );
    if clean != severed {
        panic!(
            "TCP sever run diverged from clean run; {}",
            op_log_divergence(&clean_ops, &sev_ops, &clean_wire, &sev_wire)
        );
    }
    assert_ops_equivalent(&clean_ops, &sev_ops, "tcp-sever");
    let resumes: u64 = sev_wire.iter().map(|w| w.resumes).sum();
    assert!(resumes >= 1, "sever did not go through the resume path");
}

/// TCP SIGSTOP differential: one workerd is stopped past the staleness
/// window (the controller suspects it and severs the socket) and
/// continued inside the reconnect window (the resume reinstates it).
/// No quarantine, ≥1 resume, suspect/reinstate visible in the schedule
/// trace, bit-identical results.
fn check_sigstop() {
    let signal_worker = |rt: &grout::DistRuntime, w: usize, sig: &str| {
        let pid = rt.worker_pid(w).expect("spawned worker has a pid");
        let ok = std::process::Command::new("kill")
            .args([sig, &pid.to_string()])
            .status()
            .expect("kill runs")
            .success();
        assert!(ok, "kill {sig} failed");
    };
    let (clean, _, clean_ops, clean_wire, _) = run_dist_chain(NetFaultPlan::none(), |_, _| {});
    let (stopped, events, stop_ops, stop_wire, quarantines) =
        run_dist_chain(NetFaultPlan::none(), |rt, pre| {
            let victim = rt
                .node_assignment(pre)
                .and_then(|l| l.worker_index())
                .expect("chain CE assigned to a worker");
            signal_worker(rt, victim, "-STOP");
            let pid = rt.worker_pid(victim).expect("pid");
            // SIGCONT from a helper thread while the controller is blocked
            // in synchronize discovering the staleness.
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(500));
                let _ = std::process::Command::new("kill")
                    .args(["-CONT", &pid.to_string()])
                    .status();
            });
        });
    assert_eq!(
        quarantines, 0,
        "a stopped-then-continued worker must not quarantine"
    );
    assert!(quarantine_of(&events).is_none());
    assert!(
        events
            .iter()
            .any(|e| matches!(e, SchedEvent::Suspected { .. })),
        "staleness never promoted the worker to Suspected"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, SchedEvent::Reinstated { .. })),
        "the resumed worker was never reinstated"
    );
    if clean != stopped {
        panic!(
            "SIGSTOP run diverged from clean run; {}",
            op_log_divergence(&clean_ops, &stop_ops, &clean_wire, &stop_wire)
        );
    }
    assert_ops_equivalent(&clean_ops, &stop_ops, "sigstop");
    let resumes: u64 = stop_wire.iter().map(|w| w.resumes).sum();
    assert!(resumes >= 1, "no session resume despite the severed socket");
}

/// Elastic membership differential: a third workerd joins the live
/// two-worker chain mid-run, takes CE placements on a scratch DAG, and a
/// founding worker then departs cleanly. The scratch work never touches
/// the chain buffer, so the run must stay bit-identical with the static
/// two-worker run — and a clean Leave is a planned membership change,
/// not a fault: zero quarantines, zero session resumes.
fn check_elastic() {
    let (clean, _, _, _, _) = run_dist_chain(NetFaultPlan::none(), |_, _| {});
    let (elastic, events, _, wire, quarantines) = run_dist_chain(NetFaultPlan::none(), |rt, _| {
        let joined = rt
            .join(grout::WorkerSpec::Spawn(workerd_path()))
            .expect("mid-run join");
        assert_eq!(joined, 2, "newcomer takes the next index");
        assert_eq!(rt.healthy_workers(), 3, "mesh grew to three");
        // Scratch DAG over the grown mesh: the newcomer must receive
        // CE placements before anyone departs.
        let inc = inc_kernel();
        let s = rt.alloc_f32(N);
        rt.write_f32(s, |v| v.fill(0.0)).unwrap();
        for _ in 0..3 {
            rt.launch(&inc, 4, 64, vec![LocalArg::Buf(s), LocalArg::I32(N as i32)])
                .unwrap();
        }
        rt.synchronize().expect("grown mesh completes scratch work");
        let placed = (0..64)
            .filter_map(|i| rt.node_assignment(i))
            .filter(|l| l.worker_index() == Some(joined))
            .count();
        assert!(placed >= 1, "joined worker never received a CE placement");
        rt.leave(0).expect("clean leave of a founding worker");
        assert!(!rt.is_quarantined(0), "clean leave must not quarantine");
        assert_eq!(rt.healthy_workers(), 2, "departure rebalances to two");
    });
    assert_eq!(quarantines, 0, "elastic membership must not quarantine");
    assert!(
        quarantine_of(&events).is_none(),
        "quarantine event recorded for a planned membership change"
    );
    let resumes: u64 = wire.iter().map(|w| w.resumes).sum();
    assert_eq!(resumes, 0, "clean join/leave must not trip session resume");
    assert_eq!(
        clean, elastic,
        "elastic run diverged bitwise from the static two-worker run"
    );
}

/// One instrumented faulted sim chain (kill at CE 2, two workers): the
/// exported metrics carry non-zero fault/retry/quarantine counters and the
/// trace shows the recovery replanning.
fn emit_artifacts(art: &ArtifactArgs) {
    if !art.wanted() {
        return;
    }
    let tracer = Shared::new(ChromeTracer::new());
    let mut rt = Runtime::builder()
        .sim_config(sim_cfg(2, FaultPlan::kill_at_ce(2)))
        .telemetry(tracer.telemetry())
        .build_sim()
        .expect("valid config");
    let a = rt.alloc(BYTES);
    let cost = KernelCost {
        flops: 1e6,
        bytes_read: BYTES,
        bytes_written: BYTES,
    };
    for _ in 0..CHAIN {
        rt.launch("inc", cost, vec![CeArg::read_write(a, BYTES)]);
    }
    art.write_trace(&tracer.lock());
    art.write_metrics(&[("chaos-sim-chain-kill-at-2", rt.metrics())]);
}

/// Runs `f` under a watchdog; returns true on PASS. A hang is a FAIL and
/// kills the whole harness (a wedged recovery must never hang CI).
fn watchdog(label: &str, f: impl FnOnce() + Send + 'static) -> bool {
    let h = std::thread::spawn(f);
    let start = std::time::Instant::now();
    while !h.is_finished() {
        if start.elapsed().as_secs() > 60 {
            println!("{label}  FAIL (watchdog: recovery deadlock)");
            std::process::exit(1);
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    match h.join() {
        Ok(()) => {
            println!("{label}  PASS");
            true
        }
        Err(e) => {
            let msg = e
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| e.downcast_ref::<&str>().copied())
                .unwrap_or("panic");
            println!("{label}  FAIL: {msg}");
            false
        }
    }
}

fn main() {
    let mut seeds = 8u64;
    let args: Vec<String> = std::env::args().collect();
    let art = ArtifactArgs::parse(&args);
    if let Some(i) = args.iter().position(|a| a == "--seeds") {
        seeds = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .expect("--seeds takes a number");
    }

    if args.iter().any(|a| a == "--kill-process") {
        let art = art.clone();
        if !watchdog("kill-process", move || check_kill_process(art)) {
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "--net-sever") {
        if !watchdog("net-sever", check_net_sever) {
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "--sigstop") {
        if !watchdog("sigstop", check_sigstop) {
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "--elastic") {
        if !watchdog("elastic", check_elastic) {
            std::process::exit(1);
        }
        return;
    }

    if let Some(i) = args.iter().position(|a| a == "--net-seeds") {
        let n: u64 = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .expect("--net-seeds takes a number");
        let mut failures = 0;
        for seed in 0..n {
            if !watchdog(&format!("net-seed {seed:>3}"), move || check_net_seed(seed)) {
                failures += 1;
            }
        }
        if failures > 0 {
            println!("{failures}/{n} net seeds failed");
            std::process::exit(1);
        }
        println!("all {n} net seeds passed");
        return;
    }

    let mut failures = 0;
    for seed in 0..seeds {
        if !watchdog(&format!("seed {seed:>3}"), move || check_seed(seed)) {
            failures += 1;
        }
    }
    if failures > 0 {
        println!("{failures}/{seeds} seeds failed");
        std::process::exit(1);
    }
    println!("all {seeds} seeds passed");
    emit_artifacts(&art);
}
