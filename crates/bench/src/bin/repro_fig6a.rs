//! Regenerates the paper's fig6a data series.
//!
//! With `--trace-out` / `--metrics-out` it also re-runs the figure's
//! representative point (CG at 96 GB, single oversubscribed node)
//! instrumented and writes the artifacts.

use grout::core::SimConfig;
use grout::workloads::{gb, ConjugateGradient};
use grout_bench::{emit_representative, ArtifactArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    grout_bench::print_figure(&grout_bench::fig6a());
    emit_representative(
        &ArtifactArgs::parse(&args),
        "cg-96gb-single",
        &ConjugateGradient::default(),
        SimConfig::grcuda_baseline(),
        gb(96),
    );
}
