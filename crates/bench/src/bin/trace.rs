//! Per-CE execution trace of a workload on a chosen deployment.
//!
//! Usage: `trace <bs|mle|cg|mv|mv-mono> <size_gb> <single|grout[:policy]> [--plans]`
//!        `      [--trace-out <path>] [--metrics-out <path>]`
//!   policy: rr | vs | mts-low|mts-med|mts-high | mtt-low|mtt-med|mtt-high
//!   --plans: also dump the scheduler's decision record per CE as JSON
//!            lines (from the `SchedTrace` both runtimes feed)
//!   --trace-out: write a Chrome trace_event JSON of the run (Perfetto)
//!   --metrics-out: write the metrics registry as JSON (or CSV for .csv)

use grout_bench::ArtifactArgs;

use grout::core::*;
use grout::workloads::*;
use serde::Serialize;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wl = args.get(1).map(String::as_str).unwrap_or("cg");
    let size: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);
    let deploy = args.get(3).map(String::as_str).unwrap_or("single");

    let workload: Box<dyn SimWorkload> = match wl {
        "bs" => Box::new(BlackScholes::default()),
        "mle" => Box::new(MlEnsemble::default()),
        "cg" => Box::new(ConjugateGradient::default()),
        "mv" => Box::new(MatVec::default()),
        "mv-mono" => Box::new(MatVec::monolithic()),
        other => panic!("unknown workload {other}"),
    };

    let cfg = if deploy == "single" {
        SimConfig::grcuda_baseline()
    } else {
        let policy = match deploy.split(':').nth(1).unwrap_or("vs") {
            "rr" => PolicyKind::RoundRobin,
            "vs" => PolicyKind::VectorStep(workload.tuned_vector()),
            "mts-low" => PolicyKind::MinTransferSize(ExplorationLevel::Low),
            "mts-med" => PolicyKind::MinTransferSize(ExplorationLevel::Medium),
            "mts-high" => PolicyKind::MinTransferSize(ExplorationLevel::High),
            "mtt-low" => PolicyKind::MinTransferTime(ExplorationLevel::Low),
            "mtt-med" => PolicyKind::MinTransferTime(ExplorationLevel::Medium),
            "mtt-high" => PolicyKind::MinTransferTime(ExplorationLevel::High),
            other => panic!("unknown policy {other}"),
        };
        SimConfig::paper_grout(2, policy)
    };

    let workers = cfg.planner.workers;
    let gpus = cfg.node.gpu_count;
    let art = ArtifactArgs::parse(&args);
    let tracer = Shared::new(ChromeTracer::new());
    let mut builder = Runtime::builder().sim_config(cfg);
    if art.trace_out.is_some() {
        builder = builder.telemetry(tracer.telemetry());
    }
    let mut rt = builder.build_sim().expect("valid config");
    workload.submit(&mut rt, gb(size));
    art.write_trace(&tracer.lock());
    art.write_metrics(&[(&format!("{wl}-{size}gb-{deploy}"), rt.metrics())]);
    println!(
        "{wl} {size}GB on {deploy}: total {:.1}s, net {:.2} GB, storms {}",
        rt.elapsed().as_secs_f64(),
        rt.stats().network_bytes as f64 / (1u64 << 30) as f64,
        rt.stats().storm_kernels
    );
    let report = validate_timeline(rt.records());
    assert!(
        report.is_valid(),
        "timeline violations: {:?}",
        report.violations
    );
    print!("device utilization:");
    for w in 0..workers {
        for d in 0..gpus {
            print!(" w{w}g{d}={:.0}%", 100.0 * report.utilization(w + 1, d));
        }
    }
    println!(" (independently replay-validated)");
    println!(
        "{:<20} {:>4} {:>4} {:>9} {:>9} {:>9} {:>8} {:>10}",
        "ce", "node", "gpu", "start", "finish", "stall", "net[GB]", "regime"
    );
    for r in rt.records() {
        println!(
            "{:<20} {:>4} {:>4} {:>9.1} {:>9.1} {:>9.1} {:>8.2} {:>10}",
            r.ce.label(),
            r.location.0,
            r.device.map(|d| d.0 as i64).unwrap_or(-1),
            r.start.as_secs_f64(),
            r.finish.as_secs_f64(),
            r.uvm_stall.as_secs_f64(),
            r.network_bytes as f64 / (1u64 << 30) as f64,
            r.regime.map(|g| format!("{g:?}")).unwrap_or_default()
        );
    }

    if args.iter().any(|a| a == "--plans") {
        println!("scheduler decisions (one JSON object per CE):");
        for plan in rt.sched_trace().plans() {
            println!("{}", serde_json::to_string(&plan.to_json_value()).unwrap());
        }
    }
}
