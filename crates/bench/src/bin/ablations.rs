//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! Each section isolates one mechanism and shows its contribution to the
//! reproduced behaviour:
//!  1. UVM prefetcher granule (2 MiB tree prefetch vs raw 64 KiB faults)
//!  2. Fault-batch service latency
//!  3. Storm knee placement (when does the cliff move?)
//!  4. `cudaMemAdvise(ReadMostly)` on the MV broadcast vector
//!  5. Peer-to-peer transfers vs controller staging
//!  6. Hierarchical vs flat (controller-managed) stream scheduling
//!
//! Run with: `cargo run --release -p grout-bench --bin ablations`
//! (add `--trace-out`/`--metrics-out` for an instrumented MV rerun)

use grout::core::{PolicyKind, SimConfig};
use grout::uvm_sim::MemAdvise;
use grout::workloads::{gb, run_workload, ConjugateGradient, MatVec, SimWorkload};
use grout_bench::{emit_representative, ArtifactArgs};

fn single_with(cfg_mut: impl FnOnce(&mut SimConfig), w: &dyn SimWorkload, size: u64) -> f64 {
    let mut cfg = SimConfig::grcuda_baseline();
    cfg_mut(&mut cfg);
    run_workload(w, cfg, size).secs()
}

fn grout_with(cfg_mut: impl FnOnce(&mut SimConfig), w: &dyn SimWorkload, size: u64) -> f64 {
    let mut cfg = SimConfig::paper_grout(2, PolicyKind::VectorStep(w.tuned_vector()));
    cfg_mut(&mut cfg);
    run_workload(w, cfg, size).secs()
}

fn main() {
    let mv = MatVec::default();
    let cg = ConjugateGradient::default();

    println!("== 1. UVM prefetcher granule (MV, single node) ==");
    for (label, granule) in [
        ("2 MiB tree prefetch", 2u64 << 20),
        ("64 KiB (prefetch off)", 64 << 10),
    ] {
        let t64 = single_with(|c| c.uvm.prefetch_granule_bytes = granule, &mv, gb(64));
        let t32 = single_with(|c| c.uvm.prefetch_granule_bytes = granule, &mv, gb(32));
        println!(
            "  {label:<24} t(32GB)={t32:>8.1}s  t(64GB)={t64:>8.1}s  step={:.1}x",
            t64 / t32
        );
    }
    println!("  (without the tree prefetcher even mild oversubscription pays per-page faults)");
    println!();

    println!("== 2. Fault-batch service latency (MV, 96 GB single node) ==");
    for (label, us) in [("15 us", 15u64), ("30 us (V100 cal.)", 30), ("60 us", 60)] {
        let t = single_with(
            |c| c.uvm.fault_batch_latency = grout::desim::SimDuration::from_micros(us),
            &mv,
            gb(96),
        );
        println!("  {label:<20} t(96GB) = {t:>9.1}s");
    }
    println!();

    println!("== 3. Storm knee placement (CG cliff location, single node) ==");
    for knee in [1.5f64, 2.25, 2.8, 3.5] {
        let t64 = single_with(|c| c.uvm.stream_storm_knee = knee, &cg, gb(64));
        let t96 = single_with(|c| c.uvm.stream_storm_knee = knee, &cg, gb(96));
        let t32 = single_with(|c| c.uvm.stream_storm_knee = knee, &cg, gb(32));
        println!(
            "  knee {knee:<5} step(32->64)={:>7.1}x  step(64->96)={:>7.1}x",
            t64 / t32,
            t96 / t64
        );
    }
    println!("  (the knee sets where the cliff lands; 2.8 reproduces the paper's 2-3x window)");
    println!();

    println!("== 4. cudaMemAdvise(ReadMostly) on the MV broadcast vector ==");
    let plain = run_workload(&mv, SimConfig::grcuda_baseline(), gb(96)).secs();
    let hinted = run_workload(
        &MatVec {
            x_advise: MemAdvise::ReadMostly,
            ..MatVec::default()
        },
        SimConfig::grcuda_baseline(),
        gb(96),
    )
    .secs();
    println!("  no hint        : {plain:>9.1}s");
    println!(
        "  ReadMostly on x: {hinted:>9.1}s   ({:.2}x)",
        plain / hinted
    );
    println!("  (the hint removes the vector's refaults but the matrix-side storm");
    println!("   dominates: hand-tuning one array is not a general fix — the paper's");
    println!("   argument for attacking the root cause instead)");
    println!();

    println!("== 5. Peer-to-peer vs controller staging ==");
    // A producer/consumer pipeline bouncing a 4 GB intermediate between the
    // two workers, 8 times (each hop is a worker-to-worker movement).
    let pipeline = |p2p: bool| {
        let mut cfg = SimConfig::paper_grout(2, PolicyKind::RoundRobin);
        cfg.planner.p2p_enabled = p2p;
        let mut rt = grout::core::SimRuntime::try_new(cfg).expect("valid config");
        let a = rt.alloc(4 << 30);
        let cost = grout::core::KernelCost {
            flops: 1e9,
            bytes_read: 4 << 30,
            bytes_written: 4 << 30,
        };
        for _ in 0..8 {
            rt.launch(
                "stage",
                cost,
                vec![grout::core::CeArg::read_write(a, 4 << 30)],
            );
        }
        rt.elapsed().as_secs_f64()
    };
    let (p2p, staged) = (pipeline(true), pipeline(false));
    println!("  P2P enabled : {p2p:>9.1}s");
    println!(
        "  staged      : {staged:>9.1}s   ({:.2}x worse)",
        staged / p2p
    );
    println!("  (CG at 96 GB moves only small vectors per iteration, so there the");
    println!(
        "   difference is negligible: {:.1}s vs {:.1}s)",
        grout_with(|_| {}, &cg, gb(96)),
        grout_with(|c| c.planner.p2p_enabled = false, &cg, gb(96))
    );
    println!();

    println!("== 7. Hand-tuned prefetching vs transparent scale-out ==");
    // The paper's two competing remedies (Section I): instrument the CPU
    // code with cudaMemPrefetchAsync, or remove the oversubscription by
    // distributing. Prefetch helps streamed workloads somewhat and gathers
    // barely; scale-out removes the cliff outright.
    let pairs: [(&dyn SimWorkload, &str); 2] = [(&mv, "MV"), (&cg, "CG")];
    for (wl, name) in pairs {
        let plain = single_with(|_| {}, wl, gb(96));
        let tuned = single_with(|c| c.hand_tuned_prefetch = true, wl, gb(96));
        let scaled = grout_with(|_| {}, wl, gb(96));
        println!(
            "  {name}: plain UVM {plain:>8.1}s | +prefetch {tuned:>8.1}s ({:.2}x) | 2-node GrOUT {scaled:>7.1}s ({:.1}x)",
            plain / tuned,
            plain / scaled
        );
    }
    println!();

    println!("== 8. Eviction policy: LRU vs random victim (CG, 64 GB single node) ==");
    for (label, policy) in [
        ("LRU (driver default)", grout::uvm_sim::EvictionPolicy::Lru),
        ("random victim", grout::uvm_sim::EvictionPolicy::Random),
    ] {
        let t = single_with(|c| c.uvm.eviction = policy, &cg, gb(64));
        println!("  {label:<22} t(64GB) = {t:>8.1}s");
    }
    println!("  (random eviction loses the recency protection of hot vectors)");
    println!();

    println!("== 9. Interconnect what-if: PCIe vs NVLink migration (MV, single node) ==");
    for (label, spec) in [
        (
            "PCIe gen3 (~12 GB/s)",
            grout::gpu_sim::DeviceSpec::v100_16gb(),
        ),
        (
            "NVLink2 (~40 GB/s)",
            grout::gpu_sim::DeviceSpec::v100_nvlink(),
        ),
    ] {
        let t96 = single_with(|c| c.node.gpu = spec.clone(), &mv, gb(96));
        let t64 = single_with(|c| c.node.gpu = spec.clone(), &mv, gb(64));
        println!(
            "  {label:<22} t(64GB)={t64:>7.1}s  t(96GB)={t96:>8.1}s  step={:.0}x",
            t96 / t64
        );
    }
    println!("  (a faster fabric shrinks the cliff but cannot remove it: fault-service");
    println!("   latency, not bandwidth, dominates the storm — scale-out still wins)");
    println!();

    println!("== 6. Hierarchical vs flat stream scheduling (controller overhead) ==");
    for workers in [2usize, 8, 32] {
        let mk = |flat: bool| {
            let mut cfg = SimConfig::paper_grout(workers, PolicyKind::RoundRobin);
            cfg.planner.flat_scheduling = flat;
            let mut rt = grout::core::SimRuntime::try_new(cfg).expect("valid config");
            let a = rt.alloc(1 << 20);
            for _ in 0..64 {
                rt.launch(
                    "k",
                    grout::core::KernelCost {
                        flops: 1e6,
                        bytes_read: 1 << 20,
                        bytes_written: 0,
                    },
                    vec![grout::core::CeArg::read_write(a, 1 << 20)],
                );
            }
            rt.stats().sched_overhead.as_micros_f64() / 64.0
        };
        println!(
            "  {workers:>3} nodes: hierarchical {:>7.2} us/CE   flat {:>7.2} us/CE",
            mk(false),
            mk(true)
        );
    }
    println!("  (delegating stream choice to workers keeps the controller O(nodes), the");
    println!("   paper's Section IV-C argument)");

    let args: Vec<String> = std::env::args().collect();
    let mv2 = MatVec::default();
    emit_representative(
        &ArtifactArgs::parse(&args),
        "mv-64gb-grout2-vector-step",
        &mv2,
        SimConfig::paper_grout(2, PolicyKind::VectorStep(mv2.tuned_vector())),
        gb(64),
    );
}
