//! Regenerates the paper's fig1 data series.

fn main() {
    grout_bench::print_figure(&grout_bench::fig1());
}
