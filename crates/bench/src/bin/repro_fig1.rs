//! Regenerates the paper's fig1 data series.
//!
//! With `--trace-out` / `--metrics-out` it also re-runs the figure's
//! representative point (Black-Scholes at 64 GB, single oversubscribed
//! node) instrumented and writes the artifacts.

use grout::core::SimConfig;
use grout::workloads::{gb, BlackScholes};
use grout_bench::{emit_representative, ArtifactArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    grout_bench::print_figure(&grout_bench::fig1());
    emit_representative(
        &ArtifactArgs::parse(&args),
        "bs-64gb-single",
        &BlackScholes::default(),
        SimConfig::grcuda_baseline(),
        gb(64),
    );
}
