//! Regenerates Figure 9: controller scheduling overhead vs cluster size,
//! measured on the real policy code.

fn main() {
    let points = grout_bench::fig9();
    println!("== fig9 — controller scheduling overhead per CE [us] ==");
    let policies = [
        "round-robin",
        "vector-step",
        "min-transfer-size",
        "min-transfer-time",
    ];
    print!("{:>8}", "nodes");
    for p in policies {
        print!("{p:>20}");
    }
    println!();
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        print!("{n:>8}");
        for p in policies {
            let v = points
                .iter()
                .find(|q| q.policy == p && q.nodes == n)
                .map(|q| q.micros_per_ce)
                .unwrap_or(f64::NAN);
            print!("{v:>20.3}");
        }
        println!();
    }
}
