//! Regenerates Figure 9: controller scheduling overhead vs cluster size,
//! measured on the real policy code.
//!
//! With `--trace-out` / `--metrics-out` it also re-runs a representative
//! two-node round-robin CG point instrumented (the plan-latency stat in
//! the metrics dump is the figure's per-CE overhead) and writes the
//! artifacts.

use grout::workloads::{gb, ConjugateGradient};
use grout::PolicyKind;
use grout_bench::{emit_representative, grout_two_nodes, ArtifactArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let points = grout_bench::fig9();
    println!("== fig9 — controller scheduling overhead per CE [us] ==");
    let policies = [
        "round-robin",
        "vector-step",
        "min-transfer-size",
        "min-transfer-time",
    ];
    print!("{:>8}", "nodes");
    for p in policies {
        print!("{p:>20}");
    }
    println!();
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        print!("{n:>8}");
        for p in policies {
            let v = points
                .iter()
                .find(|q| q.policy == p && q.nodes == n)
                .map(|q| q.micros_per_ce)
                .unwrap_or(f64::NAN);
            print!("{v:>20.3}");
        }
        println!();
    }
    emit_representative(
        &ArtifactArgs::parse(&args),
        "cg-96gb-grout2-round-robin",
        &ConjugateGradient::default(),
        grout_two_nodes(PolicyKind::RoundRobin),
        gb(96),
    );
}
