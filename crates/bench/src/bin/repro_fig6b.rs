//! Regenerates the paper's fig6b data series.
//!
//! With `--trace-out` / `--metrics-out` it also re-runs the figure's
//! representative point (CG at 96 GB on two GrOUT nodes, tuned
//! vector-step) instrumented and writes the artifacts.

use grout::workloads::{gb, ConjugateGradient, SimWorkload};
use grout::PolicyKind;
use grout_bench::{emit_representative, grout_two_nodes, ArtifactArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    grout_bench::print_figure(&grout_bench::fig6b());
    let cg = ConjugateGradient::default();
    emit_representative(
        &ArtifactArgs::parse(&args),
        "cg-96gb-grout2-vector-step",
        &cg,
        grout_two_nodes(PolicyKind::VectorStep(cg.tuned_vector())),
        gb(96),
    );
}
