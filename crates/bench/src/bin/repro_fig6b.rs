//! Regenerates the paper's fig6b data series.

fn main() {
    grout_bench::print_figure(&grout_bench::fig6b());
}
