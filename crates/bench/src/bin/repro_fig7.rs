//! Regenerates the paper's fig7 data series.

fn main() {
    grout_bench::print_figure(&grout_bench::fig7());
}
