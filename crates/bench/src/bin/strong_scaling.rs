//! Strong scaling beyond the paper's two nodes: the 160 GB (5x) workloads
//! on 1..8 GrOUT worker nodes (the paper's Section V-F asks "is infinite
//! scale-out a definite solution?" — this shows where the returns
//! diminish: once per-GPU pressure drops below the storm knee, extra nodes
//! only add network cost).
//!
//! Run with: `cargo run --release -p grout-bench --bin strong_scaling`
//! (add `--trace-out`/`--metrics-out` for an instrumented CG/4-node rerun)

use grout::core::{PolicyKind, SimConfig};
use grout::workloads::{gb, run_workload, ConjugateGradient, MatVec, MlEnsemble, SimWorkload};
use grout_bench::{emit_representative, ArtifactArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size = gb(160);
    let workloads: Vec<Box<dyn SimWorkload>> = vec![
        Box::new(MlEnsemble::default()),
        Box::new(ConjugateGradient::default()),
        Box::new(MatVec::default()),
    ];
    println!("160 GB (5x of one node) on 1..8 GrOUT nodes, round-robin policy:");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "nodes", "MLE [s]", "CG [s]", "MV [s]"
    );
    let mut base = Vec::new();
    for nodes in [1usize, 2, 4, 8] {
        print!("{nodes:>6}");
        for (i, w) in workloads.iter().enumerate() {
            let out = run_workload(
                w.as_ref(),
                SimConfig::paper_grout(nodes, PolicyKind::RoundRobin),
                size,
            );
            if nodes == 1 {
                base.push(out.secs());
            }
            print!(
                "{:>11.1}{}",
                out.secs(),
                if out.timed_out { "*" } else { " " }
            );
            let _ = i;
        }
        println!();
    }
    println!("(* exceeded the paper's 2.5 h per-run cap)");
    println!();
    println!(
        "Once per-GPU active pressure falls under the storm knee the remaining\n\
         time is network distribution, which more nodes cannot shrink (every\n\
         byte still crosses the controller NIC once) — scale-out is a cure for\n\
         oversubscription, not a general accelerator."
    );
    emit_representative(
        &ArtifactArgs::parse(&args),
        "cg-160gb-grout4-round-robin",
        &ConjugateGradient::default(),
        SimConfig::paper_grout(4, PolicyKind::RoundRobin),
        size,
    );
}
