//! Regenerates Figure 8: policy comparison at 3x oversubscription.
//!
//! With `--trace-out` / `--metrics-out` it also re-runs a representative
//! cell (CG at 96 GB under min-transfer-size/Medium on two GrOUT nodes)
//! instrumented and writes the artifacts.

use grout::workloads::{gb, ConjugateGradient};
use grout::{ExplorationLevel, PolicyKind};
use grout_bench::{emit_representative, grout_two_nodes, ArtifactArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cells = grout_bench::fig8();
    println!("== fig8 — exec time at 96 GB (3x), normalized to round-robin (lower is better) ==");
    println!(
        "{:>8} {:>6} {:>20} {:>12} {:>12}",
        "level", "wl", "policy", "normalized", "secs"
    );
    for c in &cells {
        println!(
            "{:>8} {:>6} {:>20} {:>12.3} {:>11.1}{}",
            c.level,
            c.workload,
            c.policy,
            c.normalized,
            c.secs,
            if c.timed_out { "*" } else { " " }
        );
    }
    println!("(* exceeded the paper's 2.5 h per-run cap)");
    emit_representative(
        &ArtifactArgs::parse(&args),
        "cg-96gb-grout2-mts-medium",
        &ConjugateGradient::default(),
        grout_two_nodes(PolicyKind::MinTransferSize(ExplorationLevel::Medium)),
        gb(96),
    );
}
