//! Regenerates Figure 8: policy comparison at 3x oversubscription.

fn main() {
    let cells = grout_bench::fig8();
    println!("== fig8 — exec time at 96 GB (3x), normalized to round-robin (lower is better) ==");
    println!(
        "{:>8} {:>6} {:>20} {:>12} {:>12}",
        "level", "wl", "policy", "normalized", "secs"
    );
    for c in &cells {
        println!(
            "{:>8} {:>6} {:>20} {:>12.3} {:>11.1}{}",
            c.level,
            c.workload,
            c.policy,
            c.normalized,
            c.secs,
            if c.timed_out { "*" } else { " " }
        );
    }
    println!("(* exceeded the paper's 2.5 h per-run cap)");
}
