//! Regenerates every data-bearing figure and prints the tables
//! (optionally writing JSON next to them with `--json <dir>`).
//!
//! `--trace-out <path>` / `--metrics-out <path>` additionally re-run the
//! suite's representative point (CG at 96 GB on two GrOUT nodes, tuned
//! vector-step) instrumented and write a Perfetto-loadable Chrome trace
//! and a metrics dump.

use grout::workloads::{gb, ConjugateGradient, SimWorkload};
use grout::PolicyKind;
use grout_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());
    let dump = |name: &str, value: serde_json::Value| {
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            std::fs::write(
                format!("{dir}/{name}.json"),
                serde_json::to_string_pretty(&value).expect("serialize"),
            )
            .expect("write json");
        }
    };

    for (fig, name) in [
        (fig1(), "fig1"),
        (fig6a(), "fig6a"),
        (fig6b(), "fig6b"),
        (fig7(), "fig7"),
    ] {
        print_figure(&fig);
        println!();
        dump(name, serde_json::to_value(&fig).expect("serialize"));
    }

    let cells = fig8();
    println!("== fig8 — exec time at 96 GB (3x), normalized to round-robin (lower is better) ==");
    println!(
        "{:>8} {:>6} {:>20} {:>12} {:>12}",
        "level", "wl", "policy", "normalized", "secs"
    );
    for c in &cells {
        println!(
            "{:>8} {:>6} {:>20} {:>12.3} {:>11.1}{}",
            c.level,
            c.workload,
            c.policy,
            c.normalized,
            c.secs,
            if c.timed_out { "*" } else { " " }
        );
    }
    println!();
    dump("fig8", serde_json::to_value(&cells).expect("serialize"));

    let points = fig9();
    println!("== fig9 — controller scheduling overhead per CE [us] (real wall clock) ==");
    print!("{:>8}", "nodes");
    let policies = [
        "round-robin",
        "vector-step",
        "min-transfer-size",
        "min-transfer-time",
    ];
    for p in policies {
        print!("{p:>20}");
    }
    println!();
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        print!("{n:>8}");
        for p in policies {
            let v = points
                .iter()
                .find(|q| q.policy == p && q.nodes == n)
                .map(|q| q.micros_per_ce)
                .unwrap_or(f64::NAN);
            print!("{v:>20.3}");
        }
        println!();
    }
    dump("fig9", serde_json::to_value(&points).expect("serialize"));

    let cg = ConjugateGradient::default();
    emit_representative(
        &ArtifactArgs::parse(&args),
        "cg-96gb-grout2-vector-step",
        &cg,
        grout_two_nodes(PolicyKind::VectorStep(cg.tuned_vector())),
        gb(96),
    );
}
