#![warn(missing_docs)]
//! # grout-bench — figure-reproduction harness
//!
//! One generator per data-bearing figure of the paper (1, 6a, 6b, 7, 8, 9);
//! the `repro_*` binaries print them, `benches/` times them with criterion,
//! and EXPERIMENTS.md records paper-vs-measured values.

mod artifacts;
mod figures;

pub use artifacts::{emit_representative, instrumented_run, ArtifactArgs};
pub use figures::{
    fig1, fig6a, fig6b, fig7, fig8, fig9, fig9_state, grout_two_nodes, paper_workloads,
    print_figure, Fig8Cell, Fig9Point, FigPoint, FigSeries, Figure,
};
