//! Figure generators: one function per data-bearing figure of the paper.
//!
//! Each returns structured data that the `repro_*` binaries print, the
//! criterion benches time, and EXPERIMENTS.md records. Figures 2-5 of the
//! paper are architecture diagrams with no data and have no generator.

use grout::core::{ExplorationLevel, PolicyKind, SimConfig};
use grout::workloads::{
    gb, oversubscription_factor, run_workload, BlackScholes, ConjugateGradient, MatVec, MlEnsemble,
    RunOutcome, SimWorkload, PAPER_SIZES_GB,
};
use serde::Serialize;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct FigPoint {
    /// Footprint in the paper's GB units.
    pub size_gb: u64,
    /// Oversubscription factor vs one 32 GiB node.
    pub factor: f64,
    /// The measured value (meaning depends on the figure).
    pub value: f64,
    /// Whether the run exceeded the 2.5 h cap (value is then a lower bound).
    pub timed_out: bool,
}

/// One labeled series.
#[derive(Debug, Clone, Serialize)]
pub struct FigSeries {
    /// Series label (workload or policy name).
    pub label: String,
    /// Points in size order.
    pub points: Vec<FigPoint>,
}

/// A whole reproduced figure.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Paper figure id ("fig1", "fig6a", ...).
    pub id: &'static str,
    /// What the value axis means.
    pub value_axis: &'static str,
    /// The series.
    pub series: Vec<FigSeries>,
}

/// The paper's three distributed workloads.
pub fn paper_workloads() -> Vec<Box<dyn SimWorkload>> {
    vec![
        Box::new(MlEnsemble::default()),
        Box::new(ConjugateGradient::default()),
        Box::new(MatVec::default()),
    ]
}

/// The two-node GrOUT deployment used in Figures 6b/7/8 (with the chosen
/// inter-node policy).
pub fn grout_two_nodes(policy: PolicyKind) -> SimConfig {
    SimConfig::paper_grout(2, policy)
}

fn sweep(workload: &dyn SimWorkload, cfg: &SimConfig, sizes: &[u64]) -> Vec<(u64, RunOutcome)> {
    sizes
        .iter()
        .map(|&s| (s, run_workload(workload, cfg.clone(), gb(s))))
        .collect()
}

/// Figure 1: Black-Scholes execution time vs input size on one node; sizes
/// past 32 GB are the paper's red (oversubscribed) bars.
pub fn fig1() -> Figure {
    let cfg = SimConfig::grcuda_baseline();
    let bs = BlackScholes::default();
    let points = sweep(&bs, &cfg, &PAPER_SIZES_GB)
        .into_iter()
        .map(|(s, out)| FigPoint {
            size_gb: s,
            factor: oversubscription_factor(gb(s)),
            value: out.secs(),
            timed_out: out.timed_out,
        })
        .collect();
    Figure {
        id: "fig1",
        value_axis: "execution time [s]",
        series: vec![FigSeries {
            label: "Black-Scholes (1 node, 2x V100)".into(),
            points,
        }],
    }
}

fn slowdown_figure(id: &'static str, cfg: Option<SimConfig>) -> Figure {
    let mut series = Vec::new();
    for w in paper_workloads() {
        // `None` means "two-node GrOUT with the workload's tuned offline
        // vector-step policy" (Figure 6b).
        let cfg = cfg
            .clone()
            .unwrap_or_else(|| grout_two_nodes(PolicyKind::VectorStep(w.tuned_vector())));
        let runs = sweep(w.as_ref(), &cfg, &PAPER_SIZES_GB);
        let baseline = runs[0].1.secs();
        let points = runs
            .into_iter()
            .map(|(s, out)| FigPoint {
                size_gb: s,
                factor: oversubscription_factor(gb(s)),
                value: out.secs() / baseline,
                timed_out: out.timed_out,
            })
            .collect();
        series.push(FigSeries {
            label: w.name().into(),
            points,
        });
    }
    Figure {
        id,
        value_axis: "slowdown vs 4 GB run",
        series,
    }
}

/// Figure 6a: single-node (GrCUDA) slowdown vs the 4 GB run.
pub fn fig6a() -> Figure {
    slowdown_figure("fig6a", Some(SimConfig::grcuda_baseline()))
}

/// Figure 6b: the same slowdown on two GrOUT nodes with each workload's
/// tuned offline vector-step policy.
pub fn fig6b() -> Figure {
    slowdown_figure("fig6b", None)
}

/// Figure 7: speedup of two-node GrOUT over single-node GrCUDA at equal
/// footprint. Timed-out single-node runs make the speedup a lower bound.
pub fn fig7() -> Figure {
    let single = SimConfig::grcuda_baseline();
    let mut series = Vec::new();
    for w in paper_workloads() {
        let grout = grout_two_nodes(PolicyKind::VectorStep(w.tuned_vector()));
        let s_runs = sweep(w.as_ref(), &single, &PAPER_SIZES_GB);
        let g_runs = sweep(w.as_ref(), &grout, &PAPER_SIZES_GB);
        let points = s_runs
            .into_iter()
            .zip(g_runs)
            .map(|((s, one), (_, two))| FigPoint {
                size_gb: s,
                factor: oversubscription_factor(gb(s)),
                value: one.secs() / two.secs(),
                timed_out: one.timed_out,
            })
            .collect();
        series.push(FigSeries {
            label: w.name().into(),
            points,
        });
    }
    Figure {
        id: "fig7",
        value_axis: "speedup vs single node (>1 favours GrOUT)",
        series,
    }
}

/// One Figure 8 cell: a workload under a policy at one exploration level,
/// normalized to round-robin.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Cell {
    /// Exploration level (Low/Medium/High).
    pub level: &'static str,
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: &'static str,
    /// Execution time normalized to round-robin (lower is better).
    pub normalized: f64,
    /// Raw seconds.
    pub secs: f64,
    /// Run hit the 2.5 h cap.
    pub timed_out: bool,
}

/// Figure 8: online vs offline policies at 3x oversubscription (96 GB) on
/// two nodes, normalized to round-robin, across the three heuristic levels.
pub fn fig8() -> Vec<Fig8Cell> {
    let size = gb(96);
    let levels = [
        ("Low", ExplorationLevel::Low),
        ("Medium", ExplorationLevel::Medium),
        ("High", ExplorationLevel::High),
    ];
    let mut cells = Vec::new();
    let workloads: Vec<Box<dyn SimWorkload>> = vec![
        Box::new(MlEnsemble::default()),
        Box::new(ConjugateGradient::default()),
        Box::new(MatVec::default()),
    ];
    for (lname, level) in levels {
        for w in &workloads {
            let rr = run_workload(w.as_ref(), grout_two_nodes(PolicyKind::RoundRobin), size);
            let policies: Vec<(PolicyKind, &'static str)> = vec![
                (PolicyKind::RoundRobin, "round-robin"),
                (PolicyKind::VectorStep(w.tuned_vector()), "vector-step"),
                (PolicyKind::MinTransferSize(level), "min-transfer-size"),
                (PolicyKind::MinTransferTime(level), "min-transfer-time"),
            ];
            for (policy, pname) in policies {
                let out = run_workload(w.as_ref(), grout_two_nodes(policy), size);
                cells.push(Fig8Cell {
                    level: lname,
                    workload: w.name().into(),
                    policy: pname,
                    normalized: out.secs() / rr.secs(),
                    secs: out.secs(),
                    timed_out: out.timed_out,
                });
            }
        }
    }
    cells
}

/// One Figure 9 point: mean wall-clock cost of a scheduling decision.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Point {
    /// Policy name.
    pub policy: &'static str,
    /// Cluster size.
    pub nodes: usize,
    /// Mean microseconds per CE assignment (real wall clock).
    pub micros_per_ce: f64,
}

/// Builds the synthetic Controller state for a Figure 9 measurement:
/// `nodes` workers, arrays spread across them, and a CE reading eight.
pub fn fig9_state(
    nodes: usize,
) -> (
    grout::core::NodeScheduler,
    grout::core::Coherence,
    grout::core::Ce,
) {
    use grout::core::{
        ArrayId, Ce, CeArg, CeId, CeKind, Coherence, KernelCost, LinkMatrix, Location,
        NodeScheduler,
    };
    let mut coherence = Coherence::new();
    let arrays = 64usize;
    for a in 0..arrays {
        let id = ArrayId(a as u64);
        coherence.register(id);
        coherence.record_write(id, Location::worker(a % nodes));
    }
    let ce = Ce {
        id: CeId(0),
        kind: CeKind::Kernel {
            name: "synthetic".into(),
            cost: KernelCost::default(),
        },
        args: (0..8)
            .map(|i| CeArg::read(ArrayId(i as u64), 1 << 30))
            .collect(),
    };
    let links = LinkMatrix::uniform(nodes + 1, 500e6);
    let sched = NodeScheduler::new(
        PolicyKind::MinTransferTime(ExplorationLevel::Medium),
        nodes,
        Some(links),
    );
    (sched, coherence, ce)
}

/// Figure 9: controller scheduling overhead per CE for 2..256 nodes, per
/// policy, measured on the real policy code with `std::time::Instant`.
pub fn fig9() -> Vec<Fig9Point> {
    use grout::core::{LinkMatrix, NodeScheduler};
    type MakeScheduler = Box<dyn Fn(usize) -> NodeScheduler>;
    let node_counts = [2usize, 4, 8, 16, 32, 64, 128, 256];
    let reps = 20_000u32;
    let mut out = Vec::new();
    let policies: Vec<(&'static str, MakeScheduler)> = vec![
        (
            "round-robin",
            Box::new(|n| NodeScheduler::new(PolicyKind::RoundRobin, n, None)),
        ),
        (
            "vector-step",
            Box::new(|n| NodeScheduler::new(PolicyKind::VectorStep(vec![1, 2, 3]), n, None)),
        ),
        (
            "min-transfer-size",
            Box::new(|n| {
                NodeScheduler::new(
                    PolicyKind::MinTransferSize(ExplorationLevel::Medium),
                    n,
                    None,
                )
            }),
        ),
        (
            "min-transfer-time",
            Box::new(|n| {
                NodeScheduler::new(
                    PolicyKind::MinTransferTime(ExplorationLevel::Medium),
                    n,
                    Some(LinkMatrix::uniform(n + 1, 500e6)),
                )
            }),
        ),
    ];
    for (name, make) in &policies {
        for &n in &node_counts {
            let (_, coherence, ce) = fig9_state(n);
            let mut sched = make(n);
            // Warm up.
            for _ in 0..1000 {
                std::hint::black_box(sched.assign(&ce, &coherence));
            }
            let start = std::time::Instant::now();
            for _ in 0..reps {
                std::hint::black_box(sched.assign(&ce, &coherence));
            }
            let micros = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
            out.push(Fig9Point {
                policy: name,
                nodes: n,
                micros_per_ce: micros,
            });
        }
    }
    out
}

/// Pretty-prints a size-sweep figure as an aligned table.
pub fn print_figure(fig: &Figure) {
    println!("== {} — {} ==", fig.id, fig.value_axis);
    print!("{:>8}", "GB");
    for s in &fig.series {
        print!("{:>16}", s.label);
    }
    println!();
    let n = fig.series[0].points.len();
    for i in 0..n {
        print!("{:>8}", fig.series[0].points[i].size_gb);
        for s in &fig.series {
            let p = &s.points[i];
            let mark = if p.timed_out { "*" } else { "" };
            print!(
                "{:>15.2}{}",
                p.value,
                if mark.is_empty() { " " } else { mark }
            );
        }
        println!();
    }
    if fig
        .series
        .iter()
        .any(|s| s.points.iter().any(|p| p.timed_out))
    {
        println!("(* exceeded the paper's 2.5 h per-run cap; value is a lower bound)");
    }
}
