#![warn(missing_docs)]
//! # kernelc — mini-CUDA front end (the reproduction's NVRTC)
//!
//! GrOUT's `buildkernel` API hands a CUDA C++ source string to NVRTC at
//! runtime. This crate supplies the equivalent for the reproduction: a
//! lexer, parser and type checker for a restricted CUDA C dialect, a
//! *parallel interpreter* so kernels genuinely execute on the host (rayon
//! across blocks, relaxed atomics for buffer traffic), and a static
//! access-pattern analyzer whose output drives the UVM cost model.
//!
//! The dialect covers what the paper's workload suite needs: 1-D grids
//! (`threadIdx.x`/`blockIdx.x`/`blockDim.x`/`gridDim.x`), `int`/`float`
//! scalars and pointers with const-correctness, `if`/`for`/`while`,
//! compound assignment, `atomicAdd`, and CUDA float intrinsics including
//! `erff`/`normcdff` for Black-Scholes.
//!
//! ```
//! use kernelc::{compile_one, KernelArg};
//!
//! let k = compile_one(
//!     "__global__ void square(float* x, int n) {
//!          int i = blockIdx.x * blockDim.x + threadIdx.x;
//!          if (i < n) { x[i] = x[i] * x[i]; }
//!      }",
//!     "square",
//! ).unwrap();
//! let mut x = vec![3.0f32; 10];
//! k.launch(1, 32, &mut [KernelArg::F32(&mut x), KernelArg::Int(10)]).unwrap();
//! assert_eq!(x[0], 9.0);
//! ```

mod analysis;
mod ast;
mod interp;
mod parser;
mod racecheck;
mod token;
mod typeck;

use std::fmt;

pub use analysis::{analyze, flops_per_thread, AccessClass, ParamAccess};
pub use ast::{Elem, Kernel, Param, ParamType};
pub use interp::{
    launch, launch2d, launch2d_with_budget, launch_with_budget, KernelArg, LaunchError, LaunchStats,
};
pub use parser::{parse, ParseError};
pub use racecheck::{launch_checked, Race, RaceReport};
pub use token::{lex, LexError};
pub use typeck::{check, erf, CheckedKernel, Intrinsic, TypeError};

/// Compilation failure: either syntactic or semantic.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lex/parse failure.
    Parse(ParseError),
    /// Type/semantic failure.
    Type(TypeError),
    /// `compile_one` did not find the requested kernel.
    NoSuchKernel(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Type(e) => write!(f, "{e}"),
            CompileError::NoSuchKernel(n) => write!(f, "no kernel named `{n}` in source"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<TypeError> for CompileError {
    fn from(e: TypeError) -> Self {
        CompileError::Type(e)
    }
}

/// A fully compiled kernel: checked IR plus its access analysis.
///
/// The original source is retained so a kernel can be shipped across a
/// process boundary as `(source, name)` and recompiled remotely:
/// compilation and host interpretation are deterministic, so the remote
/// copy behaves bit-identically to the local one.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    checked: CheckedKernel,
    access: Vec<ParamAccess>,
    source: std::sync::Arc<str>,
}

impl CompiledKernel {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.checked.name
    }

    /// The source text this kernel was compiled from (the full translation
    /// unit — recompile with [`compile_one`] and [`CompiledKernel::name`]).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Formal parameters.
    pub fn params(&self) -> &[Param] {
        &self.checked.params
    }

    /// Per-parameter access analysis (drives the UVM cost model).
    pub fn access(&self) -> &[ParamAccess] {
        &self.access
    }

    /// The checked IR (for custom back ends).
    pub fn checked(&self) -> &CheckedKernel {
        &self.checked
    }

    /// Rough per-thread FLOP estimate (loops assumed `assumed_trip` long).
    pub fn flops_per_thread(&self, assumed_trip: f64) -> f64 {
        flops_per_thread(&self.checked, assumed_trip)
    }

    /// Executes the kernel over a 1-D grid on the host (rayon-parallel).
    pub fn launch(
        &self,
        grid: u32,
        block: u32,
        args: &mut [KernelArg<'_>],
    ) -> Result<LaunchStats, LaunchError> {
        launch(&self.checked, grid, block, args)
    }

    /// Executes the kernel over a 2-D grid (`dim3(x, y)` semantics).
    pub fn launch2d(
        &self,
        grid: (u32, u32),
        block: (u32, u32),
        args: &mut [KernelArg<'_>],
    ) -> Result<LaunchStats, LaunchError> {
        launch2d(&self.checked, grid, block, args)
    }

    /// Sequential launch with data-race detection (the `compute-sanitizer
    /// racecheck` analogue): reports write-write and read-after-write
    /// conflicts between distinct threads, `atomicAdd` exempt.
    pub fn launch_checked(
        &self,
        grid: u32,
        block: u32,
        args: &mut [KernelArg<'_>],
    ) -> Result<RaceReport, LaunchError> {
        launch_checked(&self.checked, grid, block, args, 16)
    }

    /// [`CompiledKernel::launch`] with an explicit step budget.
    pub fn launch_with_budget(
        &self,
        grid: u32,
        block: u32,
        args: &mut [KernelArg<'_>],
        budget: u64,
    ) -> Result<LaunchStats, LaunchError> {
        launch_with_budget(&self.checked, grid, block, args, budget)
    }
}

/// Compiles every `__global__` kernel in `source` (the NVRTC entry point).
pub fn compile(source: &str) -> Result<Vec<CompiledKernel>, CompileError> {
    let src: std::sync::Arc<str> = source.into();
    parse(source)?
        .iter()
        .map(|k| {
            let checked = check(k)?;
            let access = analyze(&checked);
            Ok(CompiledKernel {
                checked,
                access,
                source: std::sync::Arc::clone(&src),
            })
        })
        .collect()
}

/// Compiles `source` and returns the kernel named `name`.
pub fn compile_one(source: &str, name: &str) -> Result<CompiledKernel, CompileError> {
    compile(source)?
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| CompileError::NoSuchKernel(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_surfaces_both_error_kinds() {
        assert!(matches!(compile("garbage"), Err(CompileError::Parse(_))));
        assert!(matches!(
            compile("__global__ void f(const float* x) { x[0] = 1.0; }"),
            Err(CompileError::Type(_))
        ));
        assert!(matches!(
            compile_one("__global__ void a(int n) { return; }", "b"),
            Err(CompileError::NoSuchKernel(_))
        ));
    }

    #[test]
    fn racecheck_passes_clean_kernels_and_catches_races() {
        // Clean: disjoint writes.
        let clean = compile_one(
            "__global__ void f(float* y, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[i] = 1.0; }
            }",
            "f",
        )
        .unwrap();
        let mut y = vec![0.0f32; 64];
        let report = clean
            .launch_checked(2, 32, &mut [KernelArg::F32(&mut y), KernelArg::Int(64)])
            .unwrap();
        assert!(report.is_race_free(), "{:?}", report.races);
        assert_eq!(report.threads, 64);

        // Racy: everyone writes element 0.
        let racy = compile_one(
            "__global__ void g(float* y) { y[0] = (float)threadIdx.x; }",
            "g",
        )
        .unwrap();
        let mut y = vec![0.0f32; 4];
        let report = racy
            .launch_checked(1, 8, &mut [KernelArg::F32(&mut y)])
            .unwrap();
        assert!(!report.is_race_free());
        assert!(report.races[0].second_is_write);
        assert!(report.races[0].to_string().contains("write-write"));

        // Atomic accumulation is not a race.
        let atomic = compile_one(
            "__global__ void h(float* y) { atomicAdd(&y[0], 1.0); }",
            "h",
        )
        .unwrap();
        let mut y = vec![0.0f32; 1];
        let report = atomic
            .launch_checked(1, 8, &mut [KernelArg::F32(&mut y)])
            .unwrap();
        assert!(report.is_race_free(), "{:?}", report.races);
        assert_eq!(y[0], 8.0, "sequential semantics preserved");
    }

    #[test]
    fn racecheck_catches_read_write_conflicts() {
        // Thread i reads element i-1 that thread i-1 wrote: unsynchronized.
        let k = compile_one(
            "__global__ void f(float* y, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[i] = 1.0; }
                if (i > 0 && i < n) { y[i] = y[i - 1] + 1.0; }
            }",
            "f",
        )
        .unwrap();
        let mut y = vec![0.0f32; 16];
        let report = k
            .launch_checked(1, 16, &mut [KernelArg::F32(&mut y), KernelArg::Int(16)])
            .unwrap();
        assert!(!report.is_race_free());
        assert!(report.races.iter().any(|r| !r.second_is_write));
    }

    #[test]
    fn end_to_end_compile_and_launch() {
        let k = compile_one(
            "__global__ void add(float* y, const float* x, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[i] = y[i] + x[i]; }
            }",
            "add",
        )
        .unwrap();
        assert_eq!(k.name(), "add");
        assert_eq!(k.access()[1].class, AccessClass::Coalesced);
        let mut y = vec![1.0f32; 64];
        let mut x = vec![2.0f32; 64];
        k.launch(
            2,
            32,
            &mut [
                KernelArg::F32(&mut y),
                KernelArg::F32(&mut x),
                KernelArg::Int(64),
            ],
        )
        .unwrap();
        assert!(y.iter().all(|&v| v == 3.0));
    }
}
