//! Static access-pattern analysis.
//!
//! The GrOUT runtime never looks inside kernels for *scheduling* (it is
//! code-agnostic), but the **UVM driver's** behaviour depends decisively on
//! access locality. This module reproduces what NVIDIA's driver heuristics
//! react to: for each pointer parameter, classify how the simulated threads
//! address it.
//!
//! - [`AccessClass::Coalesced`]: index affine in the global thread id
//!   (including grid-stride loops) — neighbouring threads touch
//!   neighbouring elements; the prefetcher can keep up.
//! - [`AccessClass::Broadcast`]: indexed by a per-thread loop counter whose
//!   start does *not* depend on the thread id — every thread sweeps the
//!   whole array (the dense-MV vector). These are the literature's FALL
//!   pages.
//! - [`AccessClass::Indirect`]: index computed from another array load
//!   (gather/scatter).
//! - [`AccessClass::Uniform`]: constant index (e.g. a scalar accumulator).

use std::collections::HashSet;

use crate::ast::ParamType;
use crate::typeck::{CheckedKernel, RExpr, RStmt};

/// Locality class of one pointer parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessClass {
    /// Constant index; touches O(1) pages.
    Uniform,
    /// Affine in the global thread id; prefetch-friendly.
    Coalesced,
    /// Swept whole by every thread (FALL pages).
    Broadcast,
    /// Data-dependent gather/scatter.
    Indirect,
}

/// Analysis result for one parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamAccess {
    /// Kernel reads through this pointer.
    pub reads: bool,
    /// Kernel writes through this pointer.
    pub writes: bool,
    /// Worst (most UVM-hostile) locality class among its access sites.
    pub class: AccessClass,
}

#[derive(Default)]
struct Deps {
    /// Local slots whose value depends on the thread/block id.
    gid: HashSet<u16>,
    /// Local slots that are loop counters with gid-independent start.
    bcast_loop: HashSet<u16>,
    /// Local slots holding values loaded from arrays.
    indirect: HashSet<u16>,
}

fn expr_uses_gid(e: &RExpr, d: &Deps) -> bool {
    match e {
        RExpr::Builtin(b) => matches!(
            b,
            crate::ast::BuiltinVar::ThreadIdxX
                | crate::ast::BuiltinVar::BlockIdxX
                | crate::ast::BuiltinVar::ThreadIdxY
                | crate::ast::BuiltinVar::BlockIdxY
        ),
        RExpr::Local(s, _) => d.gid.contains(s),
        RExpr::IntLit(_) | RExpr::FloatLit(_) | RExpr::ParamScalar(..) => false,
        RExpr::Load { index, .. } => expr_uses_gid(index, d),
        RExpr::Unary { expr, .. } | RExpr::Cast { expr, .. } => expr_uses_gid(expr, d),
        RExpr::Binary { lhs, rhs, .. } => expr_uses_gid(lhs, d) || expr_uses_gid(rhs, d),
        RExpr::Call { args, .. } => args.iter().any(|a| expr_uses_gid(a, d)),
        RExpr::Ternary {
            cond, then, els, ..
        } => expr_uses_gid(cond, d) || expr_uses_gid(then, d) || expr_uses_gid(els, d),
    }
}

fn expr_uses_bcast_loop(e: &RExpr, d: &Deps) -> bool {
    match e {
        RExpr::Local(s, _) => d.bcast_loop.contains(s),
        RExpr::Load { index, .. } => expr_uses_bcast_loop(index, d),
        RExpr::Unary { expr, .. } | RExpr::Cast { expr, .. } => expr_uses_bcast_loop(expr, d),
        RExpr::Binary { lhs, rhs, .. } => {
            expr_uses_bcast_loop(lhs, d) || expr_uses_bcast_loop(rhs, d)
        }
        RExpr::Call { args, .. } => args.iter().any(|a| expr_uses_bcast_loop(a, d)),
        RExpr::Ternary {
            cond, then, els, ..
        } => {
            expr_uses_bcast_loop(cond, d)
                || expr_uses_bcast_loop(then, d)
                || expr_uses_bcast_loop(els, d)
        }
        _ => false,
    }
}

fn expr_has_load(e: &RExpr, d: &Deps) -> bool {
    match e {
        RExpr::Load { .. } => true,
        RExpr::Local(s, _) => d.indirect.contains(s),
        RExpr::Unary { expr, .. } | RExpr::Cast { expr, .. } => expr_has_load(expr, d),
        RExpr::Binary { lhs, rhs, .. } => expr_has_load(lhs, d) || expr_has_load(rhs, d),
        RExpr::Call { args, .. } => args.iter().any(|a| expr_has_load(a, d)),
        RExpr::Ternary {
            cond, then, els, ..
        } => expr_has_load(cond, d) || expr_has_load(then, d) || expr_has_load(els, d),
        _ => false,
    }
}

fn classify_index(index: &RExpr, d: &Deps) -> AccessClass {
    if expr_has_load(index, d) {
        AccessClass::Indirect
    } else if expr_uses_bcast_loop(index, d) && !expr_uses_gid(index, d) {
        AccessClass::Broadcast
    } else if expr_uses_gid(index, d) || expr_uses_bcast_loop(index, d) {
        // gid-affine, or a gid-seeded (grid-stride) loop counter.
        AccessClass::Coalesced
    } else {
        AccessClass::Uniform
    }
}

struct Analyzer {
    deps: Deps,
    class: Vec<AccessClass>,
}

impl Analyzer {
    fn note(&mut self, param: u16, c: AccessClass) {
        let cur = &mut self.class[param as usize];
        if c > *cur {
            *cur = c;
        }
    }

    fn scan_expr(&mut self, e: &RExpr) {
        match e {
            RExpr::Load { param, index, .. } => {
                let c = classify_index(index, &self.deps);
                self.note(*param, c);
                self.scan_expr(index);
            }
            RExpr::Unary { expr, .. } | RExpr::Cast { expr, .. } => self.scan_expr(expr),
            RExpr::Binary { lhs, rhs, .. } => {
                self.scan_expr(lhs);
                self.scan_expr(rhs);
            }
            RExpr::Call { args, .. } => args.iter().for_each(|a| self.scan_expr(a)),
            RExpr::Ternary {
                cond, then, els, ..
            } => {
                self.scan_expr(cond);
                self.scan_expr(then);
                self.scan_expr(els);
            }
            _ => {}
        }
    }

    fn track_assign(&mut self, slot: u16, value: &RExpr) {
        if expr_uses_gid(value, &self.deps) {
            self.deps.gid.insert(slot);
        }
        if expr_has_load(value, &self.deps) {
            self.deps.indirect.insert(slot);
        }
        if expr_uses_bcast_loop(value, &self.deps) && !expr_uses_gid(value, &self.deps) {
            self.deps.bcast_loop.insert(slot);
        }
    }

    fn scan_stmt(&mut self, s: &RStmt) {
        match s {
            RStmt::SetLocal { slot, value } => {
                self.scan_expr(value);
                self.track_assign(*slot, value);
            }
            RStmt::Store {
                param,
                index,
                value,
            } => {
                let c = classify_index(index, &self.deps);
                self.note(*param, c);
                self.scan_expr(index);
                self.scan_expr(value);
            }
            RStmt::AtomicAdd {
                param,
                index,
                value,
            } => {
                let c = classify_index(index, &self.deps);
                self.note(*param, c);
                self.scan_expr(index);
                self.scan_expr(value);
            }
            RStmt::If { cond, then, els } => {
                self.scan_expr(cond);
                then.iter().for_each(|s| self.scan_stmt(s));
                els.iter().for_each(|s| self.scan_stmt(s));
            }
            RStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // Identify the loop counter and whether its start is
                // gid-seeded (grid-stride) or uniform (broadcast sweep).
                if let RStmt::SetLocal { slot, value } = &**init {
                    self.scan_expr(value);
                    if expr_uses_gid(value, &self.deps) {
                        self.deps.gid.insert(*slot);
                    } else {
                        self.deps.bcast_loop.insert(*slot);
                    }
                } else {
                    self.scan_stmt(init);
                }
                self.scan_expr(cond);
                body.iter().for_each(|s| self.scan_stmt(s));
                self.scan_stmt(step);
            }
            RStmt::While { cond, body } => {
                self.scan_expr(cond);
                body.iter().for_each(|s| self.scan_stmt(s));
            }
            RStmt::Return => {}
        }
    }
}

/// Runs the analysis over a checked kernel.
pub fn analyze(kernel: &CheckedKernel) -> Vec<ParamAccess> {
    let n = kernel.params.len();
    let mut a = Analyzer {
        deps: Deps::default(),
        class: vec![AccessClass::Uniform; n],
    };
    kernel.body.iter().for_each(|s| a.scan_stmt(s));
    (0..n)
        .map(|i| ParamAccess {
            reads: kernel.reads[i],
            writes: kernel.writes[i],
            class: match kernel.params[i].ty {
                ParamType::Ptr { .. } => a.class[i],
                ParamType::Scalar(_) => AccessClass::Uniform,
            },
        })
        .collect()
}

/// Rough per-thread FLOP estimate: arithmetic ops count 1, intrinsics 4;
/// loop bodies are multiplied by `assumed_trip`.
pub fn flops_per_thread(kernel: &CheckedKernel, assumed_trip: f64) -> f64 {
    fn expr(e: &RExpr) -> f64 {
        match e {
            RExpr::Unary { expr: x, .. } | RExpr::Cast { expr: x, .. } => 1.0 + expr(x),
            RExpr::Binary { lhs, rhs, .. } => 1.0 + expr(lhs) + expr(rhs),
            RExpr::Call { args, .. } => 4.0 + args.iter().map(expr).sum::<f64>(),
            RExpr::Ternary {
                cond, then, els, ..
            } => expr(cond) + expr(then).max(expr(els)),
            RExpr::Load { index, .. } => expr(index),
            _ => 0.0,
        }
    }
    fn stmt(s: &RStmt, trip: f64) -> f64 {
        match s {
            RStmt::SetLocal { value, .. } => expr(value),
            RStmt::Store { index, value, .. } => expr(index) + expr(value),
            RStmt::AtomicAdd { index, value, .. } => 1.0 + expr(index) + expr(value),
            RStmt::If { cond, then, els } => {
                expr(cond)
                    + then
                        .iter()
                        .map(|s| stmt(s, trip))
                        .sum::<f64>()
                        .max(els.iter().map(|s| stmt(s, trip)).sum::<f64>())
            }
            RStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                stmt(init, trip)
                    + trip
                        * (expr(cond)
                            + stmt(step, trip)
                            + body.iter().map(|s| stmt(s, trip)).sum::<f64>())
            }
            RStmt::While { cond, body } => {
                trip * (expr(cond) + body.iter().map(|s| stmt(s, trip)).sum::<f64>())
            }
            RStmt::Return => 0.0,
        }
    }
    kernel.body.iter().map(|s| stmt(s, assumed_trip)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typeck::check;

    fn access(src: &str) -> Vec<ParamAccess> {
        analyze(&check(&parse(src).unwrap()[0]).unwrap())
    }

    #[test]
    fn saxpy_is_coalesced() {
        let a = access(
            "__global__ void saxpy(float* y, const float* x, float a, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[i] = a * x[i] + y[i]; }
            }",
        );
        assert_eq!(a[0].class, AccessClass::Coalesced);
        assert_eq!(a[1].class, AccessClass::Coalesced);
        assert!(a[0].writes && a[0].reads);
        assert!(a[1].reads && !a[1].writes);
    }

    #[test]
    fn matvec_vector_is_broadcast() {
        // The dense-MV pathology: every row thread sweeps the whole vector.
        let a = access(
            "__global__ void mv(float* y, const float* A, const float* x, int rows, int cols) {
                int r = blockIdx.x * blockDim.x + threadIdx.x;
                if (r < rows) {
                    float acc = 0.0;
                    for (int c = 0; c < cols; c++) {
                        acc += A[r * cols + c] * x[c];
                    }
                    y[r] = acc;
                }
            }",
        );
        assert_eq!(a[0].class, AccessClass::Coalesced, "y");
        assert_eq!(
            a[1].class,
            AccessClass::Coalesced,
            "A (row-major, gid-affine)"
        );
        assert_eq!(a[2].class, AccessClass::Broadcast, "x (FALL)");
    }

    #[test]
    fn grid_stride_loop_is_coalesced() {
        let a = access(
            "__global__ void sum(const float* a, float* out, int n) {
                for (int j = blockIdx.x * blockDim.x + threadIdx.x; j < n;
                     j += blockDim.x * gridDim.x) {
                    atomicAdd(&out[0], a[j]);
                }
            }",
        );
        assert_eq!(a[0].class, AccessClass::Coalesced);
        assert_eq!(a[1].class, AccessClass::Uniform, "out[0] is uniform");
    }

    #[test]
    fn indirect_gather_detected() {
        let a = access(
            "__global__ void gather(float* y, const float* v, const int* idx, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[i] = v[idx[i]]; }
            }",
        );
        assert_eq!(a[1].class, AccessClass::Indirect, "v");
        assert_eq!(a[2].class, AccessClass::Coalesced, "idx");
    }

    #[test]
    fn indirect_via_local_detected() {
        let a = access(
            "__global__ void gather(float* y, const float* v, const int* idx, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) {
                    int k = idx[i];
                    y[i] = v[k];
                }
            }",
        );
        assert_eq!(a[1].class, AccessClass::Indirect);
    }

    #[test]
    fn flops_scale_with_loops() {
        let k = check(
            &parse(
                "__global__ void f(float* y, int n) {
                    int i = threadIdx.x;
                    float acc = 0.0;
                    for (int j = 0; j < n; j++) { acc += y[j] * 2.0; }
                    y[i] = acc;
                }",
            )
            .unwrap()[0],
        )
        .unwrap();
        let f1 = flops_per_thread(&k, 10.0);
        let f2 = flops_per_thread(&k, 1000.0);
        assert!(f2 > f1 * 50.0);
    }
}
