//! Recursive-descent parser for the kernel dialect.

use std::fmt;

use crate::ast::*;
use crate::token::{lex, Spanned, Tok};

/// Parse error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses every `__global__` kernel in `src`.
pub fn parse(src: &str) -> Result<Vec<Kernel>, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
        col: e.col,
    })?;
    Parser { toks, pos: 0 }.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let s = &self.toks[self.pos];
        Err(ParseError {
            message: msg.into(),
            line: s.line,
            col: s.col,
        })
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t}, found {}", self.peek()))
        }
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn program(&mut self) -> Result<Vec<Kernel>, ParseError> {
        let mut kernels = Vec::new();
        while *self.peek() != Tok::Eof {
            if self.eat(Tok::Global) {
                kernels.push(self.kernel()?);
            } else {
                return self.err(format!(
                    "expected `__global__` kernel, found {}",
                    self.peek()
                ));
            }
        }
        if kernels.is_empty() {
            return self.err("source contains no `__global__` kernel");
        }
        Ok(kernels)
    }

    fn kernel(&mut self) -> Result<Kernel, ParseError> {
        self.expect(Tok::Void)?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(Tok::RParen) {
            loop {
                params.push(self.param()?);
                if self.eat(Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma)?;
            }
        }
        self.expect(Tok::LBrace)?;
        let body = self.block_tail()?;
        Ok(Kernel { name, params, body })
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let mut is_const = self.eat(Tok::Const);
        let elem = match self.bump() {
            Tok::Int => Elem::Int,
            Tok::Float => Elem::Float,
            other => return self.err(format!("expected parameter type, found {other}")),
        };
        // `int const * x` / trailing const also accepted.
        is_const |= self.eat(Tok::Const);
        let is_ptr = self.eat(Tok::Star);
        // __restrict__ etc. are lexed as Device; skip.
        while self.eat(Tok::Device) {}
        let name = self.ident()?;
        let ty = if is_ptr {
            ParamType::Ptr { elem, is_const }
        } else {
            ParamType::Scalar(elem)
        };
        Ok(Param { name, ty })
    }

    /// Parses statements until the matching `}` (already past `{`).
    fn block_tail(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        while !self.eat(Tok::RBrace) {
            if *self.peek() == Tok::Eof {
                return self.err("unexpected end of input inside block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    /// A `{ ... }` block or a single statement.
    fn block_or_stmt(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.eat(Tok::LBrace) {
            self.block_tail()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Int | Tok::Float => {
                let s = self.decl()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
            Tok::If => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then = self.block_or_stmt()?;
                let els = if self.eat(Tok::Else) {
                    self.block_or_stmt()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then, els })
            }
            Tok::For => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if matches!(self.peek(), Tok::Int | Tok::Float) {
                    self.decl()?
                } else {
                    self.simple_stmt()?
                };
                self.expect(Tok::Semi)?;
                let cond = self.expr()?;
                self.expect(Tok::Semi)?;
                let step = self.simple_stmt()?;
                self.expect(Tok::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::For {
                    init: Box::new(init),
                    cond,
                    step: Box::new(step),
                    body,
                })
            }
            Tok::While => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Return => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return)
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
        }
    }

    fn decl(&mut self) -> Result<Stmt, ParseError> {
        let ty = match self.bump() {
            Tok::Int => Elem::Int,
            Tok::Float => Elem::Float,
            other => return self.err(format!("expected type, found {other}")),
        };
        let name = self.ident()?;
        let init = if self.eat(Tok::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Decl { ty, name, init })
    }

    /// Assignment, increment, or atomicAdd — the statement forms legal in
    /// for-init/step position.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        if let Tok::Ident(name) = self.peek().clone() {
            if name == "atomicAdd" {
                self.bump();
                self.expect(Tok::LParen)?;
                self.expect(Tok::Amp)?;
                let base = self.ident()?;
                self.expect(Tok::LBracket)?;
                let index = self.expr()?;
                self.expect(Tok::RBracket)?;
                self.expect(Tok::Comma)?;
                let value = self.expr()?;
                self.expect(Tok::RParen)?;
                return Ok(Stmt::AtomicAdd { base, index, value });
            }
            // lvalue: name or name[expr]
            self.bump();
            let target = if self.eat(Tok::LBracket) {
                let index = self.expr()?;
                self.expect(Tok::RBracket)?;
                LValue::Index {
                    base: name.clone(),
                    index: Box::new(index),
                }
            } else {
                LValue::Var(name.clone())
            };
            let (op, value) = match self.bump() {
                Tok::Assign => (AssignOp::Set, self.expr()?),
                Tok::PlusAssign => (AssignOp::Add, self.expr()?),
                Tok::MinusAssign => (AssignOp::Sub, self.expr()?),
                Tok::StarAssign => (AssignOp::Mul, self.expr()?),
                Tok::SlashAssign => (AssignOp::Div, self.expr()?),
                Tok::PlusPlus => (AssignOp::Add, Expr::IntLit(1)),
                Tok::MinusMinus => (AssignOp::Sub, Expr::IntLit(1)),
                other => return self.err(format!("expected assignment operator, found {other}")),
            };
            return Ok(Stmt::Assign { target, op, value });
        }
        self.err(format!("expected statement, found {}", self.peek()))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat(Tok::Question) {
            let then = self.expr()?;
            self.expect(Tok::Colon)?;
            let els = self.expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            })
        } else {
            Ok(cond)
        }
    }

    fn bin_op(tok: &Tok) -> Option<(BinOp, u8)> {
        Some(match tok {
            Tok::OrOr => (BinOp::Or, 1),
            Tok::AndAnd => (BinOp::And, 2),
            Tok::Eq => (BinOp::Eq, 3),
            Tok::Ne => (BinOp::Ne, 3),
            Tok::Lt => (BinOp::Lt, 4),
            Tok::Gt => (BinOp::Gt, 4),
            Tok::Le => (BinOp::Le, 4),
            Tok::Ge => (BinOp::Ge, 4),
            Tok::Plus => (BinOp::Add, 5),
            Tok::Minus => (BinOp::Sub, 5),
            Tok::Star => (BinOp::Mul, 6),
            Tok::Slash => (BinOp::Div, 6),
            Tok::Percent => (BinOp::Rem, 6),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = Self::bin_op(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(self.unary()?),
                })
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(self.unary()?),
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::IntLit(v) => Ok(Expr::IntLit(v)),
            Tok::FloatLit(v) => Ok(Expr::FloatLit(v)),
            Tok::LParen => {
                // Cast `(int)expr` / `(float)expr` or parenthesized expr.
                match self.peek().clone() {
                    Tok::Int => {
                        self.bump();
                        self.expect(Tok::RParen)?;
                        Ok(Expr::Cast {
                            to: Elem::Int,
                            expr: Box::new(self.unary()?),
                        })
                    }
                    Tok::Float => {
                        self.bump();
                        self.expect(Tok::RParen)?;
                        Ok(Expr::Cast {
                            to: Elem::Float,
                            expr: Box::new(self.unary()?),
                        })
                    }
                    _ => {
                        let e = self.expr()?;
                        self.expect(Tok::RParen)?;
                        Ok(e)
                    }
                }
            }
            Tok::Ident(name) => {
                // Built-ins: threadIdx.x etc.
                let builtin = match name.as_str() {
                    "threadIdx" => Some(BuiltinVar::ThreadIdxX),
                    "blockIdx" => Some(BuiltinVar::BlockIdxX),
                    "blockDim" => Some(BuiltinVar::BlockDimX),
                    "gridDim" => Some(BuiltinVar::GridDimX),
                    _ => None,
                };
                if let Some(b) = builtin {
                    self.expect(Tok::Dot)?;
                    let axis = self.ident()?;
                    let b = match axis.as_str() {
                        "x" => b,
                        "y" => match b {
                            BuiltinVar::ThreadIdxX => BuiltinVar::ThreadIdxY,
                            BuiltinVar::BlockIdxX => BuiltinVar::BlockIdxY,
                            BuiltinVar::BlockDimX => BuiltinVar::BlockDimY,
                            BuiltinVar::GridDimX => BuiltinVar::GridDimY,
                            // The lookup table above only produces X
                            // variants.
                            other => other,
                        },
                        _ => return self.err("only 1-D and 2-D grids are supported (`.x`/`.y`)"),
                    };
                    return Ok(Expr::Builtin(b));
                }
                if self.eat(Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(Tok::RParen) {
                                break;
                            }
                            self.expect(Tok::Comma)?;
                        }
                    }
                    return Ok(Expr::Call { name, args });
                }
                if self.eat(Tok::LBracket) {
                    let index = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    return Ok(Expr::Index {
                        base: name,
                        index: Box::new(index),
                    });
                }
                Ok(Expr::Var(name))
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAXPY: &str = r#"
        __global__ void saxpy(float* y, const float* x, float a, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                y[i] = a * x[i] + y[i];
            }
        }
    "#;

    #[test]
    fn parses_saxpy() {
        let ks = parse(SAXPY).unwrap();
        assert_eq!(ks.len(), 1);
        let k = &ks[0];
        assert_eq!(k.name, "saxpy");
        assert_eq!(k.params.len(), 4);
        assert_eq!(
            k.params[1].ty,
            ParamType::Ptr {
                elem: Elem::Float,
                is_const: true
            }
        );
        assert_eq!(k.body.len(), 2);
    }

    #[test]
    fn parses_for_loop_and_atomic() {
        let src = r#"
            __global__ void dot(const float* a, const float* b, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                float acc = 0.0;
                for (int j = i; j < n; j += blockDim.x * gridDim.x) {
                    acc += a[j] * b[j];
                }
                atomicAdd(&out[0], acc);
            }
        "#;
        let k = &parse(src).unwrap()[0];
        assert!(matches!(k.body[2], Stmt::For { .. }));
        assert!(matches!(k.body[3], Stmt::AtomicAdd { .. }));
    }

    #[test]
    fn parses_multiple_kernels() {
        let src = "__global__ void a(int n) { return; } __global__ void b(int n) { return; }";
        let ks = parse(src).unwrap();
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[1].name, "b");
    }

    #[test]
    fn parses_ternary_cast_and_calls() {
        let src = r#"
            __global__ void f(float* y, int n) {
                int i = threadIdx.x;
                float v = (float)i;
                y[i] = i < n ? expf(v) : sqrtf(v + 1.0);
            }
        "#;
        let k = &parse(src).unwrap()[0];
        assert_eq!(k.body.len(), 3);
    }

    #[test]
    fn accepts_2d_rejects_3d_grids() {
        assert!(parse("__global__ void f(int n) { int i = threadIdx.y; }").is_ok());
        let err = parse("__global__ void f(int n) { int i = threadIdx.z; }").unwrap_err();
        assert!(err.message.contains("2-D"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not a kernel").is_err());
        assert!(parse("").is_err());
        assert!(parse("__global__ void f(int n) {").is_err());
    }

    #[test]
    fn precedence_is_conventional() {
        let src = "__global__ void f(float* y) { y[0] = 1.0 + 2.0 * 3.0; }";
        let k = &parse(src).unwrap()[0];
        let Stmt::Assign { value, .. } = &k.body[0] else {
            panic!("expected assign");
        };
        // 1 + (2 * 3), not (1 + 2) * 3
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = value
        else {
            panic!("expected add at top: {value:?}");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn else_branch_binds() {
        let src = r#"
            __global__ void f(float* y, int n) {
                int i = threadIdx.x;
                if (i < n) y[i] = 1.0; else y[i] = 2.0;
            }
        "#;
        let k = &parse(src).unwrap()[0];
        let Stmt::If { els, .. } = &k.body[1] else {
            panic!("expected if")
        };
        assert_eq!(els.len(), 1);
    }
}
