//! Data-race detection for kernels.
//!
//! On a real GPU (and in this crate's parallel interpreter) a kernel where
//! two threads plainly write the same element has unspecified results
//! (last-write-wins). `launch_checked` executes the kernel *sequentially*,
//! recording which thread wrote and read every buffer element, and reports
//! the first write-write or read-write conflict between distinct threads —
//! the tool a CUDA developer reaches for with `compute-sanitizer --tool
//! racecheck`.
//!
//! `atomicAdd` is exempt by definition: atomics are how kernels are
//! *supposed* to share elements.

use std::collections::HashMap;

use crate::interp::{KernelArg, LaunchError};
use crate::typeck::CheckedKernel;

/// A detected race between two simulated GPU threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Pointer parameter position.
    pub param: usize,
    /// Element index both threads touched.
    pub index: usize,
    /// Global id of the first-writing thread.
    pub first_writer: u64,
    /// Global id of the conflicting thread.
    pub second: u64,
    /// Whether the second access was a write (write-write) or a read
    /// (read-after-write from a different thread without synchronization).
    pub second_is_write: bool,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} race on parameter {} element {}: thread {} wrote, thread {} {}",
            if self.second_is_write {
                "write-write"
            } else {
                "read-write"
            },
            self.param,
            self.index,
            self.first_writer,
            self.second,
            if self.second_is_write {
                "also wrote"
            } else {
                "read"
            },
        )
    }
}

/// Outcome of a checked launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Races found (empty = race-free under this input).
    pub races: Vec<Race>,
    /// Threads executed.
    pub threads: u64,
}

impl RaceReport {
    /// True when no race was observed.
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }
}

/// Executes the kernel one simulated thread at a time (grid order) by
/// substituting the grid builtins with constants and running each thread
/// through the traced interpreter, tracking per-element access history and
/// reporting inter-thread conflicts. Results are written to the buffers
/// exactly as a sequential execution would produce them.
///
/// This is O(total accesses) in memory and far slower than
/// [`crate::launch`]; use it in tests and debugging, not production runs.
pub fn launch_checked(
    kernel: &CheckedKernel,
    grid: u32,
    block: u32,
    args: &mut [KernelArg<'_>],
    max_races: usize,
) -> Result<RaceReport, LaunchError> {
    // Per (param, index): last writer thread id; set of reader thread ids is
    // not needed — only the last writer matters for both conflict kinds.
    let mut last_writer: HashMap<(usize, usize), u64> = HashMap::new();
    let mut races = Vec::new();
    let mut threads = 0u64;

    // Execute one thread at a time by launching a 1x1 sub-grid with
    // translated builtin indices. Rather than re-implementing the
    // interpreter, we reuse it through a shim kernel view: the interpreter
    // exposes per-thread execution only via full launches, so here we run
    // <<<1,1>>> per (bid, tid) against a kernel whose builtins are
    // substituted. Substitution is cheap: builtins are dense in the IR.
    let total = grid as u64 * block as u64;
    for gid in 0..total {
        let bid = (gid / block as u64) as u32;
        let tid = (gid % block as u64) as u32;
        let shim = substitute_builtins(kernel, bid, tid, grid, block);
        let log = crate::interp::launch_traced(&shim, args, 1 << 24)?;
        threads += 1;
        for (param, index, is_write, is_atomic) in log {
            if is_atomic {
                continue;
            }
            let key = (param, index);
            if is_write {
                if let Some(&w) = last_writer.get(&key) {
                    if w != gid && races.len() < max_races {
                        races.push(Race {
                            param,
                            index,
                            first_writer: w,
                            second: gid,
                            second_is_write: true,
                        });
                    }
                }
                last_writer.insert(key, gid);
            } else if let Some(&w) = last_writer.get(&key) {
                if w != gid && races.len() < max_races {
                    races.push(Race {
                        param,
                        index,
                        first_writer: w,
                        second: gid,
                        second_is_write: false,
                    });
                }
            }
        }
        // NOTE: race *recording* saturates at `max_races`, but execution
        // continues so buffer contents always match a full sequential run.
    }
    Ok(RaceReport { races, threads })
}

/// Rewrites grid builtins to constants so a kernel body can be run as a
/// single thread of a larger virtual launch.
fn substitute_builtins(
    kernel: &CheckedKernel,
    bid: u32,
    tid: u32,
    grid: u32,
    block: u32,
) -> CheckedKernel {
    use crate::ast::BuiltinVar;
    use crate::typeck::{RExpr, RStmt};

    fn sub_e(e: &RExpr, bid: u32, tid: u32, grid: u32, block: u32) -> RExpr {
        match e {
            RExpr::Builtin(b) => RExpr::IntLit(match b {
                BuiltinVar::ThreadIdxX => tid as i32,
                BuiltinVar::BlockIdxX => bid as i32,
                BuiltinVar::BlockDimX => block as i32,
                BuiltinVar::GridDimX => grid as i32,
                // The race checker runs 1-D launches; 2-D kernels collapse
                // their y dimension to a single lane.
                BuiltinVar::ThreadIdxY | BuiltinVar::BlockIdxY => 0,
                BuiltinVar::BlockDimY | BuiltinVar::GridDimY => 1,
            }),
            RExpr::Load { param, elem, index } => RExpr::Load {
                param: *param,
                elem: *elem,
                index: Box::new(sub_e(index, bid, tid, grid, block)),
            },
            RExpr::Unary { op, elem, expr } => RExpr::Unary {
                op: *op,
                elem: *elem,
                expr: Box::new(sub_e(expr, bid, tid, grid, block)),
            },
            RExpr::Binary { op, elem, lhs, rhs } => RExpr::Binary {
                op: *op,
                elem: *elem,
                lhs: Box::new(sub_e(lhs, bid, tid, grid, block)),
                rhs: Box::new(sub_e(rhs, bid, tid, grid, block)),
            },
            RExpr::Call { func, args } => RExpr::Call {
                func: *func,
                args: args
                    .iter()
                    .map(|a| sub_e(a, bid, tid, grid, block))
                    .collect(),
            },
            RExpr::Ternary {
                cond,
                elem,
                then,
                els,
            } => RExpr::Ternary {
                cond: Box::new(sub_e(cond, bid, tid, grid, block)),
                elem: *elem,
                then: Box::new(sub_e(then, bid, tid, grid, block)),
                els: Box::new(sub_e(els, bid, tid, grid, block)),
            },
            RExpr::Cast { to, expr } => RExpr::Cast {
                to: *to,
                expr: Box::new(sub_e(expr, bid, tid, grid, block)),
            },
            other => other.clone(),
        }
    }

    fn sub_s(s: &RStmt, bid: u32, tid: u32, grid: u32, block: u32) -> RStmt {
        match s {
            RStmt::SetLocal { slot, value } => RStmt::SetLocal {
                slot: *slot,
                value: sub_e(value, bid, tid, grid, block),
            },
            RStmt::Store {
                param,
                index,
                value,
            } => RStmt::Store {
                param: *param,
                index: sub_e(index, bid, tid, grid, block),
                value: sub_e(value, bid, tid, grid, block),
            },
            RStmt::AtomicAdd {
                param,
                index,
                value,
            } => RStmt::AtomicAdd {
                param: *param,
                index: sub_e(index, bid, tid, grid, block),
                value: sub_e(value, bid, tid, grid, block),
            },
            RStmt::If { cond, then, els } => RStmt::If {
                cond: sub_e(cond, bid, tid, grid, block),
                then: then
                    .iter()
                    .map(|x| sub_s(x, bid, tid, grid, block))
                    .collect(),
                els: els
                    .iter()
                    .map(|x| sub_s(x, bid, tid, grid, block))
                    .collect(),
            },
            RStmt::For {
                init,
                cond,
                step,
                body,
            } => RStmt::For {
                init: Box::new(sub_s(init, bid, tid, grid, block)),
                cond: sub_e(cond, bid, tid, grid, block),
                step: Box::new(sub_s(step, bid, tid, grid, block)),
                body: body
                    .iter()
                    .map(|x| sub_s(x, bid, tid, grid, block))
                    .collect(),
            },
            RStmt::While { cond, body } => RStmt::While {
                cond: sub_e(cond, bid, tid, grid, block),
                body: body
                    .iter()
                    .map(|x| sub_s(x, bid, tid, grid, block))
                    .collect(),
            },
            RStmt::Return => RStmt::Return,
        }
    }

    CheckedKernel {
        name: kernel.name.clone(),
        params: kernel.params.clone(),
        local_slots: kernel.local_slots,
        local_types: kernel.local_types.clone(),
        body: kernel
            .body
            .iter()
            .map(|s| sub_s(s, bid, tid, grid, block))
            .collect(),
        reads: kernel.reads.clone(),
        writes: kernel.writes.clone(),
    }
}
