//! Lexer for the restricted CUDA C dialect.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and identifiers
    Ident(String),
    IntLit(i64),
    FloatLit(f64),
    // Keywords
    Global, // __global__
    Device, // __device__ (accepted, ignored)
    Void,
    Int,
    Float,
    Const,
    If,
    Else,
    For,
    While,
    Return,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    Question,
    Colon,
    Amp,
    // Operators
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PlusPlus,
    MinusMinus,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::IntLit(v) => write!(f, "integer `{v}`"),
            Tok::FloatLit(v) => write!(f, "float `{v}`"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source position (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Lexical error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, skipping `//` and `/* */` comments.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let mut out = Vec::new();

    macro_rules! err {
        ($($a:tt)*) => {
            return Err(LexError { message: format!($($a)*), line, col })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tl, tc) = (line, col);
        let advance = |i: &mut usize, line: &mut u32, col: &mut u32, n: usize| {
            for k in 0..n {
                if bytes[*i + k] == b'\n' {
                    *line += 1;
                    *col = 1;
                } else {
                    *col += 1;
                }
            }
            *i += n;
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => advance(&mut i, &mut line, &mut col, 1),
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    advance(&mut i, &mut line, &mut col, 1);
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                advance(&mut i, &mut line, &mut col, 2);
                loop {
                    if i + 1 >= bytes.len() {
                        err!("unterminated block comment");
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        advance(&mut i, &mut line, &mut col, 2);
                        break;
                    }
                    advance(&mut i, &mut line, &mut col, 1);
                }
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] as char {
                        '0'..='9' => advance(&mut i, &mut line, &mut col, 1),
                        '.' if !is_float => {
                            is_float = true;
                            advance(&mut i, &mut line, &mut col, 1);
                        }
                        'e' | 'E' => {
                            is_float = true;
                            advance(&mut i, &mut line, &mut col, 1);
                            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                                advance(&mut i, &mut line, &mut col, 1);
                            }
                        }
                        'f' | 'F' => {
                            is_float = true;
                            advance(&mut i, &mut line, &mut col, 1);
                            break;
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i])
                    .expect("ascii")
                    .trim_end_matches(['f', 'F']);
                let tok = if is_float {
                    match text.parse::<f64>() {
                        Ok(v) => Tok::FloatLit(v),
                        Err(_) => err!("bad float literal `{text}`"),
                    }
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => Tok::IntLit(v),
                        Err(_) => err!("bad integer literal `{text}`"),
                    }
                };
                out.push(Spanned {
                    tok,
                    line: tl,
                    col: tc,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    advance(&mut i, &mut line, &mut col, 1);
                }
                let word = std::str::from_utf8(&bytes[start..i]).expect("ascii");
                let tok = match word {
                    "__global__" => Tok::Global,
                    "__device__" | "__restrict__" | "extern" | "static" => Tok::Device,
                    "void" => Tok::Void,
                    "int" | "long" | "size_t" | "unsigned" => Tok::Int,
                    "float" | "double" => Tok::Float,
                    "const" => Tok::Const,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "for" => Tok::For,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned {
                    tok,
                    line: tl,
                    col: tc,
                });
            }
            _ => {
                // Operators and punctuation, longest match first.
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (tok, n) = match two {
                    "==" => (Tok::Eq, 2),
                    "!=" => (Tok::Ne, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    "+=" => (Tok::PlusAssign, 2),
                    "-=" => (Tok::MinusAssign, 2),
                    "*=" => (Tok::StarAssign, 2),
                    "/=" => (Tok::SlashAssign, 2),
                    "++" => (Tok::PlusPlus, 2),
                    "--" => (Tok::MinusMinus, 2),
                    _ => match c {
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '{' => (Tok::LBrace, 1),
                        '}' => (Tok::RBrace, 1),
                        '[' => (Tok::LBracket, 1),
                        ']' => (Tok::RBracket, 1),
                        ',' => (Tok::Comma, 1),
                        ';' => (Tok::Semi, 1),
                        '.' => (Tok::Dot, 1),
                        '?' => (Tok::Question, 1),
                        ':' => (Tok::Colon, 1),
                        '&' => (Tok::Amp, 1),
                        '*' => (Tok::Star, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '/' => (Tok::Slash, 1),
                        '%' => (Tok::Percent, 1),
                        '=' => (Tok::Assign, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        '!' => (Tok::Not, 1),
                        other => err!("unexpected character `{other}`"),
                    },
                };
                out.push(Spanned {
                    tok,
                    line: tl,
                    col: tc,
                });
                advance(&mut i, &mut line, &mut col, n);
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_kernel_header() {
        let t = toks("__global__ void f(float* x, const int n)");
        assert_eq!(
            t,
            vec![
                Tok::Global,
                Tok::Void,
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::Float,
                Tok::Star,
                Tok::Ident("x".into()),
                Tok::Comma,
                Tok::Const,
                Tok::Int,
                Tok::Ident("n".into()),
                Tok::RParen,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("1 2.5 1e3 3.0f 42"),
            vec![
                Tok::IntLit(1),
                Tok::FloatLit(2.5),
                Tok::FloatLit(1000.0),
                Tok::FloatLit(3.0),
                Tok::IntLit(42),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let t = toks("a // line\n /* block\n comment */ b");
        assert_eq!(
            t,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn two_char_operators_win() {
        assert_eq!(
            toks("<= == += ++ &&"),
            vec![
                Tok::Le,
                Tok::Eq,
                Tok::PlusAssign,
                Tok::PlusPlus,
                Tok::AndAnd,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn reports_position() {
        let err = lex("a\n  @").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* nope").is_err());
    }
}
