//! Abstract syntax tree of the kernel dialect.

/// Scalar element types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Elem {
    /// 32-bit signed integer (`int`).
    Int,
    /// 32-bit float (`float`; `double` is accepted and narrowed).
    Float,
}

/// Parameter types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamType {
    /// Scalar passed by value.
    Scalar(Elem),
    /// Device pointer.
    Ptr {
        /// Element type.
        elem: Elem,
        /// `const T*`: the kernel may not write through it.
        is_const: bool,
    },
}

/// One formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: ParamType,
}

/// CUDA built-in index variables (1-D and 2-D grids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinVar {
    /// `threadIdx.x`
    ThreadIdxX,
    /// `blockIdx.x`
    BlockIdxX,
    /// `blockDim.x`
    BlockDimX,
    /// `gridDim.x`
    GridDimX,
    /// `threadIdx.y`
    ThreadIdxY,
    /// `blockIdx.y`
    BlockIdxY,
    /// `blockDim.y`
    BlockDimY,
    /// `gridDim.y`
    GridDimY,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Whether the operator yields a boolean (encoded as int 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Gt
                | BinOp::Le
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Local variable or parameter reference.
    Var(String),
    /// CUDA built-in.
    Builtin(BuiltinVar),
    /// `base[index]` load.
    Index {
        /// Pointer parameter name.
        base: String,
        /// Index expression (int).
        index: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Intrinsic call (`expf`, `sqrtf`, ...).
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `cond ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        els: Box<Expr>,
    },
    /// `(int)e` or `(float)e`.
    Cast {
        /// Target element type.
        to: Elem,
        /// Operand.
        expr: Box<Expr>,
    },
}

/// Assignable places.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Local variable.
    Var(String),
    /// `base[index]` store.
    Index {
        /// Pointer parameter name.
        base: String,
        /// Index expression.
        index: Box<Expr>,
    },
}

/// Compound-assignment flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration, e.g. `int i = ...;`.
    Decl {
        /// Element type.
        ty: Elem,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Assignment through an lvalue.
    Assign {
        /// Target place.
        target: LValue,
        /// `=`, `+=`, ...
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `atomicAdd(&base[index], value)`.
    AtomicAdd {
        /// Pointer parameter name.
        base: String,
        /// Element index.
        index: Expr,
        /// Addend.
        value: Expr,
    },
    /// Conditional.
    If {
        /// Condition (int/bool).
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (possibly empty).
        els: Vec<Stmt>,
    },
    /// C-style for loop.
    For {
        /// Init statement (decl or assign).
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Step statement.
        step: Box<Stmt>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// While loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Early return (kernels are void).
    Return,
}

/// A parsed `__global__` kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Index of a parameter by name.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }
}
