//! Type checking and lowering to a slot-resolved IR.
//!
//! The interpreter executes millions of simulated threads, so name lookups
//! are resolved once here: locals become dense slot indices, parameters
//! become positional references, and implicit C-style int->float promotions
//! are made explicit.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{self, AssignOp, BinOp, BuiltinVar, Elem, Kernel, ParamType, UnOp};

/// Type/semantic error.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

/// Float intrinsics available to kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrinsic {
    /// `expf(x)` — natural exponential.
    Expf,
    /// `logf(x)` — natural logarithm.
    Logf,
    /// `sqrtf(x)` — square root.
    Sqrtf,
    /// `fabsf(x)` — absolute value.
    Fabsf,
    /// `erff(x)` — error function.
    Erff,
    /// `powf(x, y)` — power.
    Powf,
    /// `fminf(x, y)` — minimum.
    Fminf,
    /// `fmaxf(x, y)` — maximum.
    Fmaxf,
    /// `sinf(x)` — sine.
    Sinf,
    /// `cosf(x)` — cosine.
    Cosf,
    /// `tanhf(x)` — hyperbolic tangent.
    Tanhf,
    /// Standard normal CDF (used by Black-Scholes); provided as an
    /// intrinsic the way CUDA provides `normcdff`.
    Normcdff,
}

impl Intrinsic {
    fn lookup(name: &str) -> Option<(Intrinsic, usize)> {
        Some(match name {
            "expf" | "exp" => (Intrinsic::Expf, 1),
            "logf" | "log" => (Intrinsic::Logf, 1),
            "sqrtf" | "sqrt" => (Intrinsic::Sqrtf, 1),
            "fabsf" | "fabs" | "abs" => (Intrinsic::Fabsf, 1),
            "erff" | "erf" => (Intrinsic::Erff, 1),
            "powf" | "pow" => (Intrinsic::Powf, 2),
            "fminf" | "fmin" | "min" => (Intrinsic::Fminf, 2),
            "fmaxf" | "fmax" | "max" => (Intrinsic::Fmaxf, 2),
            "sinf" | "sin" => (Intrinsic::Sinf, 1),
            "cosf" | "cos" => (Intrinsic::Cosf, 1),
            "tanhf" | "tanh" => (Intrinsic::Tanhf, 1),
            "normcdff" | "normcdf" => (Intrinsic::Normcdff, 1),
            _ => return None,
        })
    }

    /// Evaluates the intrinsic.
    pub fn eval(self, args: &[f32]) -> f32 {
        match self {
            Intrinsic::Expf => args[0].exp(),
            Intrinsic::Logf => args[0].ln(),
            Intrinsic::Sqrtf => args[0].sqrt(),
            Intrinsic::Fabsf => args[0].abs(),
            Intrinsic::Erff => erf(args[0]),
            Intrinsic::Powf => args[0].powf(args[1]),
            Intrinsic::Fminf => args[0].min(args[1]),
            Intrinsic::Fmaxf => args[0].max(args[1]),
            Intrinsic::Sinf => args[0].sin(),
            Intrinsic::Cosf => args[0].cos(),
            Intrinsic::Tanhf => args[0].tanh(),
            Intrinsic::Normcdff => 0.5 * (1.0 + erf(args[0] / std::f32::consts::SQRT_2)),
        }
    }
}

/// Error function (Abramowitz & Stegun 7.1.26, |err| <= 1.5e-7) — `std` has
/// no `erf`, CUDA does.
#[allow(clippy::excessive_precision)] // published coefficients, kept verbatim
pub fn erf(x: f32) -> f32 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Lowered expressions. Every node knows its element type.
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    /// Integer constant.
    IntLit(i32),
    /// Float constant.
    FloatLit(f32),
    /// Local slot read.
    Local(u16, Elem),
    /// Scalar parameter read.
    ParamScalar(u16, Elem),
    /// Grid builtin.
    Builtin(BuiltinVar),
    /// Buffer load `params[param][index]`.
    Load {
        /// Parameter position.
        param: u16,
        /// Element type of the buffer.
        elem: Elem,
        /// Index expression (int).
        index: Box<RExpr>,
    },
    /// Unary op.
    Unary {
        /// Operator.
        op: UnOp,
        /// Result type.
        elem: Elem,
        /// Operand.
        expr: Box<RExpr>,
    },
    /// Binary op (operands pre-promoted to `elem`).
    Binary {
        /// Operator.
        op: BinOp,
        /// Operand/result element type (comparisons yield Int).
        elem: Elem,
        /// Left operand.
        lhs: Box<RExpr>,
        /// Right operand.
        rhs: Box<RExpr>,
    },
    /// Intrinsic call (float args, float result).
    Call {
        /// Which intrinsic.
        func: Intrinsic,
        /// Arguments.
        args: Vec<RExpr>,
    },
    /// Conditional expression.
    Ternary {
        /// Condition (int).
        cond: Box<RExpr>,
        /// Result type.
        elem: Elem,
        /// Then value.
        then: Box<RExpr>,
        /// Else value.
        els: Box<RExpr>,
    },
    /// Explicit conversion.
    Cast {
        /// Target type.
        to: Elem,
        /// Operand.
        expr: Box<RExpr>,
    },
}

impl RExpr {
    /// The expression's element type.
    pub fn elem(&self) -> Elem {
        match self {
            RExpr::IntLit(_) | RExpr::Builtin(_) => Elem::Int,
            RExpr::FloatLit(_) => Elem::Float,
            RExpr::Local(_, e) | RExpr::ParamScalar(_, e) => *e,
            RExpr::Load { elem, .. } => *elem,
            RExpr::Unary { elem, .. } => *elem,
            RExpr::Binary { op, elem, .. } => {
                if op.is_comparison() {
                    Elem::Int
                } else {
                    *elem
                }
            }
            RExpr::Call { .. } => Elem::Float,
            RExpr::Ternary { elem, .. } => *elem,
            RExpr::Cast { to, .. } => *to,
        }
    }
}

/// Lowered statements.
#[derive(Debug, Clone, PartialEq)]
pub enum RStmt {
    /// Write a local slot.
    SetLocal {
        /// Slot.
        slot: u16,
        /// Value (type matches slot).
        value: RExpr,
    },
    /// Store to a buffer.
    Store {
        /// Parameter position.
        param: u16,
        /// Element index (int).
        index: RExpr,
        /// Stored value.
        value: RExpr,
    },
    /// Atomic float/int add into a buffer.
    AtomicAdd {
        /// Parameter position.
        param: u16,
        /// Element index.
        index: RExpr,
        /// Addend.
        value: RExpr,
    },
    /// Conditional.
    If {
        /// Condition (int).
        cond: RExpr,
        /// Then body.
        then: Vec<RStmt>,
        /// Else body.
        els: Vec<RStmt>,
    },
    /// Loop with explicit init/step statements.
    For {
        /// Init.
        init: Box<RStmt>,
        /// Condition.
        cond: RExpr,
        /// Step.
        step: Box<RStmt>,
        /// Body.
        body: Vec<RStmt>,
    },
    /// While loop.
    While {
        /// Condition.
        cond: RExpr,
        /// Body.
        body: Vec<RStmt>,
    },
    /// Early thread exit.
    Return,
}

/// A type-checked, slot-resolved kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedKernel {
    /// Kernel name.
    pub name: String,
    /// Parameter list (as declared).
    pub params: Vec<ast::Param>,
    /// Number of local slots a thread needs.
    pub local_slots: u16,
    /// Element type of each local slot.
    pub local_types: Vec<Elem>,
    /// Lowered body.
    pub body: Vec<RStmt>,
    /// Per-parameter: kernel reads through the pointer.
    pub reads: Vec<bool>,
    /// Per-parameter: kernel writes through the pointer.
    pub writes: Vec<bool>,
}

struct Ctx<'k> {
    kernel: &'k Kernel,
    scopes: Vec<HashMap<String, u16>>,
    local_types: Vec<Elem>,
    reads: Vec<bool>,
    writes: Vec<bool>,
}

impl<'k> Ctx<'k> {
    fn lookup_local(&self, name: &str) -> Option<u16> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, name: &str, ty: Elem) -> Result<u16, TypeError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(name) {
            return Err(TypeError(format!("`{name}` redeclared in the same scope")));
        }
        let slot = self.local_types.len() as u16;
        self.local_types.push(ty);
        scope.insert(name.to_string(), slot);
        Ok(slot)
    }

    fn pointer_param(&mut self, name: &str, writing: bool) -> Result<(u16, Elem), TypeError> {
        let idx = self
            .kernel
            .param_index(name)
            .ok_or_else(|| TypeError(format!("`{name}` is not a parameter")))?;
        match self.kernel.params[idx].ty {
            ParamType::Ptr { elem, is_const } => {
                if writing && is_const {
                    return Err(TypeError(format!(
                        "cannot write through const pointer `{name}`"
                    )));
                }
                if writing {
                    self.writes[idx] = true;
                } else {
                    self.reads[idx] = true;
                }
                Ok((idx as u16, elem))
            }
            ParamType::Scalar(_) => Err(TypeError(format!("`{name}` is a scalar, not a pointer"))),
        }
    }

    fn coerce(expr: RExpr, to: Elem) -> RExpr {
        if expr.elem() == to {
            expr
        } else {
            RExpr::Cast {
                to,
                expr: Box::new(expr),
            }
        }
    }

    fn expr(&mut self, e: &ast::Expr) -> Result<RExpr, TypeError> {
        Ok(match e {
            ast::Expr::IntLit(v) => {
                let v = i32::try_from(*v)
                    .map_err(|_| TypeError(format!("integer literal {v} overflows int")))?;
                RExpr::IntLit(v)
            }
            ast::Expr::FloatLit(v) => RExpr::FloatLit(*v as f32),
            ast::Expr::Builtin(b) => RExpr::Builtin(*b),
            ast::Expr::Var(name) => {
                if let Some(slot) = self.lookup_local(name) {
                    RExpr::Local(slot, self.local_types[slot as usize])
                } else if let Some(idx) = self.kernel.param_index(name) {
                    match self.kernel.params[idx].ty {
                        ParamType::Scalar(elem) => RExpr::ParamScalar(idx as u16, elem),
                        ParamType::Ptr { .. } => {
                            return Err(TypeError(format!(
                                "pointer `{name}` used as a scalar value"
                            )))
                        }
                    }
                } else {
                    return Err(TypeError(format!("unknown variable `{name}`")));
                }
            }
            ast::Expr::Index { base, index } => {
                let (param, elem) = self.pointer_param(base, false)?;
                let index = Self::coerce(self.expr(index)?, Elem::Int);
                RExpr::Load {
                    param,
                    elem,
                    index: Box::new(index),
                }
            }
            ast::Expr::Unary { op, expr } => {
                let inner = self.expr(expr)?;
                let elem = match op {
                    UnOp::Neg => inner.elem(),
                    UnOp::Not => Elem::Int,
                };
                let inner = if *op == UnOp::Not {
                    Self::coerce(inner, Elem::Int)
                } else {
                    inner
                };
                RExpr::Unary {
                    op: *op,
                    elem,
                    expr: Box::new(inner),
                }
            }
            ast::Expr::Binary { op, lhs, rhs } => {
                let l = self.expr(lhs)?;
                let r = self.expr(rhs)?;
                // C-style promotion: float wins.
                let elem = if l.elem() == Elem::Float || r.elem() == Elem::Float {
                    Elem::Float
                } else {
                    Elem::Int
                };
                if *op == BinOp::Rem && elem == Elem::Float {
                    return Err(TypeError("`%` requires integer operands".into()));
                }
                RExpr::Binary {
                    op: *op,
                    elem,
                    lhs: Box::new(Self::coerce(l, elem)),
                    rhs: Box::new(Self::coerce(r, elem)),
                }
            }
            ast::Expr::Call { name, args } => {
                let (func, arity) = Intrinsic::lookup(name)
                    .ok_or_else(|| TypeError(format!("unknown function `{name}`")))?;
                if args.len() != arity {
                    return Err(TypeError(format!(
                        "`{name}` expects {arity} argument(s), got {}",
                        args.len()
                    )));
                }
                let args = args
                    .iter()
                    .map(|a| Ok(Self::coerce(self.expr(a)?, Elem::Float)))
                    .collect::<Result<Vec<_>, TypeError>>()?;
                RExpr::Call { func, args }
            }
            ast::Expr::Ternary { cond, then, els } => {
                let cond = Self::coerce(self.expr(cond)?, Elem::Int);
                let t = self.expr(then)?;
                let f = self.expr(els)?;
                let elem = if t.elem() == Elem::Float || f.elem() == Elem::Float {
                    Elem::Float
                } else {
                    Elem::Int
                };
                RExpr::Ternary {
                    cond: Box::new(cond),
                    elem,
                    then: Box::new(Self::coerce(t, elem)),
                    els: Box::new(Self::coerce(f, elem)),
                }
            }
            ast::Expr::Cast { to, expr } => RExpr::Cast {
                to: *to,
                expr: Box::new(self.expr(expr)?),
            },
        })
    }

    fn stmt(&mut self, s: &ast::Stmt) -> Result<RStmt, TypeError> {
        Ok(match s {
            ast::Stmt::Decl { ty, name, init } => {
                let value = match init {
                    Some(e) => Self::coerce(self.expr(e)?, *ty),
                    None => match ty {
                        Elem::Int => RExpr::IntLit(0),
                        Elem::Float => RExpr::FloatLit(0.0),
                    },
                };
                let slot = self.declare(name, *ty)?;
                RStmt::SetLocal { slot, value }
            }
            ast::Stmt::Assign { target, op, value } => {
                let rhs = self.expr(value)?;
                match target {
                    ast::LValue::Var(name) => {
                        let slot = self.lookup_local(name).ok_or_else(|| {
                            TypeError(format!("assignment to unknown variable `{name}`"))
                        })?;
                        let ty = self.local_types[slot as usize];
                        let value = match op {
                            AssignOp::Set => Self::coerce(rhs, ty),
                            _ => RStmt_compound(RExpr::Local(slot, ty), *op, rhs, ty)?,
                        };
                        RStmt::SetLocal { slot, value }
                    }
                    ast::LValue::Index { base, index } => {
                        let (param, elem) = self.pointer_param(base, true)?;
                        let index_e = Self::coerce(self.expr(index)?, Elem::Int);
                        let value = match op {
                            AssignOp::Set => Self::coerce(rhs, elem),
                            _ => {
                                // Compound store also reads.
                                self.pointer_param(base, false)?;
                                let load = RExpr::Load {
                                    param,
                                    elem,
                                    index: Box::new(index_e.clone()),
                                };
                                RStmt_compound(load, *op, rhs, elem)?
                            }
                        };
                        RStmt::Store {
                            param,
                            index: index_e,
                            value,
                        }
                    }
                }
            }
            ast::Stmt::AtomicAdd { base, index, value } => {
                let (param, elem) = self.pointer_param(base, true)?;
                self.pointer_param(base, false)?; // atomics read too
                let index = Self::coerce(self.expr(index)?, Elem::Int);
                let value = Self::coerce(self.expr(value)?, elem);
                RStmt::AtomicAdd {
                    param,
                    index,
                    value,
                }
            }
            ast::Stmt::If { cond, then, els } => {
                let cond = Self::coerce(self.expr(cond)?, Elem::Int);
                let then = self.block(then)?;
                let els = self.block(els)?;
                RStmt::If { cond, then, els }
            }
            ast::Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // The init declaration scopes over cond/step/body.
                self.scopes.push(HashMap::new());
                let init = Box::new(self.stmt(init)?);
                let cond = Self::coerce(self.expr(cond)?, Elem::Int);
                let step = Box::new(self.stmt(step)?);
                let body = self.block(body)?;
                self.scopes.pop();
                RStmt::For {
                    init,
                    cond,
                    step,
                    body,
                }
            }
            ast::Stmt::While { cond, body } => {
                let cond = Self::coerce(self.expr(cond)?, Elem::Int);
                let body = self.block(body)?;
                RStmt::While { cond, body }
            }
            ast::Stmt::Return => RStmt::Return,
        })
    }

    fn block(&mut self, stmts: &[ast::Stmt]) -> Result<Vec<RStmt>, TypeError> {
        self.scopes.push(HashMap::new());
        let out = stmts.iter().map(|s| self.stmt(s)).collect();
        self.scopes.pop();
        out
    }
}

#[allow(non_snake_case)]
fn RStmt_compound(lhs: RExpr, op: AssignOp, rhs: RExpr, ty: Elem) -> Result<RExpr, TypeError> {
    let bin = match op {
        AssignOp::Add => BinOp::Add,
        AssignOp::Sub => BinOp::Sub,
        AssignOp::Mul => BinOp::Mul,
        AssignOp::Div => BinOp::Div,
        AssignOp::Set => unreachable!("Set handled by caller"),
    };
    Ok(RExpr::Binary {
        op: bin,
        elem: ty,
        lhs: Box::new(lhs),
        rhs: Box::new(Ctx::coerce(rhs, ty)),
    })
}

/// Checks and lowers a parsed kernel.
pub fn check(kernel: &Kernel) -> Result<CheckedKernel, TypeError> {
    // Duplicate parameter names would make slot resolution ambiguous.
    for (i, p) in kernel.params.iter().enumerate() {
        if kernel.params[..i].iter().any(|q| q.name == p.name) {
            return Err(TypeError(format!("duplicate parameter `{}`", p.name)));
        }
    }
    let n = kernel.params.len();
    let mut ctx = Ctx {
        kernel,
        scopes: vec![HashMap::new()],
        local_types: Vec::new(),
        reads: vec![false; n],
        writes: vec![false; n],
    };
    let body = kernel
        .body
        .iter()
        .map(|s| ctx.stmt(s))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CheckedKernel {
        name: kernel.name.clone(),
        params: kernel.params.clone(),
        local_slots: ctx.local_types.len() as u16,
        local_types: ctx.local_types,
        body,
        reads: ctx.reads,
        writes: ctx.writes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn checked(src: &str) -> Result<CheckedKernel, TypeError> {
        check(&parse(src).unwrap()[0])
    }

    #[test]
    fn saxpy_checks_and_tracks_rw() {
        let k = checked(
            "__global__ void saxpy(float* y, const float* x, float a, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[i] = a * x[i] + y[i]; }
            }",
        )
        .unwrap();
        assert_eq!(k.local_slots, 1);
        assert_eq!(k.reads, vec![true, true, false, false]);
        assert_eq!(k.writes, vec![true, false, false, false]);
    }

    #[test]
    fn const_write_rejected() {
        let err = checked("__global__ void f(const float* x) { x[0] = 1.0; }").unwrap_err();
        assert!(err.0.contains("const"));
    }

    #[test]
    fn unknown_variable_rejected() {
        assert!(checked("__global__ void f(int n) { q = 1; }").is_err());
    }

    #[test]
    fn unknown_function_rejected() {
        let err = checked("__global__ void f(float* y) { y[0] = frobnicate(1.0); }").unwrap_err();
        assert!(err.0.contains("frobnicate"));
    }

    #[test]
    fn pointer_as_scalar_rejected() {
        assert!(checked("__global__ void f(float* y) { y[0] = y + 1.0; }").is_err());
    }

    #[test]
    fn float_modulo_rejected() {
        assert!(checked("__global__ void f(float* y) { y[0] = 1.0 % 2.0; }").is_err());
    }

    #[test]
    fn int_promotes_to_float() {
        let k = checked("__global__ void f(float* y, int n) { y[0] = n + 0.5; }").unwrap();
        let RStmt::Store { value, .. } = &k.body[0] else {
            panic!()
        };
        assert_eq!(value.elem(), Elem::Float);
    }

    #[test]
    fn scoping_allows_shadow_in_inner_block() {
        let k = checked(
            "__global__ void f(float* y, int n) {
                int i = 0;
                if (n) { float i = 1.0; y[0] = i; }
                y[i] = 2.0;
            }",
        )
        .unwrap();
        assert_eq!(k.local_slots, 2);
    }

    #[test]
    fn redeclaration_in_same_scope_rejected() {
        assert!(checked("__global__ void f(int n) { int a = 0; int a = 1; }").is_err());
    }

    #[test]
    fn duplicate_params_rejected() {
        assert!(checked("__global__ void f(int n, float n) { return; }").is_err());
    }

    #[test]
    fn atomic_add_marks_read_write() {
        let k = checked(
            "__global__ void f(float* out, const float* a) {
                atomicAdd(&out[0], a[threadIdx.x]);
            }",
        )
        .unwrap();
        assert!(k.writes[0] && k.reads[0]);
        assert!(k.reads[1] && !k.writes[1]);
    }

    #[test]
    fn erf_is_accurate() {
        // Reference values from tables.
        assert!((erf(0.0) - 0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-5);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-5);
    }

    #[test]
    fn intrinsics_evaluate() {
        assert!((Intrinsic::Normcdff.eval(&[0.0]) - 0.5).abs() < 1e-6);
        assert_eq!(Intrinsic::Fmaxf.eval(&[1.0, 2.0]), 2.0);
        assert!((Intrinsic::Expf.eval(&[1.0]) - std::f32::consts::E).abs() < 1e-6);
    }
}
