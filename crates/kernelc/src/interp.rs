//! Parallel per-thread interpreter: the execution back end of `buildkernel`
//! in the local (real-execution) runtime.
//!
//! Threads within a block run sequentially; blocks fan out across CPU cores
//! with rayon. All buffer traffic goes through relaxed atomics, so even a
//! *racy* kernel is memory-safe here (last-write-wins, as on a real GPU)
//! rather than UB.

use std::sync::atomic::{AtomicI32, AtomicU32, Ordering};
use std::sync::Mutex;

use rayon::prelude::*;

use crate::ast::{BinOp, BuiltinVar, Elem, ParamType, UnOp};
use crate::typeck::{CheckedKernel, RExpr, RStmt};

/// Runtime launch failure.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// Argument count mismatch.
    Arity {
        /// Expected parameter count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// Argument type mismatch at a position.
    ArgType {
        /// Parameter position.
        index: usize,
        /// Explanation.
        expected: String,
    },
    /// A buffer access was out of bounds.
    OutOfBounds {
        /// Parameter position.
        param: usize,
        /// Offending element index.
        index: i64,
        /// Buffer length.
        len: usize,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// A loop exceeded the per-thread step budget.
    StepBudgetExceeded,
    /// Zero-sized grid or block.
    EmptyLaunch,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Arity { expected, got } => {
                write!(f, "kernel expects {expected} arguments, got {got}")
            }
            LaunchError::ArgType { index, expected } => {
                write!(f, "argument {index}: expected {expected}")
            }
            LaunchError::OutOfBounds { param, index, len } => write!(
                f,
                "out-of-bounds access through parameter {param}: index {index}, length {len}"
            ),
            LaunchError::DivideByZero => write!(f, "integer divide by zero"),
            LaunchError::StepBudgetExceeded => {
                write!(
                    f,
                    "per-thread step budget exceeded (possible infinite loop)"
                )
            }
            LaunchError::EmptyLaunch => write!(f, "grid and block sizes must be non-zero"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// A kernel launch argument.
pub enum KernelArg<'a> {
    /// Float buffer (device array).
    F32(&'a mut [f32]),
    /// Int buffer (device array).
    I32(&'a mut [i32]),
    /// Float scalar.
    Float(f32),
    /// Int scalar.
    Int(i32),
}

/// Execution statistics of a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchStats {
    /// Total simulated GPU threads executed.
    pub threads: u64,
}

#[derive(Clone, Copy)]
enum Val {
    I(i32),
    F(f32),
}

impl Val {
    #[inline]
    fn as_i(self) -> i32 {
        match self {
            Val::I(v) => v,
            Val::F(v) => v as i32,
        }
    }
    #[inline]
    fn as_f(self) -> f32 {
        match self {
            Val::I(v) => v as f32,
            Val::F(v) => v,
        }
    }
}

#[derive(Clone, Copy)]
enum Slot {
    F32Buf { ptr: *const AtomicU32, len: usize },
    I32Buf { ptr: *const AtomicI32, len: usize },
    Float(f32),
    Int(i32),
}

// SAFETY: buffer slots only expose atomics; scalars are Copy. The raw
// pointers originate from exclusive borrows held for the whole launch.
unsafe impl Send for Slot {}
unsafe impl Sync for Slot {}

struct Machine<'k> {
    kernel: &'k CheckedKernel,
    slots: Vec<Slot>,
    grid: (u32, u32),
    block: (u32, u32),
    step_budget: u64,
}

/// (param, element index, is_write, is_atomic) — recorded by traced runs.
pub(crate) type AccessLog = Vec<(usize, usize, bool, bool)>;

struct Thread<'m, 'k> {
    m: &'m Machine<'k>,
    locals: Vec<Val>,
    tid: (u32, u32),
    bid: (u32, u32),
    steps: u64,
    log: Option<AccessLog>,
}

enum Flow {
    Next,
    Return,
}

impl<'m, 'k> Thread<'m, 'k> {
    #[inline]
    fn charge(&mut self) -> Result<(), LaunchError> {
        self.steps += 1;
        if self.steps > self.m.step_budget {
            return Err(LaunchError::StepBudgetExceeded);
        }
        Ok(())
    }

    fn index(&self, param: u16, idx: i32) -> Result<usize, LaunchError> {
        let len = match self.m.slots[param as usize] {
            Slot::F32Buf { len, .. } | Slot::I32Buf { len, .. } => len,
            _ => unreachable!("typeck guarantees pointer params"),
        };
        if idx < 0 || idx as usize >= len {
            return Err(LaunchError::OutOfBounds {
                param: param as usize,
                index: idx as i64,
                len,
            });
        }
        Ok(idx as usize)
    }

    fn eval(&mut self, e: &RExpr) -> Result<Val, LaunchError> {
        Ok(match e {
            RExpr::IntLit(v) => Val::I(*v),
            RExpr::FloatLit(v) => Val::F(*v),
            RExpr::Local(slot, _) => self.locals[*slot as usize],
            RExpr::ParamScalar(p, _) => match self.m.slots[*p as usize] {
                Slot::Float(v) => Val::F(v),
                Slot::Int(v) => Val::I(v),
                _ => unreachable!("typeck guarantees scalar params"),
            },
            RExpr::Builtin(b) => Val::I(match b {
                BuiltinVar::ThreadIdxX => self.tid.0 as i32,
                BuiltinVar::BlockIdxX => self.bid.0 as i32,
                BuiltinVar::BlockDimX => self.m.block.0 as i32,
                BuiltinVar::GridDimX => self.m.grid.0 as i32,
                BuiltinVar::ThreadIdxY => self.tid.1 as i32,
                BuiltinVar::BlockIdxY => self.bid.1 as i32,
                BuiltinVar::BlockDimY => self.m.block.1 as i32,
                BuiltinVar::GridDimY => self.m.grid.1 as i32,
            }),
            RExpr::Load { param, index, .. } => {
                let idx = self.eval(index)?.as_i();
                let at = self.index(*param, idx)?;
                if let Some(log) = &mut self.log {
                    log.push((*param as usize, at, false, false));
                }
                match self.m.slots[*param as usize] {
                    Slot::F32Buf { ptr, .. } => {
                        // SAFETY: `at` is bounds-checked above.
                        let a = unsafe { &*ptr.add(at) };
                        Val::F(f32::from_bits(a.load(Ordering::Relaxed)))
                    }
                    Slot::I32Buf { ptr, .. } => {
                        let a = unsafe { &*ptr.add(at) };
                        Val::I(a.load(Ordering::Relaxed))
                    }
                    _ => unreachable!(),
                }
            }
            RExpr::Unary { op, elem, expr } => {
                let v = self.eval(expr)?;
                match (op, elem) {
                    (UnOp::Neg, Elem::Int) => Val::I(v.as_i().wrapping_neg()),
                    (UnOp::Neg, Elem::Float) => Val::F(-v.as_f()),
                    (UnOp::Not, _) => Val::I((v.as_i() == 0) as i32),
                }
            }
            RExpr::Binary { op, elem, lhs, rhs } => {
                // Short-circuit logic first.
                if *op == BinOp::And {
                    let l = self.eval(lhs)?.as_i();
                    return Ok(Val::I(if l != 0 {
                        (self.eval(rhs)?.as_i() != 0) as i32
                    } else {
                        0
                    }));
                }
                if *op == BinOp::Or {
                    let l = self.eval(lhs)?.as_i();
                    return Ok(Val::I(if l == 0 {
                        (self.eval(rhs)?.as_i() != 0) as i32
                    } else {
                        1
                    }));
                }
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                match elem {
                    Elem::Int => {
                        let (a, b) = (l.as_i(), r.as_i());
                        match op {
                            BinOp::Add => Val::I(a.wrapping_add(b)),
                            BinOp::Sub => Val::I(a.wrapping_sub(b)),
                            BinOp::Mul => Val::I(a.wrapping_mul(b)),
                            BinOp::Div => {
                                if b == 0 {
                                    return Err(LaunchError::DivideByZero);
                                }
                                Val::I(a.wrapping_div(b))
                            }
                            BinOp::Rem => {
                                if b == 0 {
                                    return Err(LaunchError::DivideByZero);
                                }
                                Val::I(a.wrapping_rem(b))
                            }
                            BinOp::Eq => Val::I((a == b) as i32),
                            BinOp::Ne => Val::I((a != b) as i32),
                            BinOp::Lt => Val::I((a < b) as i32),
                            BinOp::Gt => Val::I((a > b) as i32),
                            BinOp::Le => Val::I((a <= b) as i32),
                            BinOp::Ge => Val::I((a >= b) as i32),
                            BinOp::And | BinOp::Or => unreachable!("handled above"),
                        }
                    }
                    Elem::Float => {
                        let (a, b) = (l.as_f(), r.as_f());
                        match op {
                            BinOp::Add => Val::F(a + b),
                            BinOp::Sub => Val::F(a - b),
                            BinOp::Mul => Val::F(a * b),
                            BinOp::Div => Val::F(a / b),
                            BinOp::Eq => Val::I((a == b) as i32),
                            BinOp::Ne => Val::I((a != b) as i32),
                            BinOp::Lt => Val::I((a < b) as i32),
                            BinOp::Gt => Val::I((a > b) as i32),
                            BinOp::Le => Val::I((a <= b) as i32),
                            BinOp::Ge => Val::I((a >= b) as i32),
                            BinOp::Rem | BinOp::And | BinOp::Or => {
                                unreachable!("rejected by typeck")
                            }
                        }
                    }
                }
            }
            RExpr::Call { func, args } => {
                let mut vals = [0.0f32; 2];
                for (i, a) in args.iter().enumerate() {
                    vals[i] = self.eval(a)?.as_f();
                }
                Val::F(func.eval(&vals[..args.len()]))
            }
            RExpr::Ternary {
                cond,
                elem,
                then,
                els,
                ..
            } => {
                let c = self.eval(cond)?.as_i();
                let v = if c != 0 {
                    self.eval(then)?
                } else {
                    self.eval(els)?
                };
                match elem {
                    Elem::Int => Val::I(v.as_i()),
                    Elem::Float => Val::F(v.as_f()),
                }
            }
            RExpr::Cast { to, expr } => {
                let v = self.eval(expr)?;
                match to {
                    Elem::Int => Val::I(v.as_i()),
                    Elem::Float => Val::F(v.as_f()),
                }
            }
        })
    }

    fn store(&mut self, param: u16, index: &RExpr, value: Val) -> Result<(), LaunchError> {
        let idx = self.eval(index)?.as_i();
        let at = self.index(param, idx)?;
        if let Some(log) = &mut self.log {
            log.push((param as usize, at, true, false));
        }
        match self.m.slots[param as usize] {
            Slot::F32Buf { ptr, .. } => {
                // SAFETY: bounds-checked above.
                let a = unsafe { &*ptr.add(at) };
                a.store(value.as_f().to_bits(), Ordering::Relaxed);
            }
            Slot::I32Buf { ptr, .. } => {
                let a = unsafe { &*ptr.add(at) };
                a.store(value.as_i(), Ordering::Relaxed);
            }
            _ => unreachable!(),
        }
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[RStmt]) -> Result<Flow, LaunchError> {
        for s in stmts {
            if let Flow::Return = self.exec(s)? {
                return Ok(Flow::Return);
            }
        }
        Ok(Flow::Next)
    }

    fn exec(&mut self, s: &RStmt) -> Result<Flow, LaunchError> {
        self.charge()?;
        match s {
            RStmt::SetLocal { slot, value } => {
                let v = self.eval(value)?;
                self.locals[*slot as usize] = v;
                Ok(Flow::Next)
            }
            RStmt::Store {
                param,
                index,
                value,
            } => {
                let v = self.eval(value)?;
                self.store(*param, index, v)?;
                Ok(Flow::Next)
            }
            RStmt::AtomicAdd {
                param,
                index,
                value,
            } => {
                let v = self.eval(value)?;
                let idx = self.eval(index)?.as_i();
                let at = self.index(*param, idx)?;
                if let Some(log) = &mut self.log {
                    log.push((*param as usize, at, true, true));
                }
                match self.m.slots[*param as usize] {
                    Slot::F32Buf { ptr, .. } => {
                        // SAFETY: bounds-checked above.
                        let a = unsafe { &*ptr.add(at) };
                        let add = v.as_f();
                        let mut cur = a.load(Ordering::Relaxed);
                        loop {
                            let next = (f32::from_bits(cur) + add).to_bits();
                            match a.compare_exchange_weak(
                                cur,
                                next,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => break,
                                Err(seen) => cur = seen,
                            }
                        }
                    }
                    Slot::I32Buf { ptr, .. } => {
                        let a = unsafe { &*ptr.add(at) };
                        a.fetch_add(v.as_i(), Ordering::Relaxed);
                    }
                    _ => unreachable!(),
                }
                Ok(Flow::Next)
            }
            RStmt::If { cond, then, els } => {
                if self.eval(cond)?.as_i() != 0 {
                    self.exec_block(then)
                } else {
                    self.exec_block(els)
                }
            }
            RStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Flow::Return = self.exec(init)? {
                    return Ok(Flow::Return);
                }
                while self.eval(cond)?.as_i() != 0 {
                    self.charge()?;
                    if let Flow::Return = self.exec_block(body)? {
                        return Ok(Flow::Return);
                    }
                    if let Flow::Return = self.exec(step)? {
                        return Ok(Flow::Return);
                    }
                }
                Ok(Flow::Next)
            }
            RStmt::While { cond, body } => {
                while self.eval(cond)?.as_i() != 0 {
                    self.charge()?;
                    if let Flow::Return = self.exec_block(body)? {
                        return Ok(Flow::Return);
                    }
                }
                Ok(Flow::Next)
            }
            RStmt::Return => Ok(Flow::Return),
        }
    }
}

fn build_slots(
    kernel: &CheckedKernel,
    args: &mut [KernelArg<'_>],
) -> Result<Vec<Slot>, LaunchError> {
    if args.len() != kernel.params.len() {
        return Err(LaunchError::Arity {
            expected: kernel.params.len(),
            got: args.len(),
        });
    }
    let mut slots = Vec::with_capacity(args.len());
    for (i, (arg, param)) in args.iter_mut().zip(&kernel.params).enumerate() {
        let slot = match (&param.ty, arg) {
            (
                ParamType::Ptr {
                    elem: Elem::Float, ..
                },
                KernelArg::F32(buf),
            ) => Slot::F32Buf {
                ptr: buf.as_mut_ptr().cast::<AtomicU32>(),
                len: buf.len(),
            },
            (
                ParamType::Ptr {
                    elem: Elem::Int, ..
                },
                KernelArg::I32(buf),
            ) => Slot::I32Buf {
                ptr: buf.as_mut_ptr().cast::<AtomicI32>(),
                len: buf.len(),
            },
            (ParamType::Scalar(Elem::Float), KernelArg::Float(v)) => Slot::Float(*v),
            // C-style convenience: an int scalar is accepted for a float
            // parameter.
            (ParamType::Scalar(Elem::Float), KernelArg::Int(v)) => Slot::Float(*v as f32),
            (ParamType::Scalar(Elem::Int), KernelArg::Int(v)) => Slot::Int(*v),
            (expected, _) => {
                return Err(LaunchError::ArgType {
                    index: i,
                    expected: format!("{expected:?}"),
                })
            }
        };
        slots.push(slot);
    }
    Ok(slots)
}

/// Executes `kernel` over a 1-D grid. Blocks run in parallel across CPU
/// cores; threads within a block run sequentially.
pub fn launch(
    kernel: &CheckedKernel,
    grid: u32,
    block: u32,
    args: &mut [KernelArg<'_>],
) -> Result<LaunchStats, LaunchError> {
    launch2d_with_budget(kernel, (grid, 1), (block, 1), args, 1 << 32)
}

/// [`launch`] with an explicit per-thread step budget (guards against
/// accidentally non-terminating kernels).
pub fn launch_with_budget(
    kernel: &CheckedKernel,
    grid: u32,
    block: u32,
    args: &mut [KernelArg<'_>],
    step_budget: u64,
) -> Result<LaunchStats, LaunchError> {
    launch2d_with_budget(kernel, (grid, 1), (block, 1), args, step_budget)
}

/// Executes `kernel` over a 2-D grid (`(x, y)` dimensions, like
/// `dim3(x, y)` in CUDA). Blocks fan out across cores; threads within a
/// block run sequentially in `(y, x)` order.
pub fn launch2d(
    kernel: &CheckedKernel,
    grid: (u32, u32),
    block: (u32, u32),
    args: &mut [KernelArg<'_>],
) -> Result<LaunchStats, LaunchError> {
    launch2d_with_budget(kernel, grid, block, args, 1 << 32)
}

/// [`launch2d`] with an explicit per-thread step budget.
pub fn launch2d_with_budget(
    kernel: &CheckedKernel,
    grid: (u32, u32),
    block: (u32, u32),
    args: &mut [KernelArg<'_>],
    step_budget: u64,
) -> Result<LaunchStats, LaunchError> {
    if grid.0 == 0 || grid.1 == 0 || block.0 == 0 || block.1 == 0 {
        return Err(LaunchError::EmptyLaunch);
    }
    let slots = build_slots(kernel, args)?;
    let machine = Machine {
        kernel,
        slots,
        grid,
        block,
        step_budget,
    };
    let total_blocks = grid.0 as u64 * grid.1 as u64;
    let first_error: Mutex<Option<LaunchError>> = Mutex::new(None);
    (0..total_blocks).into_par_iter().for_each(|flat_bid| {
        let bid = (
            (flat_bid % grid.0 as u64) as u32,
            (flat_bid / grid.0 as u64) as u32,
        );
        let mut locals = vec![Val::I(0); machine.kernel.local_slots as usize];
        for ty_ in 0..block.1 {
            for tx in 0..block.0 {
                // Reset locals between threads (defensive; decls initialize).
                locals.fill(Val::I(0));
                let mut t = Thread {
                    m: &machine,
                    locals: std::mem::take(&mut locals),
                    tid: (tx, ty_),
                    bid,
                    steps: 0,
                    log: None,
                };
                let result = t.exec_block(&machine.kernel.body);
                locals = t.locals;
                if let Err(e) = result {
                    let mut g = first_error.lock().expect("poisoned");
                    if g.is_none() {
                        *g = Some(e);
                    }
                    return;
                }
            }
        }
    });
    if let Some(e) = first_error.into_inner().expect("poisoned") {
        return Err(e);
    }
    Ok(LaunchStats {
        threads: total_blocks * block.0 as u64 * block.1 as u64,
    })
}

/// Runs a (builtin-substituted) kernel body as one sequential thread and
/// returns its buffer-access log. Used by the race checker.
pub(crate) fn launch_traced(
    kernel: &CheckedKernel,
    args: &mut [KernelArg<'_>],
    step_budget: u64,
) -> Result<AccessLog, LaunchError> {
    let slots = build_slots(kernel, args)?;
    let machine = Machine {
        kernel,
        slots,
        grid: (1, 1),
        block: (1, 1),
        step_budget,
    };
    let mut t = Thread {
        m: &machine,
        locals: vec![Val::I(0); machine.kernel.local_slots as usize],
        tid: (0, 0),
        bid: (0, 0),
        steps: 0,
        log: Some(Vec::new()),
    };
    t.exec_block(&machine.kernel.body)?;
    Ok(t.log.take().expect("log was installed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typeck::check;

    fn kernel(src: &str) -> CheckedKernel {
        check(&parse(src).unwrap()[0]).unwrap()
    }

    const SAXPY: &str = "__global__ void saxpy(float* y, const float* x, float a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { y[i] = a * x[i] + y[i]; }
    }";

    #[test]
    fn saxpy_computes() {
        let k = kernel(SAXPY);
        let n = 1000usize;
        let mut y = vec![1.0f32; n];
        let mut x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let stats = launch(
            &k,
            8,
            128,
            &mut [
                KernelArg::F32(&mut y),
                KernelArg::F32(&mut x),
                KernelArg::Float(2.0),
                KernelArg::Int(n as i32),
            ],
        )
        .unwrap();
        assert_eq!(stats.threads, 1024);
        for (i, v) in y.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32 + 1.0);
        }
    }

    #[test]
    fn grid_stride_loop_and_atomic_dot() {
        let k = kernel(
            "__global__ void dot(const float* a, const float* b, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                float acc = 0.0;
                for (int j = i; j < n; j += blockDim.x * gridDim.x) {
                    acc += a[j] * b[j];
                }
                atomicAdd(&out[0], acc);
            }",
        );
        let n = 4096usize;
        let mut a = vec![1.0f32; n];
        let mut b = vec![2.0f32; n];
        let mut out = vec![0.0f32];
        launch(
            &k,
            4,
            64,
            &mut [
                KernelArg::F32(&mut a),
                KernelArg::F32(&mut b),
                KernelArg::F32(&mut out),
                KernelArg::Int(n as i32),
            ],
        )
        .unwrap();
        assert!((out[0] - 2.0 * n as f32).abs() < 1e-2, "got {}", out[0]);
    }

    #[test]
    fn int_buffers_work() {
        let k = kernel(
            "__global__ void iota(int* y, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { y[i] = i * 3; }
            }",
        );
        let mut y = vec![0i32; 100];
        launch(
            &k,
            1,
            128,
            &mut [KernelArg::I32(&mut y), KernelArg::Int(100)],
        )
        .unwrap();
        assert_eq!(y[10], 30);
        assert_eq!(y[99], 297);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let k = kernel("__global__ void f(float* y) { y[threadIdx.x] = 1.0; }");
        let mut y = vec![0.0f32; 4];
        let err = launch(&k, 1, 8, &mut [KernelArg::F32(&mut y)]).unwrap_err();
        assert!(matches!(err, LaunchError::OutOfBounds { len: 4, .. }));
    }

    #[test]
    fn negative_index_is_out_of_bounds() {
        let k = kernel("__global__ void f(float* y) { y[0 - 1] = 1.0; }");
        let mut y = vec![0.0f32; 4];
        let err = launch(&k, 1, 1, &mut [KernelArg::F32(&mut y)]).unwrap_err();
        assert!(matches!(err, LaunchError::OutOfBounds { index: -1, .. }));
    }

    #[test]
    fn arity_and_type_checked() {
        let k = kernel(SAXPY);
        let mut y = vec![0.0f32; 1];
        assert!(matches!(
            launch(&k, 1, 1, &mut [KernelArg::F32(&mut y)]),
            Err(LaunchError::Arity {
                expected: 4,
                got: 1
            })
        ));
        let mut y = vec![0.0f32; 1];
        let mut x = vec![0i32; 1];
        let err = launch(
            &k,
            1,
            1,
            &mut [
                KernelArg::F32(&mut y),
                KernelArg::I32(&mut x),
                KernelArg::Float(1.0),
                KernelArg::Int(1),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, LaunchError::ArgType { index: 1, .. }));
    }

    #[test]
    fn divide_by_zero_is_reported() {
        let k = kernel("__global__ void f(int* y, int d) { y[0] = 1 / d; }");
        let mut y = vec![0i32; 1];
        let err = launch(&k, 1, 1, &mut [KernelArg::I32(&mut y), KernelArg::Int(0)]).unwrap_err();
        assert_eq!(err, LaunchError::DivideByZero);
    }

    #[test]
    fn step_budget_stops_infinite_loops() {
        let k = kernel("__global__ void f(int* y) { while (1) { y[0] = 1; } }");
        let mut y = vec![0i32; 1];
        let err = launch_with_budget(&k, 1, 1, &mut [KernelArg::I32(&mut y)], 10_000).unwrap_err();
        assert_eq!(err, LaunchError::StepBudgetExceeded);
    }

    #[test]
    fn empty_launch_rejected() {
        let k = kernel("__global__ void f(int n) { return; }");
        assert_eq!(
            launch(&k, 0, 32, &mut [KernelArg::Int(1)]).unwrap_err(),
            LaunchError::EmptyLaunch
        );
    }

    #[test]
    fn early_return_skips_rest() {
        let k = kernel(
            "__global__ void f(float* y, int n) {
                int i = threadIdx.x;
                if (i >= n) { return; }
                y[i] = 7.0;
            }",
        );
        let mut y = vec![0.0f32; 4];
        launch(&k, 1, 32, &mut [KernelArg::F32(&mut y), KernelArg::Int(4)]).unwrap();
        assert_eq!(y, vec![7.0; 4]);
    }

    #[test]
    fn two_d_grid_covers_a_matrix() {
        let k = kernel(
            "__global__ void fill2d(float* m, int rows, int cols) {
                int r = blockIdx.y * blockDim.y + threadIdx.y;
                int c = blockIdx.x * blockDim.x + threadIdx.x;
                if (r < rows && c < cols) {
                    m[r * cols + c] = (float)(r * 1000 + c);
                }
            }",
        );
        let (rows, cols) = (37usize, 53usize);
        let mut m = vec![-1.0f32; rows * cols];
        let stats = launch2d(
            &k,
            (cols.div_ceil(8) as u32, rows.div_ceil(8) as u32),
            (8, 8),
            &mut [
                KernelArg::F32(&mut m),
                KernelArg::Int(rows as i32),
                KernelArg::Int(cols as i32),
            ],
        )
        .unwrap();
        assert_eq!(
            stats.threads as usize,
            cols.div_ceil(8) * rows.div_ceil(8) * 64
        );
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(m[r * cols + c], (r * 1000 + c) as f32, "({r},{c})");
            }
        }
    }

    #[test]
    fn one_d_launch_sees_unit_y_dims() {
        let k = kernel(
            "__global__ void f(int* y) {
                y[0] = blockDim.y;
                y[1] = gridDim.y;
                y[2] = threadIdx.y;
            }",
        );
        let mut y = vec![-1i32; 3];
        launch(&k, 1, 1, &mut [KernelArg::I32(&mut y)]).unwrap();
        assert_eq!(y, vec![1, 1, 0]);
    }

    #[test]
    fn empty_2d_dims_rejected() {
        let k = kernel("__global__ void f(int n) { return; }");
        assert_eq!(
            launch2d(&k, (1, 0), (1, 1), &mut [KernelArg::Int(0)]).unwrap_err(),
            LaunchError::EmptyLaunch
        );
    }

    #[test]
    fn black_scholes_body_matches_reference() {
        let k = kernel(
            "__global__ void bs(const float* s, float* call, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) {
                    float K = 100.0;
                    float r = 0.05;
                    float sigma = 0.2;
                    float t = 1.0;
                    float d1 = (logf(s[i] / K) + (r + sigma * sigma / 2.0) * t)
                               / (sigma * sqrtf(t));
                    float d2 = d1 - sigma * sqrtf(t);
                    call[i] = s[i] * normcdff(d1) - K * expf(0.0 - r * t) * normcdff(d2);
                }
            }",
        );
        let mut s = vec![100.0f32, 120.0, 80.0];
        let mut call = vec![0.0f32; 3];
        launch(
            &k,
            1,
            32,
            &mut [
                KernelArg::F32(&mut s),
                KernelArg::F32(&mut call),
                KernelArg::Int(3),
            ],
        )
        .unwrap();
        // Known Black-Scholes values: S=100,K=100,r=5%,sigma=20%,t=1 -> ~10.45.
        assert!((call[0] - 10.45).abs() < 0.05, "ATM call {}", call[0]);
        assert!(call[1] > call[0] && call[2] < call[0]);
    }
}
