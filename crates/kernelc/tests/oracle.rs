//! Differential testing of the kernel interpreter: random expression trees
//! are rendered to kernel source, compiled, executed, and compared against
//! a direct Rust evaluation of the same tree.

use kernelc::{compile_one, KernelArg};
use proptest::prelude::*;

/// A tiny expression AST we can both render to the CUDA dialect and
/// evaluate natively.
#[derive(Debug, Clone)]
enum E {
    /// The thread's global index as a float.
    Gid,
    /// A float constant (kept small and tame).
    K(f32),
    /// x[gid] of the input buffer.
    In,
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Min(Box<E>, Box<E>),
    Max(Box<E>, Box<E>),
    Neg(Box<E>),
    /// Ternary on a comparison.
    Sel(Box<E>, Box<E>, Box<E>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![Just(E::Gid), (-4.0f32..4.0).prop_map(E::K), Just(E::In),];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Max(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, a, b)| { E::Sel(Box::new(c), Box::new(a), Box::new(b)) }),
        ]
    })
}

fn render(e: &E) -> String {
    match e {
        E::Gid => "(float)i".into(),
        E::K(v) => format!("({v:?})"),
        E::In => "x[i]".into(),
        E::Add(a, b) => format!("({} + {})", render(a), render(b)),
        E::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        E::Mul(a, b) => format!("({} * {})", render(a), render(b)),
        E::Min(a, b) => format!("fminf({}, {})", render(a), render(b)),
        E::Max(a, b) => format!("fmaxf({}, {})", render(a), render(b)),
        E::Neg(a) => format!("(-{})", render(a)),
        E::Sel(c, a, b) => format!("({} > 0.0 ? {} : {})", render(c), render(a), render(b)),
    }
}

fn eval(e: &E, gid: f32, x: f32) -> f32 {
    match e {
        E::Gid => gid,
        E::K(v) => *v,
        E::In => x,
        E::Add(a, b) => eval(a, gid, x) + eval(b, gid, x),
        E::Sub(a, b) => eval(a, gid, x) - eval(b, gid, x),
        E::Mul(a, b) => eval(a, gid, x) * eval(b, gid, x),
        E::Min(a, b) => eval(a, gid, x).min(eval(b, gid, x)),
        E::Max(a, b) => eval(a, gid, x).max(eval(b, gid, x)),
        E::Neg(a) => -eval(a, gid, x),
        E::Sel(c, a, b) => {
            if eval(c, gid, x) > 0.0 {
                eval(a, gid, x)
            } else {
                eval(b, gid, x)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interpreter_matches_native_evaluation(e in arb_expr()) {
        let n = 97usize; // odd on purpose: exercises the bounds guard
        let src = format!(
            "__global__ void f(float* y, const float* x, int n) {{
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) {{ y[i] = {}; }}
            }}",
            render(&e)
        );
        let kernel = compile_one(&src, "f").expect("generated source must compile");
        let mut y = vec![0.0f32; n];
        let mut x: Vec<f32> = (0..n).map(|i| (i as f32) * 0.37 - 11.0).collect();
        let x_copy = x.clone();
        kernel
            .launch(
                4,
                32,
                &mut [
                    KernelArg::F32(&mut y),
                    KernelArg::F32(&mut x),
                    KernelArg::Int(n as i32),
                ],
            )
            .expect("launch");
        for (i, &got) in y.iter().enumerate() {
            let want = eval(&e, i as f32, x_copy[i]);
            // Bit-identical modulo NaN: both sides do the same f32 ops.
            prop_assert!(
                (got == want) || (got.is_nan() && want.is_nan()),
                "i={i}: got {got}, want {want}, expr={}",
                render(&e)
            );
        }
    }
}
