//! Robustness: the front end must never panic, whatever the input — it
//! returns structured errors for garbage and handles adversarial-but-valid
//! programs.

use kernelc::{compile, compile_one, KernelArg};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup (printable subset) never panics the compiler.
    #[test]
    fn compiler_never_panics_on_garbage(src in "[ -~\\n]{0,200}") {
        let _ = compile(&src);
    }

    /// Arbitrary token-shaped soup built from the dialect's own vocabulary
    /// never panics either (more likely to get deep into the parser).
    #[test]
    fn compiler_never_panics_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("__global__"), Just("void"), Just("float"), Just("int"),
                Just("const"), Just("if"), Just("else"), Just("for"),
                Just("while"), Just("return"), Just("("), Just(")"),
                Just("{"), Just("}"), Just("["), Just("]"), Just(";"),
                Just(","), Just("*"), Just("+"), Just("-"), Just("="),
                Just("=="), Just("<"), Just("x"), Just("y"), Just("n"),
                Just("1"), Just("2.5"), Just("threadIdx"), Just(".x"),
                Just("atomicAdd"), Just("&"),
            ],
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = compile(&src);
    }
}

#[test]
fn deeply_nested_expressions_compile() {
    // 200 nested parens: recursion depth check.
    let mut expr = String::from("1.0");
    for _ in 0..200 {
        expr = format!("({expr} + 1.0)");
    }
    let src = format!("__global__ void f(float* y) {{ y[0] = {expr}; }}");
    let k = compile_one(&src, "f").unwrap();
    let mut y = vec![0.0f32; 1];
    k.launch(1, 1, &mut [KernelArg::F32(&mut y)]).unwrap();
    assert_eq!(y[0], 201.0);
}

#[test]
fn zero_length_buffers_are_handled() {
    let k = compile_one(
        "__global__ void f(float* y, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { y[i] = 1.0; }
        }",
        "f",
    )
    .unwrap();
    let mut y: Vec<f32> = vec![];
    k.launch(1, 32, &mut [KernelArg::F32(&mut y), KernelArg::Int(0)])
        .unwrap();
}

#[test]
fn huge_grid_small_buffer_is_guarded() {
    let k = compile_one(
        "__global__ void f(float* y, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { y[i] = 1.0; }
        }",
        "f",
    )
    .unwrap();
    let mut y = vec![0.0f32; 8];
    // 65536 threads, 8 valid; the guard keeps everyone in bounds.
    k.launch(256, 256, &mut [KernelArg::F32(&mut y), KernelArg::Int(8)])
        .unwrap();
    assert!(y.iter().all(|&v| v == 1.0));
}

#[test]
fn int_overflow_wraps_like_c() {
    let k = compile_one("__global__ void f(int* y) { y[0] = 2147483647 + 1; }", "f").unwrap();
    let mut y = vec![0i32; 1];
    k.launch(1, 1, &mut [KernelArg::I32(&mut y)]).unwrap();
    assert_eq!(y[0], i32::MIN);
}
