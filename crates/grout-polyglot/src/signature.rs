//! GrCUDA-style NIDL kernel signatures.
//!
//! GrOUT inherits GrCUDA's API, where `buildkernel` takes the kernel source
//! plus a signature string such as
//!
//! ```text
//! square(x: inout pointer float, n: sint32)
//! ```
//!
//! The signature declares the host-visible types and *directions* of each
//! parameter; we parse it and cross-check it against what `kernelc` actually
//! found in the source, catching the classic mismatch bugs NVRTC would not.

use std::fmt;

use kernelc::{Elem, ParamType};

/// Host-declared direction of a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Kernel only reads it.
    In,
    /// Kernel only writes it.
    Out,
    /// Kernel reads and writes it.
    InOut,
}

/// Host-declared type of a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigType {
    /// `pointer float` / `pointer double`.
    PtrFloat,
    /// `pointer sint32`.
    PtrInt,
    /// `float` / `double` scalar.
    Float,
    /// `sint32` / `sint64` scalar.
    Int,
}

/// One signature parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigParam {
    /// Name (must match the kernel source).
    pub name: String,
    /// Direction.
    pub direction: Direction,
    /// Type.
    pub ty: SigType,
}

/// A parsed signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Kernel name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<SigParam>,
}

/// Signature parse/check failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureError(pub String);

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "signature error: {}", self.0)
    }
}

impl std::error::Error for SignatureError {}

impl Signature {
    /// Parses a NIDL signature string.
    pub fn parse(s: &str) -> Result<Signature, SignatureError> {
        let s = s.trim();
        let open = s
            .find('(')
            .ok_or_else(|| SignatureError("missing `(`".into()))?;
        if !s.ends_with(')') {
            return Err(SignatureError("missing trailing `)`".into()));
        }
        let name = s[..open].trim().to_string();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(SignatureError(format!("bad kernel name `{name}`")));
        }
        let inner = &s[open + 1..s.len() - 1];
        let mut params = Vec::new();
        if !inner.trim().is_empty() {
            for part in inner.split(',') {
                let (pname, rest) = part
                    .split_once(':')
                    .ok_or_else(|| SignatureError(format!("missing `:` in `{part}`")))?;
                let pname = pname.trim().to_string();
                let words: Vec<&str> = rest.split_whitespace().collect();
                let (direction, tywords) = match words.first() {
                    Some(&"in") => (Direction::In, &words[1..]),
                    Some(&"out") => (Direction::Out, &words[1..]),
                    Some(&"inout") => (Direction::InOut, &words[1..]),
                    Some(&"const") => (Direction::In, &words[1..]),
                    _ => (Direction::In, &words[..]),
                };
                let ty = match tywords {
                    ["pointer", "float"] | ["pointer", "double"] => SigType::PtrFloat,
                    ["pointer", "sint32"] | ["pointer", "sint64"] => SigType::PtrInt,
                    ["float"] | ["double"] => SigType::Float,
                    ["sint32"] | ["sint64"] | ["uint32"] | ["uint64"] => SigType::Int,
                    other => {
                        return Err(SignatureError(format!(
                            "unknown type `{}` for `{pname}`",
                            other.join(" ")
                        )))
                    }
                };
                params.push(SigParam {
                    name: pname,
                    direction,
                    ty,
                });
            }
        }
        Ok(Signature { name, params })
    }

    /// Cross-checks the signature against the compiled kernel.
    pub fn check_against(&self, kernel: &kernelc::CompiledKernel) -> Result<(), SignatureError> {
        if self.name != kernel.name() {
            return Err(SignatureError(format!(
                "signature names `{}`, source defines `{}`",
                self.name,
                kernel.name()
            )));
        }
        if self.params.len() != kernel.params().len() {
            return Err(SignatureError(format!(
                "signature has {} parameters, source has {}",
                self.params.len(),
                kernel.params().len()
            )));
        }
        for (sp, (kp, ka)) in self
            .params
            .iter()
            .zip(kernel.params().iter().zip(kernel.access()))
        {
            if sp.name != kp.name {
                return Err(SignatureError(format!(
                    "parameter `{}` in signature vs `{}` in source",
                    sp.name, kp.name
                )));
            }
            let type_ok = matches!(
                (sp.ty, kp.ty),
                (
                    SigType::PtrFloat,
                    ParamType::Ptr {
                        elem: Elem::Float,
                        ..
                    }
                ) | (
                    SigType::PtrInt,
                    ParamType::Ptr {
                        elem: Elem::Int,
                        ..
                    }
                ) | (SigType::Float, ParamType::Scalar(Elem::Float))
                    | (SigType::Int, ParamType::Scalar(Elem::Int))
            );
            if !type_ok {
                return Err(SignatureError(format!(
                    "parameter `{}`: signature type {:?} does not match source type {:?}",
                    sp.name, sp.ty, kp.ty
                )));
            }
            // Direction check: declaring `in` for something the kernel
            // writes is unsound (the scheduler would miss a dependency).
            if ka.writes && sp.direction == Direction::In {
                return Err(SignatureError(format!(
                    "parameter `{}` declared `in` but the kernel writes it",
                    sp.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelc::compile_one;

    const SQUARE: &str = "__global__ void square(float* x, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { x[i] = x[i] * x[i]; }
    }";

    #[test]
    fn parses_the_paper_style_signature() {
        let sig = Signature::parse("square(x: inout pointer float, n: sint32)").unwrap();
        assert_eq!(sig.name, "square");
        assert_eq!(sig.params.len(), 2);
        assert_eq!(sig.params[0].direction, Direction::InOut);
        assert_eq!(sig.params[0].ty, SigType::PtrFloat);
        assert_eq!(sig.params[1].ty, SigType::Int);
    }

    #[test]
    fn parses_empty_params() {
        let sig = Signature::parse("noop()").unwrap();
        assert!(sig.params.is_empty());
    }

    #[test]
    fn check_passes_on_match() {
        let k = compile_one(SQUARE, "square").unwrap();
        Signature::parse("square(x: inout pointer float, n: sint32)")
            .unwrap()
            .check_against(&k)
            .unwrap();
    }

    #[test]
    fn check_rejects_wrong_name() {
        let k = compile_one(SQUARE, "square").unwrap();
        let err = Signature::parse("cube(x: inout pointer float, n: sint32)")
            .unwrap()
            .check_against(&k)
            .unwrap_err();
        assert!(err.0.contains("cube"));
    }

    #[test]
    fn check_rejects_wrong_arity_and_type() {
        let k = compile_one(SQUARE, "square").unwrap();
        assert!(Signature::parse("square(x: inout pointer float)")
            .unwrap()
            .check_against(&k)
            .is_err());
        assert!(
            Signature::parse("square(x: inout pointer sint32, n: sint32)")
                .unwrap()
                .check_against(&k)
                .is_err()
        );
    }

    #[test]
    fn check_rejects_unsound_in_direction() {
        let k = compile_one(SQUARE, "square").unwrap();
        let err = Signature::parse("square(x: in pointer float, n: sint32)")
            .unwrap()
            .check_against(&k)
            .unwrap_err();
        assert!(err.0.contains("writes"));
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(Signature::parse("nope").is_err());
        assert!(Signature::parse("f(x pointer float)").is_err());
        assert!(Signature::parse("f(x: quux)").is_err());
    }
}
