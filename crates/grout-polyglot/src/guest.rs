//! GuestScript: a minimal dynamically-typed guest language over the
//! polyglot API.
//!
//! The paper's framework is exposed to "all major programming languages"
//! through GraalVM; its Listing 1 is Python. This module supplies an
//! executable equivalent so the multi-language claim is concrete: a small
//! scripting language with variables, `for` loops, array indexing and
//! dynamic calls, whose only window to the world is `polyglot.eval` — the
//! same one-function surface Truffle guests get.
//!
//! ```text
//! build = polyglot.eval("grout", "buildkernel")
//! square = build(KERNEL, SIGNATURE)
//! x = polyglot.eval("grout", "float[100]")
//! for i in range(100) { x[i] = i }
//! square(4, 32)(x, 100)
//! print(x[7])
//! ```
//!
//! (Braces replace Python's indentation — the one concession to keeping
//! the grammar small.)

use std::collections::HashMap;
use std::fmt;

use crate::{Configured, Language, Polyglot, PolyglotError, Value};

/// Script evaluation error.
#[derive(Debug)]
pub enum ScriptError {
    /// Syntax problem, with a line number.
    Parse(usize, String),
    /// Runtime problem, with a line number when known.
    Runtime(String),
    /// An underlying polyglot failure.
    Polyglot(PolyglotError),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Parse(line, m) => write!(f, "script parse error (line {line}): {m}"),
            ScriptError::Runtime(m) => write!(f, "script runtime error: {m}"),
            ScriptError::Polyglot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScriptError {}

impl From<PolyglotError> for ScriptError {
    fn from(e: PolyglotError) -> Self {
        ScriptError::Polyglot(e)
    }
}

/// A guest-level value.
#[derive(Clone)]
enum GuestValue {
    Num(f64),
    Str(String),
    /// A polyglot value (array, builder, kernel, scalar).
    Poly(Value),
    /// A kernel with grid/block fixed, awaiting its argument call.
    Configured(Configured),
    /// The `range(n)` iterable.
    Range(i64),
}

impl fmt::Debug for GuestValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuestValue::Num(v) => write!(f, "{v}"),
            GuestValue::Str(s) => write!(f, "{s:?}"),
            GuestValue::Poly(v) => write!(f, "{v:?}"),
            GuestValue::Configured(_) => write!(f, "<configured kernel>"),
            GuestValue::Range(n) => write!(f, "range({n})"),
        }
    }
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Newline,
    Eof,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ScriptError> {
    let mut toks = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let mut chars = line.chars().peekable();
        let mut emitted = false;
        while let Some(&c) = chars.peek() {
            match c {
                ' ' | '\t' | '\r' => {
                    chars.next();
                }
                '#' => break, // comment to end of line
                '"' => {
                    chars.next();
                    let mut s = String::new();
                    loop {
                        match chars.next() {
                            Some('"') => break,
                            Some(c) => s.push(c),
                            None => {
                                return Err(ScriptError::Parse(
                                    line_no,
                                    "unterminated string".into(),
                                ))
                            }
                        }
                    }
                    toks.push((Tok::Str(s), line_no));
                    emitted = true;
                }
                '0'..='9' => {
                    let mut s = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_digit() || c == '.' {
                            s.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let v: f64 = s
                        .parse()
                        .map_err(|_| ScriptError::Parse(line_no, format!("bad number `{s}`")))?;
                    toks.push((Tok::Num(v), line_no));
                    emitted = true;
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_alphanumeric() || c == '_' {
                            s.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    toks.push((Tok::Ident(s), line_no));
                    emitted = true;
                }
                _ => {
                    chars.next();
                    let two = chars.peek().copied();
                    let t = match (c, two) {
                        ('=', Some('=')) => {
                            chars.next();
                            Tok::EqEq
                        }
                        ('!', Some('=')) => {
                            chars.next();
                            Tok::Ne
                        }
                        ('<', Some('=')) => {
                            chars.next();
                            Tok::Le
                        }
                        ('>', Some('=')) => {
                            chars.next();
                            Tok::Ge
                        }
                        ('<', _) => Tok::Lt,
                        ('>', _) => Tok::Gt,
                        ('(', _) => Tok::LParen,
                        (')', _) => Tok::RParen,
                        ('{', _) => Tok::LBrace,
                        ('}', _) => Tok::RBrace,
                        ('[', _) => Tok::LBracket,
                        (']', _) => Tok::RBracket,
                        (',', _) => Tok::Comma,
                        ('.', _) => Tok::Dot,
                        ('=', _) => Tok::Assign,
                        ('+', _) => Tok::Plus,
                        ('-', _) => Tok::Minus,
                        ('*', _) => Tok::Star,
                        ('/', _) => Tok::Slash,
                        (other, _) => {
                            return Err(ScriptError::Parse(
                                line_no,
                                format!("unexpected character `{other}`"),
                            ))
                        }
                    };
                    toks.push((t, line_no));
                    emitted = true;
                }
            }
        }
        if emitted {
            toks.push((Tok::Newline, line_no));
        }
    }
    toks.push((Tok::Eof, src.lines().count() + 1));
    Ok(toks)
}

// ----------------------------------------------------------------- ast ---

#[derive(Debug, Clone)]
enum Expr {
    Num(f64),
    Str(String),
    Var(String),
    Index(Box<Expr>, Box<Expr>),
    Call(Box<Expr>, Vec<Expr>),
    /// `polyglot.eval(lang, code)`
    PolyEval(Box<Expr>, Box<Expr>),
    Bin(char, Box<Expr>, Box<Expr>),
    Cmp(&'static str, Box<Expr>, Box<Expr>),
}

#[derive(Debug, Clone)]
enum Stmt {
    Assign(String, Expr),
    IndexAssign(String, Expr, Expr),
    For(String, Expr, Vec<Stmt>),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    While(Expr, Vec<Stmt>),
    Print(Vec<Expr>),
    Expr(Expr),
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }
    fn line(&self) -> usize {
        self.toks[self.pos].1
    }
    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ScriptError> {
        Err(ScriptError::Parse(self.line(), msg.into()))
    }
    fn expect(&mut self, t: Tok) -> Result<(), ScriptError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }
    fn skip_newlines(&mut self) {
        while *self.peek() == Tok::Newline {
            self.bump();
        }
    }

    fn program(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        let mut out = Vec::new();
        self.skip_newlines();
        while *self.peek() != Tok::Eof {
            out.push(self.stmt()?);
            self.skip_newlines();
        }
        Ok(out)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        self.expect(Tok::LBrace)?;
        let mut out = Vec::new();
        self.skip_newlines();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return self.err("unexpected end of script inside block");
            }
            out.push(self.stmt()?);
            self.skip_newlines();
        }
        self.bump(); // }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ScriptError> {
        // for x in range(e) { ... }
        if let Tok::Ident(kw) = self.peek() {
            if kw == "for" {
                self.bump();
                let Tok::Ident(var) = self.bump() else {
                    return self.err("expected loop variable");
                };
                match self.bump() {
                    Tok::Ident(ref k) if k == "in" => {}
                    other => return self.err(format!("expected `in`, found {other:?}")),
                }
                let iter = self.expr()?;
                self.skip_newlines();
                let body = self.block()?;
                return Ok(Stmt::For(var, iter, body));
            }
            if kw == "if" {
                self.bump();
                let cond = self.expr()?;
                self.skip_newlines();
                let then = self.block()?;
                let mut els = Vec::new();
                // optional: else { ... } possibly after newlines
                let save = self.pos;
                self.skip_newlines();
                if let Tok::Ident(k) = self.peek() {
                    if k == "else" {
                        self.bump();
                        self.skip_newlines();
                        els = self.block()?;
                    } else {
                        self.pos = save;
                    }
                } else {
                    self.pos = save;
                }
                return Ok(Stmt::If(cond, then, els));
            }
            if kw == "while" {
                self.bump();
                let cond = self.expr()?;
                self.skip_newlines();
                let body = self.block()?;
                return Ok(Stmt::While(cond, body));
            }
            if kw == "print" {
                self.bump();
                self.expect(Tok::LParen)?;
                let mut args = Vec::new();
                if *self.peek() != Tok::RParen {
                    loop {
                        args.push(self.expr()?);
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::RParen)?;
                return Ok(Stmt::Print(args));
            }
        }
        // assignment / index assignment / expression statement
        let e = self.expr()?;
        if *self.peek() == Tok::Assign {
            self.bump();
            let rhs = self.expr()?;
            match e {
                Expr::Var(name) => return Ok(Stmt::Assign(name, rhs)),
                Expr::Index(base, idx) => {
                    if let Expr::Var(name) = *base {
                        return Ok(Stmt::IndexAssign(name, *idx, rhs));
                    }
                    return self.err("only `name[index] = value` assignments are supported");
                }
                _ => return self.err("invalid assignment target"),
            }
        }
        Ok(Stmt::Expr(e))
    }

    fn expr(&mut self) -> Result<Expr, ScriptError> {
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ScriptError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::Le => "<=",
            Tok::Ge => ">=",
            Tok::EqEq => "==",
            Tok::Ne => "!=",
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn additive(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => '+',
                Tok::Minus => '-',
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.postfix()?;
        loop {
            let op = match self.peek() {
                Tok::Star => '*',
                Tok::Slash => '/',
                _ => break,
            };
            self.bump();
            let rhs = self.postfix()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn postfix(&mut self) -> Result<Expr, ScriptError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    e = Expr::Call(Box::new(e), args);
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ScriptError> {
        match self.bump() {
            Tok::Num(v) => Ok(Expr::Num(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Minus => {
                let e = self.primary()?;
                Ok(Expr::Bin('-', Box::new(Expr::Num(0.0)), Box::new(e)))
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                // polyglot.eval(...)
                if name == "polyglot" && *self.peek() == Tok::Dot {
                    self.bump();
                    match self.bump() {
                        Tok::Ident(ref m) if m == "eval" => {}
                        other => return self.err(format!("unknown polyglot member {other:?}")),
                    }
                    self.expect(Tok::LParen)?;
                    let lang = self.expr()?;
                    self.expect(Tok::Comma)?;
                    let code = self.expr()?;
                    self.expect(Tok::RParen)?;
                    return Ok(Expr::PolyEval(Box::new(lang), Box::new(code)));
                }
                Ok(Expr::Var(name))
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }
}

// ----------------------------------------------------------- interpreter --

/// Executes GuestScript against a polyglot context. `print` output is
/// collected and returned (and also not written to stdout, so library use
/// stays quiet; the CLI prints it).
pub fn run_script(pg: &mut Polyglot, src: &str) -> Result<Vec<String>, ScriptError> {
    let toks = lex(src)?;
    let program = Parser { toks, pos: 0 }.program()?;
    let mut env: HashMap<String, GuestValue> = HashMap::new();
    let mut output = Vec::new();
    for stmt in &program {
        exec(pg, stmt, &mut env, &mut output)?;
    }
    Ok(output)
}

fn exec(
    pg: &mut Polyglot,
    stmt: &Stmt,
    env: &mut HashMap<String, GuestValue>,
    out: &mut Vec<String>,
) -> Result<(), ScriptError> {
    match stmt {
        Stmt::Assign(name, e) => {
            let v = eval(pg, e, env)?;
            env.insert(name.clone(), v);
        }
        Stmt::IndexAssign(name, idx, value) => {
            let idx = as_num(eval(pg, idx, env)?)? as usize;
            let val = as_num(eval(pg, value, env)?)? as f32;
            match env.get(name) {
                Some(GuestValue::Poly(array)) => {
                    array.set(pg, idx, val)?;
                }
                _ => {
                    return Err(ScriptError::Runtime(format!(
                        "`{name}` is not an indexable array"
                    )))
                }
            }
        }
        Stmt::For(var, iter, body) => {
            let n = match eval(pg, iter, env)? {
                GuestValue::Range(n) => n,
                other => {
                    return Err(ScriptError::Runtime(format!(
                        "for needs range(...), got {other:?}"
                    )))
                }
            };
            for i in 0..n {
                env.insert(var.clone(), GuestValue::Num(i as f64));
                for s in body {
                    exec(pg, s, env, out)?;
                }
            }
        }
        Stmt::If(cond, then, els) => {
            let branch = if as_num(eval(pg, cond, env)?)? != 0.0 {
                then
            } else {
                els
            };
            for s in branch {
                exec(pg, s, env, out)?;
            }
        }
        Stmt::While(cond, body) => {
            let mut guard = 0u64;
            while as_num(eval(pg, cond, env)?)? != 0.0 {
                guard += 1;
                if guard > 10_000_000 {
                    return Err(ScriptError::Runtime(
                        "while loop exceeded 10M iterations".into(),
                    ));
                }
                for s in body {
                    exec(pg, s, env, out)?;
                }
            }
        }
        Stmt::Print(args) => {
            let mut parts = Vec::new();
            for a in args {
                let v = eval(pg, a, env)?;
                parts.push(display(pg, v)?);
            }
            out.push(parts.join(" "));
        }
        Stmt::Expr(e) => {
            eval(pg, e, env)?;
        }
    }
    Ok(())
}

fn as_num(v: GuestValue) -> Result<f64, ScriptError> {
    match v {
        GuestValue::Num(n) => Ok(n),
        other => Err(ScriptError::Runtime(format!(
            "expected a number, got {other:?}"
        ))),
    }
}

fn display(pg: &mut Polyglot, v: GuestValue) -> Result<String, ScriptError> {
    Ok(match v {
        GuestValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", n as i64)
            } else {
                format!("{n}")
            }
        }
        GuestValue::Str(s) => s,
        GuestValue::Poly(p) => {
            if p.array_id().is_some() {
                // Print arrays like Python lists (abbreviated when long).
                let data = p.to_vec(pg)?;
                if data.len() <= 12 {
                    format!("{data:?}")
                } else {
                    format!(
                        "[{}, ..., {}] (len {})",
                        data[..4]
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                        data[data.len() - 2..]
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                        data.len()
                    )
                }
            } else {
                format!("{p:?}")
            }
        }
        GuestValue::Configured(_) => "<configured kernel>".into(),
        GuestValue::Range(n) => format!("range({n})"),
    })
}

fn eval(
    pg: &mut Polyglot,
    e: &Expr,
    env: &mut HashMap<String, GuestValue>,
) -> Result<GuestValue, ScriptError> {
    Ok(match e {
        Expr::Num(v) => GuestValue::Num(*v),
        Expr::Str(s) => GuestValue::Str(s.clone()),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| ScriptError::Runtime(format!("undefined variable `{name}`")))?,
        Expr::Cmp(op, a, b) => {
            let a = as_num(eval(pg, a, env)?)?;
            let b = as_num(eval(pg, b, env)?)?;
            let t = match *op {
                "<" => a < b,
                ">" => a > b,
                "<=" => a <= b,
                ">=" => a >= b,
                "==" => a == b,
                "!=" => a != b,
                _ => unreachable!("parser emits known comparators"),
            };
            GuestValue::Num(if t { 1.0 } else { 0.0 })
        }
        Expr::Bin(op, a, b) => {
            let a = as_num(eval(pg, a, env)?)?;
            let b = as_num(eval(pg, b, env)?)?;
            GuestValue::Num(match op {
                '+' => a + b,
                '-' => a - b,
                '*' => a * b,
                '/' => a / b,
                _ => unreachable!("parser only emits + - * /"),
            })
        }
        Expr::Index(base, idx) => {
            let idx_v = as_num(eval(pg, idx, env)?)? as usize;
            match eval(pg, base, env)? {
                GuestValue::Poly(p) if p.array_id().is_some() => {
                    GuestValue::Num(p.get(pg, idx_v)? as f64)
                }
                other => return Err(ScriptError::Runtime(format!("cannot index into {other:?}"))),
            }
        }
        Expr::PolyEval(lang, code) => {
            let lang = match eval(pg, lang, env)? {
                GuestValue::Str(s) => s,
                other => {
                    return Err(ScriptError::Runtime(format!(
                        "polyglot.eval language must be a string, got {other:?}"
                    )))
                }
            };
            let code = match eval(pg, code, env)? {
                GuestValue::Str(s) => s,
                other => {
                    return Err(ScriptError::Runtime(format!(
                        "polyglot.eval code must be a string, got {other:?}"
                    )))
                }
            };
            let language = match lang.to_ascii_lowercase().as_str() {
                "grout" => Language::GrOUT,
                "grcuda" => Language::GrCUDA,
                other => return Err(ScriptError::Runtime(format!("unknown language `{other}`"))),
            };
            GuestValue::Poly(pg.eval(language, &code)?)
        }
        Expr::Call(target, args) => {
            // `range(n)` / `len(x)` builtins.
            if let Expr::Var(name) = target.as_ref() {
                if name == "range" {
                    if args.len() != 1 {
                        return Err(ScriptError::Runtime("range takes one argument".into()));
                    }
                    let n = as_num(eval(pg, &args[0], env)?)?;
                    return Ok(GuestValue::Range(n as i64));
                }
                if name == "len" {
                    if args.len() != 1 {
                        return Err(ScriptError::Runtime("len takes one argument".into()));
                    }
                    return match eval(pg, &args[0], env)? {
                        GuestValue::Poly(p) => match p.len() {
                            Some(n) => Ok(GuestValue::Num(n as f64)),
                            None => Err(ScriptError::Runtime("len() needs an array".into())),
                        },
                        GuestValue::Str(s) => Ok(GuestValue::Num(s.len() as f64)),
                        other => Err(ScriptError::Runtime(format!(
                            "len() needs an array or string, got {other:?}"
                        ))),
                    };
                }
            }
            let callee = eval(pg, target, env)?;
            match callee {
                // builder(source, signature) -> kernel
                GuestValue::Poly(v) if v.array_id().is_none() => {
                    // Either the buildkernel function or a kernel handle.
                    let evaled: Vec<GuestValue> = args
                        .iter()
                        .map(|a| eval(pg, a, env))
                        .collect::<Result<_, _>>()?;
                    if evaled.len() == 2 {
                        if let (GuestValue::Str(src), GuestValue::Str(sig)) =
                            (&evaled[0], &evaled[1])
                        {
                            return Ok(GuestValue::Poly(v.build(pg, src, sig)?));
                        }
                        // kernel(grid, block)
                        if let (GuestValue::Num(g), GuestValue::Num(b)) = (&evaled[0], &evaled[1]) {
                            return Ok(GuestValue::Configured(v.configure(*g as u32, *b as u32)));
                        }
                    }
                    return Err(ScriptError::Runtime(
                        "expected kernel(grid, block) or build(source, signature)".into(),
                    ));
                }
                // configured(args...) -> launch
                GuestValue::Configured(cfg) => {
                    let mut call_args = Vec::new();
                    for a in args {
                        call_args.push(match eval(pg, a, env)? {
                            GuestValue::Poly(p) => p,
                            GuestValue::Num(n) => {
                                if n.fract() == 0.0 {
                                    Value::int(n as i32)
                                } else {
                                    Value::float(n as f32)
                                }
                            }
                            other => {
                                return Err(ScriptError::Runtime(format!(
                                    "cannot pass {other:?} to a kernel"
                                )))
                            }
                        });
                    }
                    cfg.call(pg, &call_args)?;
                    GuestValue::Num(0.0)
                }
                other => return Err(ScriptError::Runtime(format!("{other:?} is not callable"))),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pg() -> Polyglot {
        Polyglot::with_workers(2)
    }

    #[test]
    fn listing1_as_a_script() {
        let script = r#"
            # Listing 1, GuestScript edition.
            KERNEL = "__global__ void square(float* x, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) { x[i] = x[i] * x[i]; } }"
            SIG = "square(x: inout pointer float, n: sint32)"
            build = polyglot.eval("grout", "buildkernel")
            square = build(KERNEL, SIG)
            x = polyglot.eval("grout", "float[100]")
            for i in range(100) { x[i] = i }
            square(4, 32)(x, 100)
            print(x[9])
            print("done")
        "#;
        let mut pg = pg();
        let out = run_script(&mut pg, script).unwrap();
        assert_eq!(out, vec!["81".to_string(), "done".to_string()]);
    }

    #[test]
    fn arithmetic_and_loops() {
        let script = r#"
            total = 0
            for i in range(10) { total = total + i * 2 }
            print(total, 3 + 4 * 2, (3 + 4) * 2, 7 / 2)
        "#;
        let out = run_script(&mut pg(), script).unwrap();
        assert_eq!(out, vec!["90 11 14 3.5".to_string()]);
    }

    #[test]
    fn arrays_print_like_lists() {
        let script = r#"
            x = polyglot.eval("grout", "float[4]")
            for i in range(4) { x[i] = i + 1 }
            print(x)
        "#;
        let out = run_script(&mut pg(), script).unwrap();
        assert_eq!(out, vec!["[1.0, 2.0, 3.0, 4.0]".to_string()]);
    }

    #[test]
    fn grcuda_language_is_accepted() {
        let script = r#"
            x = polyglot.eval("grcuda", "float[3]")
            x[0] = 5
            print(x[0])
        "#;
        let out = run_script(&mut pg(), script).unwrap();
        assert_eq!(out, vec!["5".to_string()]);
    }

    #[test]
    fn control_flow_and_len() {
        let script = r#"
            x = polyglot.eval("grout", "float[8]")
            i = 0
            while i < len(x) {
                x[i] = i * 10
                i = i + 1
            }
            if x[3] == 30 { print("thirty") } else { print("nope") }
            if x[3] != 30 { print("bad") }
            count = 0
            for i in range(8) {
                if x[i] >= 40 { count = count + 1 }
            }
            print(count, len("abc"))
        "#;
        let out = run_script(&mut pg(), script).unwrap();
        assert_eq!(out, vec!["thirty".to_string(), "4 3".to_string()]);
    }

    #[test]
    fn runaway_while_is_stopped() {
        let err = run_script(&mut pg(), "while 1 { x = 1 }").unwrap_err();
        assert!(err.to_string().contains("10M"));
    }

    #[test]
    fn errors_carry_context() {
        assert!(matches!(
            run_script(&mut pg(), "x = $"),
            Err(ScriptError::Parse(1, _))
        ));
        let err = run_script(&mut pg(), "print(nope)").unwrap_err();
        assert!(err.to_string().contains("undefined variable"));
        let err = run_script(&mut pg(), r#"x = polyglot.eval("java", "int[3]")"#).unwrap_err();
        assert!(err.to_string().contains("unknown language"));
        let err = run_script(&mut pg(), "for i in 5 { print(i) }").unwrap_err();
        assert!(err.to_string().contains("range"));
    }

    #[test]
    fn polyglot_errors_propagate() {
        let err = run_script(&mut pg(), r#"x = polyglot.eval("grout", "quux[3]")"#).unwrap_err();
        assert!(matches!(err, ScriptError::Polyglot(_)));
    }
}
