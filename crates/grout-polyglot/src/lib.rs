#![warn(missing_docs)]
//! # grout-polyglot — the multi-language API surface of GrOUT
//!
//! In the paper, GrOUT is a Truffle language inside GraalVM: any guest
//! language calls `polyglot.eval(GrOUT, ...)` to allocate device arrays and
//! build kernels from CUDA C++ source (Listing 1), and porting a GrCUDA
//! application only requires changing the language id (Listing 2). This
//! crate reproduces that surface without a JVM: a [`Polyglot`] context
//! evaluates the same mini-language (`"float[100]"`, `"buildkernel"`), hands
//! out dynamically-typed [`Value`] handles, checks GrCUDA-style NIDL
//! signatures, and executes on the real threaded runtime underneath.
//!
//! ```
//! use grout_polyglot::{Language, Polyglot, Value};
//!
//! let mut pg = Polyglot::with_workers(2);
//! // Listing 1, line by line:
//! let build = pg.eval(Language::GrOUT, "buildkernel").unwrap();
//! let square = build
//!     .build(
//!         &mut pg,
//!         "__global__ void square(float* x, int n) {
//!              int i = blockIdx.x * blockDim.x + threadIdx.x;
//!              if (i < n) { x[i] = x[i] * x[i]; }
//!          }",
//!         "square(x: inout pointer float, n: sint32)",
//!     )
//!     .unwrap();
//! let x = pg.eval(Language::GrOUT, "float[100]").unwrap();
//! x.fill_with(&mut pg, |i| i as f32).unwrap();
//! square
//!     .configure(64, 128)
//!     .call(&mut pg, &[x.clone(), Value::int(100)])
//!     .unwrap();
//! assert_eq!(x.get(&mut pg, 7).unwrap(), 49.0);
//! ```

mod guest;
mod signature;

use std::fmt;
use std::sync::Arc;

use grout_core::{ArrayId, LocalArg, LocalConfig, LocalError, LocalRuntime, PolicyKind};
use kernelc::{CompileError, CompiledKernel};

pub use guest::{run_script, ScriptError};
pub use signature::{Direction, SigParam, SigType, Signature, SignatureError};

/// Guest-visible language ids. Per the paper's Listing 2, switching a
/// workload from single-node GrCUDA to distributed GrOUT is exactly this
/// one-token change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    /// The distributed framework (this paper).
    GrOUT,
    /// The single-node baseline (Parravicini et al.); accepted with the
    /// identical syntax so Listing 2 ports run unchanged.
    GrCUDA,
}

/// Errors from the polyglot layer.
#[derive(Debug)]
pub enum PolyglotError {
    /// The eval string is not valid GrOUT syntax.
    Syntax(String),
    /// Kernel compilation failed (NVRTC stand-in).
    Compile(CompileError),
    /// Signature mismatch against the kernel source.
    Signature(SignatureError),
    /// A value was used in a way its kind does not support.
    Kind(String),
    /// Runtime failure.
    Runtime(LocalError),
    /// Array index out of range.
    Bounds {
        /// Requested index.
        index: usize,
        /// Array length.
        len: usize,
    },
}

impl fmt::Display for PolyglotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyglotError::Syntax(m) => write!(f, "syntax error: {m}"),
            PolyglotError::Compile(e) => write!(f, "{e}"),
            PolyglotError::Signature(e) => write!(f, "{e}"),
            PolyglotError::Kind(m) => write!(f, "kind error: {m}"),
            PolyglotError::Runtime(e) => write!(f, "{e}"),
            PolyglotError::Bounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
        }
    }
}

impl std::error::Error for PolyglotError {}

impl From<LocalError> for PolyglotError {
    fn from(e: LocalError) -> Self {
        PolyglotError::Runtime(e)
    }
}

impl From<CompileError> for PolyglotError {
    fn from(e: CompileError) -> Self {
        PolyglotError::Compile(e)
    }
}

impl From<SignatureError> for PolyglotError {
    fn from(e: SignatureError) -> Self {
        PolyglotError::Signature(e)
    }
}

/// What a [`Value`] is.
#[derive(Clone)]
enum Kind {
    /// A framework-managed device array.
    Array {
        id: ArrayId,
        len: usize,
        float: bool,
    },
    /// The `buildkernel` function.
    Builder,
    /// A compiled kernel (callable after `configure`).
    Kernel(Arc<CompiledKernel>),
    /// A float scalar.
    Float(f32),
    /// An int scalar.
    Int(i32),
}

/// A dynamically-typed guest value (Truffle interop stand-in).
#[derive(Clone)]
pub struct Value {
    kind: Kind,
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            Kind::Array { id, len, float } => write!(
                f,
                "Array({id:?}, len={len}, {})",
                if *float { "float" } else { "int" }
            ),
            Kind::Builder => write!(f, "buildkernel"),
            Kind::Kernel(k) => write!(f, "Kernel({})", k.name()),
            Kind::Float(v) => write!(f, "{v}"),
            Kind::Int(v) => write!(f, "{v}"),
        }
    }
}

/// A kernel with grid/block chosen: `square(GRID, BLOCK)` in Listing 1.
#[derive(Clone)]
pub struct Configured {
    kernel: Arc<CompiledKernel>,
    grid: u32,
    block: u32,
}

impl Value {
    /// A float scalar value.
    pub fn float(v: f32) -> Value {
        Value {
            kind: Kind::Float(v),
        }
    }

    /// An int scalar value.
    pub fn int(v: i32) -> Value {
        Value { kind: Kind::Int(v) }
    }

    /// Array length (arrays only).
    pub fn len(&self) -> Option<usize> {
        match &self.kind {
            Kind::Array { len, .. } => Some(*len),
            _ => None,
        }
    }

    /// True for an empty array value.
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// The backing array id (arrays only).
    pub fn array_id(&self) -> Option<ArrayId> {
        match &self.kind {
            Kind::Array { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// `buildkernel(source, signature)`: compiles via the NVRTC stand-in
    /// and cross-checks the NIDL signature (builder values only).
    pub fn build(
        &self,
        pg: &mut Polyglot,
        source: &str,
        signature: &str,
    ) -> Result<Value, PolyglotError> {
        match &self.kind {
            Kind::Builder => {
                let sig = Signature::parse(signature)?;
                let kernel = kernelc::compile_one(source, &sig.name)?;
                sig.check_against(&kernel)?;
                let _ = pg;
                Ok(Value {
                    kind: Kind::Kernel(Arc::new(kernel)),
                })
            }
            _ => Err(PolyglotError::Kind(
                "only `buildkernel` values are invocable as builders".into(),
            )),
        }
    }

    /// `kernel(grid, block)`: fixes the launch geometry (kernel values
    /// only).
    ///
    /// # Panics
    /// Panics when called on a non-kernel value (a guest language would
    /// raise a dynamic type error here).
    pub fn configure(&self, grid: u32, block: u32) -> Configured {
        match &self.kind {
            Kind::Kernel(k) => Configured {
                kernel: Arc::clone(k),
                grid,
                block,
            },
            _ => panic!("configure() requires a kernel value"),
        }
    }

    /// Reads `x[i]` (float arrays; synchronizes pending kernels).
    pub fn get(&self, pg: &mut Polyglot, index: usize) -> Result<f32, PolyglotError> {
        match &self.kind {
            Kind::Array {
                id,
                len,
                float: true,
            } => {
                if index >= *len {
                    return Err(PolyglotError::Bounds { index, len: *len });
                }
                let data = pg.rt.read_f32(*id)?;
                Ok(data[index])
            }
            Kind::Array { .. } => Err(PolyglotError::Kind(
                "float accessor used on an int array".into(),
            )),
            _ => Err(PolyglotError::Kind("get() requires an array".into())),
        }
    }

    /// Writes `x[i] = v` (float arrays; synchronizes pending kernels).
    pub fn set(&self, pg: &mut Polyglot, index: usize, v: f32) -> Result<(), PolyglotError> {
        match &self.kind {
            Kind::Array {
                id,
                len,
                float: true,
            } => {
                if index >= *len {
                    return Err(PolyglotError::Bounds { index, len: *len });
                }
                pg.rt.write_f32(*id, |data| data[index] = v)?;
                Ok(())
            }
            Kind::Array { .. } => Err(PolyglotError::Kind(
                "float accessor used on an int array".into(),
            )),
            _ => Err(PolyglotError::Kind("set() requires an array".into())),
        }
    }

    /// Bulk initialization without per-element synchronization.
    pub fn fill_with(
        &self,
        pg: &mut Polyglot,
        f: impl Fn(usize) -> f32,
    ) -> Result<(), PolyglotError> {
        match &self.kind {
            Kind::Array {
                id, float: true, ..
            } => {
                pg.rt.write_f32(*id, |data| {
                    for (i, e) in data.iter_mut().enumerate() {
                        *e = f(i);
                    }
                })?;
                Ok(())
            }
            _ => Err(PolyglotError::Kind(
                "fill_with() requires a float array".into(),
            )),
        }
    }

    /// Copies out the whole float array (synchronizes).
    pub fn to_vec(&self, pg: &mut Polyglot) -> Result<Vec<f32>, PolyglotError> {
        match &self.kind {
            Kind::Array {
                id, float: true, ..
            } => Ok(pg.rt.read_f32(*id)?),
            _ => Err(PolyglotError::Kind(
                "to_vec() requires a float array".into(),
            )),
        }
    }
}

impl Configured {
    /// Launches the kernel as a CE: `square(GRID, BLOCK)(x, n)`.
    pub fn call(&self, pg: &mut Polyglot, args: &[Value]) -> Result<(), PolyglotError> {
        let mut largs = Vec::with_capacity(args.len());
        for a in args {
            largs.push(match &a.kind {
                Kind::Array { id, .. } => LocalArg::Buf(*id),
                Kind::Float(v) => LocalArg::F32(*v),
                Kind::Int(v) => LocalArg::I32(*v),
                _ => {
                    return Err(PolyglotError::Kind(
                        "kernel arguments must be arrays or scalars".into(),
                    ))
                }
            });
        }
        pg.rt.launch(&self.kernel, self.grid, self.block, largs)?;
        Ok(())
    }
}

/// The polyglot context (GraalVM stand-in) wrapping a GrOUT deployment.
pub struct Polyglot {
    rt: LocalRuntime,
}

impl Polyglot {
    /// A context over an existing runtime configuration.
    pub fn new(cfg: LocalConfig) -> Self {
        Polyglot {
            rt: LocalRuntime::try_new(cfg).expect("spawn workers"),
        }
    }

    /// A context with `workers` round-robin workers.
    pub fn with_workers(workers: usize) -> Self {
        Polyglot::new(LocalConfig::new(workers, PolicyKind::RoundRobin))
    }

    /// A context over an already-built runtime — the hook distributed
    /// deployments use (`grout-net` builds a TCP-backed runtime, then
    /// hands it here so scripts run unchanged across processes).
    pub fn with_runtime(rt: LocalRuntime) -> Self {
        Polyglot { rt }
    }

    /// Evaluates a GrOUT/GrCUDA source string:
    ///
    /// - `"buildkernel"` — the kernel builder function,
    /// - `"float[N]"` / `"int[N]"` / `"double[N]"` — a managed device array.
    ///
    /// With [`Language::GrCUDA`] the same strings are accepted (Listing 2's
    /// one-token port), but the application runs single-node.
    pub fn eval(&mut self, lang: Language, code: &str) -> Result<Value, PolyglotError> {
        let _ = lang; // Same syntax in both languages; deployment differs.
        let code = code.trim();
        if code == "buildkernel" {
            return Ok(Value {
                kind: Kind::Builder,
            });
        }
        // Array allocation: elem[len]
        if let Some(open) = code.find('[') {
            let elem = code[..open].trim();
            let rest = &code[open + 1..];
            let close = rest
                .find(']')
                .ok_or_else(|| PolyglotError::Syntax(format!("missing `]` in `{code}`")))?;
            if !rest[close + 1..].trim().is_empty() {
                return Err(PolyglotError::Syntax(format!(
                    "trailing characters after `]` in `{code}` \
                     (multi-dimensional arrays are not supported)"
                )));
            }
            let len: usize = rest[..close]
                .trim()
                .parse()
                .map_err(|_| PolyglotError::Syntax(format!("bad length in `{code}`")))?;
            let (id, float) = match elem {
                "float" | "double" => (self.rt.alloc_f32(len), true),
                "int" | "sint32" => (self.rt.alloc_i32(len), false),
                other => {
                    return Err(PolyglotError::Syntax(format!(
                        "unknown element type `{other}`"
                    )))
                }
            };
            return Ok(Value {
                kind: Kind::Array { id, len, float },
            });
        }
        Err(PolyglotError::Syntax(format!(
            "unrecognized GrOUT expression `{code}`"
        )))
    }

    /// Waits for all enqueued CEs.
    pub fn synchronize(&mut self) -> Result<(), PolyglotError> {
        self.rt.synchronize()?;
        Ok(())
    }

    /// The underlying runtime (stats, DAG, coherence).
    pub fn runtime(&self) -> &LocalRuntime {
        &self.rt
    }

    /// Mutable access to the underlying runtime.
    pub fn runtime_mut(&mut self) -> &mut LocalRuntime {
        &mut self.rt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SQUARE: &str = "__global__ void square(float* x, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { x[i] = x[i] * x[i]; }
    }";
    const SQUARE_SIG: &str = "square(x: inout pointer float, n: sint32)";

    #[test]
    fn listing1_flow_works() {
        let mut pg = Polyglot::with_workers(2);
        let build = pg.eval(Language::GrOUT, "buildkernel").unwrap();
        let square = build.build(&mut pg, SQUARE, SQUARE_SIG).unwrap();
        let x = pg.eval(Language::GrOUT, "float[100]").unwrap();
        x.fill_with(&mut pg, |i| i as f32).unwrap();
        square
            .configure(4, 32)
            .call(&mut pg, &[x.clone(), Value::int(100)])
            .unwrap();
        let out = x.to_vec(&mut pg).unwrap();
        assert_eq!(out[9], 81.0);
        assert_eq!(x.len(), Some(100));
    }

    #[test]
    fn grcuda_language_id_is_accepted() {
        // Listing 2: the only change between GrCUDA and GrOUT code.
        let mut pg = Polyglot::with_workers(1);
        let x = pg.eval(Language::GrCUDA, "float[10]").unwrap();
        assert_eq!(x.len(), Some(10));
    }

    #[test]
    fn int_arrays_allocate() {
        let mut pg = Polyglot::with_workers(1);
        let x = pg.eval(Language::GrOUT, "int[42]").unwrap();
        assert_eq!(x.len(), Some(42));
        assert!(x.get(&mut pg, 0).is_err(), "float accessor on int array");
    }

    #[test]
    fn element_get_set_synchronize() {
        let mut pg = Polyglot::with_workers(2);
        let x = pg.eval(Language::GrOUT, "float[8]").unwrap();
        x.set(&mut pg, 3, 7.5).unwrap();
        assert_eq!(x.get(&mut pg, 3).unwrap(), 7.5);
        assert!(matches!(
            x.get(&mut pg, 8),
            Err(PolyglotError::Bounds { index: 8, len: 8 })
        ));
    }

    #[test]
    fn syntax_errors_are_reported() {
        let mut pg = Polyglot::with_workers(1);
        assert!(matches!(
            pg.eval(Language::GrOUT, "quux"),
            Err(PolyglotError::Syntax(_))
        ));
        assert!(pg.eval(Language::GrOUT, "float[abc]").is_err());
        assert!(pg.eval(Language::GrOUT, "float[2][3]").is_err());
        assert!(pg.eval(Language::GrOUT, "complex[4]").is_err());
    }

    #[test]
    fn signature_mismatch_rejected_at_build() {
        let mut pg = Polyglot::with_workers(1);
        let build = pg.eval(Language::GrOUT, "buildkernel").unwrap();
        let err = build
            .build(&mut pg, SQUARE, "square(x: in pointer float, n: sint32)")
            .unwrap_err();
        assert!(matches!(err, PolyglotError::Signature(_)));
    }

    #[test]
    fn scalar_values_pass_through() {
        let mut pg = Polyglot::with_workers(1);
        let build = pg.eval(Language::GrOUT, "buildkernel").unwrap();
        let axpb = build
            .build(
                &mut pg,
                "__global__ void axpb(float* y, float a, float b, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { y[i] = a * y[i] + b; }
                }",
                "axpb(y: inout pointer float, a: float, b: float, n: sint32)",
            )
            .unwrap();
        let y = pg.eval(Language::GrOUT, "float[16]").unwrap();
        y.fill_with(&mut pg, |_| 1.0).unwrap();
        axpb.configure(1, 16)
            .call(
                &mut pg,
                &[
                    y.clone(),
                    Value::float(2.0),
                    Value::float(0.5),
                    Value::int(16),
                ],
            )
            .unwrap();
        assert_eq!(y.get(&mut pg, 0).unwrap(), 2.5);
    }

    #[test]
    fn values_round_trip_through_two_kernels() {
        // A two-stage pipeline: square then offset, exercising dependency
        // tracking through the polyglot layer.
        let mut pg = Polyglot::with_workers(2);
        let build = pg.eval(Language::GrOUT, "buildkernel").unwrap();
        let square = build.build(&mut pg, SQUARE, SQUARE_SIG).unwrap();
        let offset = build
            .build(
                &mut pg,
                "__global__ void offset(float* x, float d, int n) {
                    int i = blockIdx.x * blockDim.x + threadIdx.x;
                    if (i < n) { x[i] = x[i] + d; }
                }",
                "offset(x: inout pointer float, d: float, n: sint32)",
            )
            .unwrap();
        let x = pg.eval(Language::GrOUT, "float[64]").unwrap();
        x.fill_with(&mut pg, |i| i as f32).unwrap();
        square
            .configure(2, 32)
            .call(&mut pg, &[x.clone(), Value::int(64)])
            .unwrap();
        offset
            .configure(2, 32)
            .call(&mut pg, &[x.clone(), Value::float(0.5), Value::int(64)])
            .unwrap();
        assert_eq!(x.get(&mut pg, 5).unwrap(), 25.5);
    }

    #[test]
    fn empty_array_allocates() {
        let mut pg = Polyglot::with_workers(1);
        let x = pg.eval(Language::GrOUT, "float[0]").unwrap();
        assert!(x.is_empty());
        assert!(x.to_vec(&mut pg).unwrap().is_empty());
    }

    #[test]
    fn whitespace_in_eval_is_tolerated() {
        let mut pg = Polyglot::with_workers(1);
        let x = pg.eval(Language::GrOUT, "  float[ 8 ]  ").unwrap();
        assert_eq!(x.len(), Some(8));
    }

    #[test]
    fn builder_only_builds() {
        let mut pg = Polyglot::with_workers(1);
        let x = pg.eval(Language::GrOUT, "float[4]").unwrap();
        assert!(matches!(
            x.build(&mut pg, SQUARE, SQUARE_SIG),
            Err(PolyglotError::Kind(_))
        ));
    }
}
