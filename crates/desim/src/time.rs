//! Virtual time for the discrete-event engine.
//!
//! Time is kept as an integer count of nanoseconds so that event ordering is
//! exact and runs are bit-for-bit reproducible; floating-point durations are
//! only produced at the reporting boundary.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the simulation origin.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation origin, as a float (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`. Saturates at zero rather than
    /// panicking so callers can race two timestamps safely.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a span from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a span from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// nanosecond and clamping negatives / NaN to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Nanoseconds in this span.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this span, as a float (reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds in this span, as a float (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction of spans.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The time needed to move `bytes` through a channel of `bytes_per_sec`.
    ///
    /// A non-positive rate yields zero time; callers model "no link" by not
    /// issuing the transfer at all, not with a zero rate.
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> SimDuration {
        if bytes_per_sec <= 0.0 {
            return SimDuration(0);
        }
        SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Deterministic exponential backoff: `base * 2^(attempt-1)`, saturating
    /// and clamped to `cap`. `attempt` is 1-based; attempt 0 yields zero
    /// (no wait before the first try). Integer arithmetic only, so retry
    /// schedules are bit-for-bit reproducible across runs and backends.
    pub fn exp_backoff(base: SimDuration, attempt: u32, cap: SimDuration) -> SimDuration {
        if attempt == 0 {
            return SimDuration::ZERO;
        }
        let shift = (attempt - 1).min(63);
        let factor = 1u64.checked_shl(shift).unwrap_or(u64::MAX);
        SimDuration(base.0.saturating_mul(factor).min(cap.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = self.saturating_sub(rhs);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY).0, u64::MAX);
    }

    #[test]
    fn time_arithmetic_saturates() {
        let t = SimTime::MAX + SimDuration::from_secs(10);
        assert_eq!(t, SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime(5), SimDuration::ZERO);
    }

    #[test]
    fn for_bytes_matches_rate() {
        // 1 GiB at 1 GiB/s is one second.
        let d = SimDuration::for_bytes(1 << 30, (1u64 << 30) as f64);
        assert_eq!(d, SimDuration::from_secs(1));
        assert_eq!(SimDuration::for_bytes(123, 0.0), SimDuration::ZERO);
    }

    #[test]
    fn exp_backoff_doubles_then_caps() {
        let base = SimDuration::from_millis(1);
        let cap = SimDuration::from_millis(100);
        assert_eq!(SimDuration::exp_backoff(base, 0, cap), SimDuration::ZERO);
        assert_eq!(SimDuration::exp_backoff(base, 1, cap), base);
        assert_eq!(
            SimDuration::exp_backoff(base, 2, cap),
            SimDuration::from_millis(2)
        );
        assert_eq!(
            SimDuration::exp_backoff(base, 5, cap),
            SimDuration::from_millis(16)
        );
        assert_eq!(SimDuration::exp_backoff(base, 8, cap), cap);
        // Extreme attempt counts saturate instead of overflowing.
        assert_eq!(SimDuration::exp_backoff(base, 200, cap), cap);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
