//! The event loop: a binary-heap calendar queue with stable FIFO tie-breaking.
//!
//! The engine is generic over a user state `S`. Events are boxed `FnOnce`
//! closures that receive the whole simulation (`&mut Sim<S>`) so they can both
//! mutate the state and schedule follow-up events. Determinism comes from two
//! rules: virtual time only advances through the queue, and events scheduled
//! for the same instant run in the order they were scheduled.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type Action<S> = Box<dyn FnOnce(&mut Sim<S>)>;

struct Scheduled<S> {
    time: SimTime,
    seq: u64,
    action: Action<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest
        // (time, seq) pair on top.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A discrete-event simulation over user state `S`.
pub struct Sim<S> {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Scheduled<S>>,
    cancelled: HashSet<u64>,
    events_run: u64,
    /// User-visible simulation state.
    pub state: S,
}

impl<S> Sim<S> {
    /// Creates an engine at time zero around the given state.
    pub fn new(state: S) -> Self {
        Sim {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            events_run: 0,
            state,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_run(&self) -> u64 {
        self.events_run
    }

    /// Number of events still pending (including cancelled tombstones).
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` to run at absolute time `t`.
    ///
    /// Scheduling in the past is a logic error in a discrete-event model;
    /// the event is clamped to "now" and will run after all events already
    /// queued for the current instant.
    pub fn schedule_at(
        &mut self,
        t: SimTime,
        action: impl FnOnce(&mut Sim<S>) + 'static,
    ) -> EventId {
        let t = t.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            time: t,
            seq,
            action: Box::new(action),
        });
        EventId(seq)
    }

    /// Schedules `action` to run `d` after the current time.
    pub fn schedule_in(
        &mut self,
        d: SimDuration,
        action: impl FnOnce(&mut Sim<S>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + d, action)
    }

    /// Cancels a pending event. Cancelling an already-run or already-cancelled
    /// event is a harmless no-op; returns whether the tombstone was new.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.cancelled.insert(id.0)
    }

    /// Runs the single earliest event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            self.now = ev.time;
            self.events_run += 1;
            (ev.action)(self);
            return true;
        }
        false
    }

    /// Runs until the queue drains. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs every event with `time <= deadline`, then advances the clock to
    /// `deadline` (even if idle). Events scheduled later stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        loop {
            let next = loop {
                match self.queue.peek() {
                    Some(ev) if self.cancelled.contains(&ev.seq) => {
                        let ev = self.queue.pop().expect("peeked");
                        self.cancelled.remove(&ev.seq);
                    }
                    Some(ev) => break Some(ev.time),
                    None => break None,
                }
            };
            match next {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.now = deadline.max(self.now);
        self.now
    }

    /// Runs for a span of virtual time from "now".
    pub fn run_for(&mut self, d: SimDuration) -> SimTime {
        let deadline = self.now + d;
        self.run_until(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(SimTime(30), |s| s.state.push(3));
        sim.schedule_at(SimTime(10), |s| s.state.push(1));
        sim.schedule_at(SimTime(20), |s| s.state.push(2));
        sim.run();
        assert_eq!(sim.state, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime(30));
        assert_eq!(sim.events_run(), 3);
    }

    #[test]
    fn simultaneous_events_run_fifo() {
        let mut sim = Sim::new(Vec::<u32>::new());
        for i in 0..100 {
            sim.schedule_at(SimTime(5), move |s| s.state.push(i));
        }
        sim.run();
        assert_eq!(sim.state, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(Vec::<u64>::new());
        sim.schedule_at(SimTime(1), |s| {
            s.state.push(s.now().as_nanos());
            s.schedule_in(SimDuration::from_nanos(4), |s| {
                s.state.push(s.now().as_nanos());
            });
        });
        sim.run();
        assert_eq!(sim.state, vec![1, 5]);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim = Sim::new(Vec::<u64>::new());
        sim.schedule_at(SimTime(10), |s| {
            s.schedule_at(SimTime(3), |s| s.state.push(s.now().as_nanos()));
        });
        sim.run();
        assert_eq!(sim.state, vec![10]);
    }

    #[test]
    fn cancelled_events_do_not_run() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_at(SimTime(10), |s| s.state += 1);
        sim.schedule_at(SimTime(20), |s| s.state += 10);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id));
        sim.run();
        assert_eq!(sim.state, 10);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(SimTime(10), |s| s.state.push(1));
        sim.schedule_at(SimTime(50), |s| s.state.push(2));
        sim.run_until(SimTime(30));
        assert_eq!(sim.state, vec![1]);
        assert_eq!(sim.now(), SimTime(30));
        sim.run();
        assert_eq!(sim.state, vec![1, 2]);
    }

    #[test]
    fn run_until_skips_cancelled_head() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_at(SimTime(10), |s| s.state += 1);
        sim.cancel(id);
        sim.run_until(SimTime(5));
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.state, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = || {
            let mut sim = Sim::new(Vec::<(u64, u32)>::new());
            for i in 0..50u32 {
                let t = SimTime(((i as u64) * 7919) % 97);
                sim.schedule_at(t, move |s| {
                    let now = s.now().as_nanos();
                    s.state.push((now, i));
                });
            }
            sim.run();
            sim.state
        };
        assert_eq!(trace(), trace());
    }
}
