//! Analytic FIFO rate servers.
//!
//! Streams, DMA engines and NICs all behave the same way at our level of
//! abstraction: a serial FIFO resource that moves sized jobs at a fixed rate,
//! possibly after a fixed per-job latency. Rather than simulating each job
//! with begin/end events, a [`RateServer`] computes start/finish instants
//! analytically and keeps utilization statistics; callers then schedule a
//! single completion event at the returned finish time.

use crate::time::{SimDuration, SimTime};

/// The computed timeline of one job on a [`RateServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTimeline {
    /// When the server began (or will begin) working on the job.
    pub start: SimTime,
    /// When the job completes.
    pub finish: SimTime,
    /// Time spent queued behind earlier jobs.
    pub queued: SimDuration,
    /// Pure service time (latency + size/rate).
    pub service: SimDuration,
}

/// A serial FIFO resource with a byte rate and a fixed per-job latency.
#[derive(Debug, Clone)]
pub struct RateServer {
    /// Service rate in bytes per second. Must be positive.
    rate_bps: f64,
    /// Fixed overhead added to every job (e.g. kernel-launch or packet
    /// latency).
    latency: SimDuration,
    /// The instant the server becomes idle given everything accepted so far.
    busy_until: SimTime,
    /// Accumulated busy time, for utilization reporting.
    busy_total: SimDuration,
    /// Number of jobs accepted.
    jobs: u64,
    /// Total bytes accepted.
    bytes: u64,
}

impl RateServer {
    /// Creates a server with the given rate (bytes/second) and per-job latency.
    ///
    /// # Panics
    /// Panics if `rate_bps` is not a positive finite number.
    pub fn new(rate_bps: f64, latency: SimDuration) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "RateServer rate must be positive, got {rate_bps}"
        );
        RateServer {
            rate_bps,
            latency,
            busy_until: SimTime::ZERO,
            busy_total: SimDuration::ZERO,
            jobs: 0,
            bytes: 0,
        }
    }

    /// Service rate in bytes per second.
    #[inline]
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Replaces the service rate going forward (e.g. degraded link).
    /// Jobs already accepted keep their computed finish times.
    pub fn set_rate_bps(&mut self, rate_bps: f64) {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "RateServer rate must be positive, got {rate_bps}"
        );
        self.rate_bps = rate_bps;
    }

    /// The instant the server becomes idle.
    #[inline]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// True when a job submitted at `now` would start immediately.
    #[inline]
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Accepts a job of `size_bytes` submitted at `now`; returns its timeline.
    pub fn submit(&mut self, now: SimTime, size_bytes: u64) -> JobTimeline {
        self.submit_with_extra(now, size_bytes, SimDuration::ZERO)
    }

    /// Accepts a job with an extra job-specific service component on top of
    /// the rate-proportional part (e.g. a kernel's compute time on a stream).
    pub fn submit_with_extra(
        &mut self,
        now: SimTime,
        size_bytes: u64,
        extra: SimDuration,
    ) -> JobTimeline {
        let start = self.busy_until.max(now);
        let service = self.latency + SimDuration::for_bytes(size_bytes, self.rate_bps) + extra;
        let finish = start + service;
        self.busy_until = finish;
        self.busy_total += service;
        self.jobs += 1;
        self.bytes = self.bytes.saturating_add(size_bytes);
        JobTimeline {
            start,
            finish,
            queued: start - now,
            service,
        }
    }

    /// Predicts the timeline of a job without accepting it.
    pub fn peek(&self, now: SimTime, size_bytes: u64) -> JobTimeline {
        let start = self.busy_until.max(now);
        let service = self.latency + SimDuration::for_bytes(size_bytes, self.rate_bps);
        JobTimeline {
            start,
            finish: start + service,
            queued: start - now,
            service,
        }
    }

    /// Number of jobs accepted so far.
    #[inline]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Total bytes accepted so far.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Fraction of `[0, horizon]` the server spent busy. Returns zero for a
    /// zero horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.as_nanos() == 0 {
            return 0.0;
        }
        // Work accepted but scheduled past the horizon still counts as busy
        // time inside the horizon window.
        let busy_in_window = self
            .busy_total
            .saturating_sub(self.busy_until.saturating_since(horizon));
        (busy_in_window.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srv(rate: f64, lat_ns: u64) -> RateServer {
        RateServer::new(rate, SimDuration::from_nanos(lat_ns))
    }

    #[test]
    fn idle_job_starts_immediately() {
        let mut s = srv(1e9, 0); // 1 GB/s
        let t = s.submit(SimTime(100), 1_000);
        assert_eq!(t.start, SimTime(100));
        assert_eq!(t.queued, SimDuration::ZERO);
        // 1000 bytes at 1 GB/s = 1 us.
        assert_eq!(t.finish, SimTime(100) + SimDuration::from_micros(1));
    }

    #[test]
    fn jobs_queue_fifo() {
        let mut s = srv(1e9, 0);
        let a = s.submit(SimTime(0), 1_000);
        let b = s.submit(SimTime(0), 1_000);
        assert_eq!(b.start, a.finish);
        assert_eq!(b.queued, SimDuration::from_micros(1));
    }

    #[test]
    fn latency_applies_per_job() {
        let mut s = srv(1e9, 500);
        let a = s.submit(SimTime(0), 0);
        let b = s.submit(SimTime(0), 0);
        assert_eq!(a.finish, SimTime(500));
        assert_eq!(b.finish, SimTime(1000));
    }

    #[test]
    fn peek_does_not_mutate() {
        let mut s = srv(1e9, 0);
        let p1 = s.peek(SimTime(0), 1_000);
        let p2 = s.peek(SimTime(0), 1_000);
        assert_eq!(p1, p2);
        assert_eq!(s.jobs(), 0);
        let real = s.submit(SimTime(0), 1_000);
        assert_eq!(real.finish, p1.finish);
    }

    #[test]
    fn extra_service_time_extends_job() {
        let mut s = srv(1e9, 0);
        let t = s.submit_with_extra(SimTime(0), 1_000, SimDuration::from_micros(9));
        assert_eq!(t.finish, SimTime::ZERO + SimDuration::from_micros(10));
    }

    #[test]
    fn idle_gap_is_not_busy_time() {
        let mut s = srv(1e9, 0);
        s.submit(SimTime(0), 1_000); // busy 0..1us
        s.submit(SimTime(3_000), 1_000); // busy 3us..4us
        assert!((s.utilization(SimTime(4_000)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamps_to_one() {
        let mut s = srv(1.0, 0); // pathologically slow
        s.submit(SimTime(0), 1_000_000);
        assert_eq!(s.utilization(SimTime(1)), 1.0);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = RateServer::new(0.0, SimDuration::ZERO);
    }
}
