#![warn(missing_docs)]
//! # desim — deterministic discrete-event simulation kernel
//!
//! The foundation of the GrOUT reproduction: a small, allocation-conscious
//! discrete-event engine with
//!
//! - integer-nanosecond virtual time ([`SimTime`], [`SimDuration`]),
//! - a calendar queue with stable FIFO ordering for simultaneous events
//!   ([`Sim`]),
//! - analytic FIFO rate servers for modelling streams, DMA engines and NICs
//!   ([`RateServer`]),
//! - a reproducible RNG ([`seeded_rng`]).
//!
//! Determinism is a hard requirement: every figure in the paper reproduction
//! must be regenerable bit-for-bit, so all randomness is seeded and all
//! same-instant events run in scheduling order.
//!
//! ```
//! use desim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(0u32);
//! sim.schedule_in(SimDuration::from_micros(5), |s| s.state += 1);
//! sim.run();
//! assert_eq!(sim.state, 1);
//! assert_eq!(sim.now().as_nanos(), 5_000);
//! ```

mod engine;
mod server;
mod time;

pub use engine::{EventId, Sim};
pub use server::{JobTimeline, RateServer};
pub use time::{SimDuration, SimTime};

/// A deterministic, platform-independent RNG for simulation inputs.
///
/// ChaCha8 is used (rather than `StdRng`) because its stream is stable across
/// rand versions and platforms, which keeps recorded experiment outputs valid.
pub fn seeded_rng(seed: u64) -> rand_chacha::ChaCha8Rng {
    use rand::SeedableRng;
    rand_chacha::ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let va: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = seeded_rng(43);
        let vc: Vec<u32> = (0..16).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }
}
