//! Property-based invariants of the discrete-event engine and rate servers.

use desim::{RateServer, Sim, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// The engine never observes time going backwards, regardless of the
    /// order and instants events are scheduled at.
    #[test]
    fn time_is_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Sim::new(Vec::<u64>::new());
        for t in times {
            sim.schedule_at(SimTime(t), |s| {
                let now = s.now().as_nanos();
                s.state.push(now);
            });
        }
        sim.run();
        prop_assert!(sim.state.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Every scheduled (non-cancelled) event runs exactly once.
    #[test]
    fn all_events_run(times in proptest::collection::vec(0u64..10_000, 0..300)) {
        let n = times.len();
        let mut sim = Sim::new(0usize);
        for t in times {
            sim.schedule_at(SimTime(t), |s| s.state += 1);
        }
        sim.run();
        prop_assert_eq!(sim.state, n);
        prop_assert_eq!(sim.events_run(), n as u64);
    }

    /// FIFO rate server: jobs never overlap, never start before submission,
    /// and the busy time equals the sum of service times.
    #[test]
    fn rate_server_is_serial(
        jobs in proptest::collection::vec((0u64..1_000_000, 1u64..1_000_000), 1..100),
        rate in 1.0f64..1e12,
    ) {
        let mut srv = RateServer::new(rate, SimDuration::from_nanos(10));
        let mut submissions: Vec<(u64, u64)> = jobs;
        submissions.sort_by_key(|&(t, _)| t);
        let mut prev_finish = SimTime::ZERO;
        for (t, size) in submissions {
            let now = SimTime(t).max(prev_finish.min(SimTime(t)));
            let tl = srv.submit(SimTime(t), size);
            prop_assert!(tl.start >= now);
            prop_assert!(tl.start >= prev_finish || tl.start >= SimTime(t));
            // Serial: this job starts no earlier than the previous finished.
            prop_assert!(tl.start >= prev_finish);
            prop_assert!(tl.finish >= tl.start);
            prev_finish = tl.finish;
        }
        prop_assert_eq!(srv.busy_until(), prev_finish);
    }

    /// peek() is a pure function: it matches the subsequent submit() and does
    /// not disturb server state.
    #[test]
    fn peek_predicts_submit(
        sizes in proptest::collection::vec(0u64..1_000_000, 1..50),
        rate in 1.0f64..1e12,
    ) {
        let mut srv = RateServer::new(rate, SimDuration::from_nanos(3));
        let mut now = SimTime::ZERO;
        for size in sizes {
            let p = srv.peek(now, size);
            let s = srv.submit(now, size);
            prop_assert_eq!(p, s);
            now += SimDuration::from_nanos(17);
        }
    }

    /// Utilization is always within [0, 1].
    #[test]
    fn utilization_bounded(
        sizes in proptest::collection::vec(1u64..1_000_000, 1..50),
        horizon in 1u64..10_000_000_000,
    ) {
        let mut srv = RateServer::new(1e9, SimDuration::ZERO);
        let mut now = SimTime::ZERO;
        for size in sizes {
            srv.submit(now, size);
            now += SimDuration::from_nanos(size % 1000);
        }
        let u = srv.utilization(SimTime(horizon));
        prop_assert!((0.0..=1.0).contains(&u));
    }
}
