//! A multi-GPU node: devices, peer copies, host memory, node-wide events.

use desim::{JobTimeline, SimDuration, SimTime};

use crate::device::{Device, DeviceId};
use crate::memory::MemoryPool;
use crate::specs::NodeSpec;
use crate::stream::{EventTable, GpuEventId};

/// One server in the cluster: `gpu_count` identical devices plus host DRAM.
#[derive(Debug, Clone)]
pub struct GpuNode {
    spec: NodeSpec,
    devices: Vec<Device>,
    host_memory: MemoryPool,
    events: EventTable,
}

impl GpuNode {
    /// Builds a node from its spec.
    pub fn new(spec: NodeSpec) -> Self {
        let devices = (0..spec.gpu_count)
            .map(|_| Device::new(spec.gpu.clone()))
            .collect();
        let host_memory = MemoryPool::new(spec.host_memory_bytes);
        GpuNode {
            devices,
            host_memory,
            events: EventTable::new(),
            spec,
        }
    }

    /// The node's static spec.
    #[inline]
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Number of GPUs.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Immutable device access.
    #[inline]
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// Mutable device access.
    #[inline]
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0]
    }

    /// Host memory pool.
    #[inline]
    pub fn host_memory(&self) -> &MemoryPool {
        &self.host_memory
    }

    /// Mutable host memory pool.
    #[inline]
    pub fn host_memory_mut(&mut self) -> &mut MemoryPool {
        &mut self.host_memory
    }

    /// Records a node-wide event that fires at `t`.
    pub fn record_event(&mut self, t: SimTime) -> GpuEventId {
        self.events.record(t)
    }

    /// Fire time of a recorded event.
    pub fn event_time(&self, id: GpuEventId) -> SimTime {
        self.events.fire_time(id)
    }

    /// Copies `bytes` between two devices in this node, occupying both peer
    /// engines for the window (PCIe P2P on the paper's OCI shapes).
    ///
    /// # Panics
    /// Panics if `src == dst`; use device memory directly for local moves.
    pub fn copy_peer(
        &mut self,
        now: SimTime,
        src: DeviceId,
        dst: DeviceId,
        bytes: u64,
    ) -> JobTimeline {
        assert_ne!(src, dst, "peer copy endpoints must differ");
        let spec = self.devices[src.0].spec();
        let service = spec.copy_latency + SimDuration::for_bytes(bytes, spec.peer_bps);
        let start = self.devices[src.0]
            .peer_busy_until()
            .max(self.devices[dst.0].peer_busy_until())
            .max(now);
        self.devices[src.0].occupy_peer(start, service);
        self.devices[dst.0].occupy_peer(start, service);
        JobTimeline {
            start,
            finish: start + service,
            queued: start - now,
            service,
        }
    }

    /// The device whose default work queue frees up first — a cheap signal
    /// for intra-node device selection.
    pub fn least_loaded_device(&self) -> DeviceId {
        let mut best = DeviceId(0);
        let mut best_at = self.devices[0]
            .stream(crate::stream::StreamId(0))
            .busy_until();
        for (i, d) in self.devices.iter().enumerate().skip(1) {
            let at = d.stream(crate::stream::StreamId(0)).busy_until();
            if at < best_at {
                best_at = at;
                best = DeviceId(i);
            }
        }
        best
    }

    /// Total device memory across GPUs (the oversubscription denominator).
    pub fn total_device_memory(&self) -> u64 {
        self.spec.total_device_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{DeviceSpec, NodeSpec};

    fn node() -> GpuNode {
        GpuNode::new(NodeSpec {
            gpu: DeviceSpec::test_tiny(),
            gpu_count: 2,
            host_memory_bytes: 1 << 30,
        })
    }

    #[test]
    fn node_has_devices_and_host_memory() {
        let n = node();
        assert_eq!(n.device_count(), 2);
        assert_eq!(n.host_memory().capacity(), 1 << 30);
        assert_eq!(n.total_device_memory(), 2 << 20);
    }

    #[test]
    fn peer_copy_occupies_both_engines() {
        let mut n = node();
        let tl = n.copy_peer(SimTime::ZERO, DeviceId(0), DeviceId(1), 100_000);
        assert!(tl.finish > tl.start);
        // A follow-up copy in the reverse direction must queue behind it.
        let tl2 = n.copy_peer(SimTime::ZERO, DeviceId(1), DeviceId(0), 100_000);
        assert!(tl2.start >= tl.finish);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_peer_copy_rejected() {
        let mut n = node();
        n.copy_peer(SimTime::ZERO, DeviceId(0), DeviceId(0), 1);
    }

    #[test]
    fn events_fire_at_recorded_times() {
        let mut n = node();
        let e = n.record_event(SimTime(123));
        assert_eq!(n.event_time(e), SimTime(123));
    }

    #[test]
    fn least_loaded_device_tracks_default_stream() {
        let mut n = node();
        let cost = crate::specs::KernelCost {
            flops: 1e9,
            ..Default::default()
        };
        n.device_mut(DeviceId(0)).launch_kernel(
            crate::stream::StreamId(0),
            SimTime::ZERO,
            &[],
            &cost,
            SimDuration::ZERO,
        );
        assert_eq!(n.least_loaded_device(), DeviceId(1));
    }
}
