//! Device/host memory accounting.
//!
//! Explicit (non-UVM) allocations fail when the device is full — that is the
//! pre-UVM world of Figure 2a. UVM residency bookkeeping is layered on top
//! in the `uvm-sim` crate; here we only track capacity and usage.

use std::fmt;

/// Error returned when an explicit allocation exceeds remaining capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes still free.
    pub available: u64,
    /// Total capacity.
    pub capacity: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: requested {} B, available {} B of {} B",
            self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A fixed-capacity memory pool with usage accounting.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    capacity: u64,
    used: u64,
    peak: u64,
    allocs: u64,
    frees: u64,
}

impl MemoryPool {
    /// A pool of `capacity` bytes, all free.
    pub fn new(capacity: u64) -> Self {
        MemoryPool {
            capacity,
            used: 0,
            peak: 0,
            allocs: 0,
            frees: 0,
        }
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    #[inline]
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// High-water mark of usage.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Reserves `bytes`, failing when capacity would be exceeded.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        if bytes > self.available() {
            return Err(OutOfMemory {
                requested: bytes,
                available: self.available(),
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        self.allocs += 1;
        Ok(())
    }

    /// Releases `bytes`.
    ///
    /// # Panics
    /// Panics if more is freed than is allocated — that is a bookkeeping bug
    /// in the caller, not a runtime condition.
    pub fn free(&mut self, bytes: u64) {
        assert!(
            bytes <= self.used,
            "freeing {bytes} B but only {} B allocated",
            self.used
        );
        self.used -= bytes;
        self.frees += 1;
    }

    /// (allocations, frees) performed so far.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.allocs, self.frees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut p = MemoryPool::new(1000);
        p.alloc(400).unwrap();
        p.alloc(600).unwrap();
        assert_eq!(p.available(), 0);
        assert_eq!(p.peak(), 1000);
        p.free(400);
        assert_eq!(p.used(), 600);
        assert_eq!(p.op_counts(), (2, 1));
    }

    #[test]
    fn oom_is_reported_not_applied() {
        let mut p = MemoryPool::new(100);
        p.alloc(60).unwrap();
        let err = p.alloc(50).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.available, 40);
        assert_eq!(p.used(), 60, "failed alloc must not change usage");
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut p = MemoryPool::new(100);
        p.free(1);
    }
}
