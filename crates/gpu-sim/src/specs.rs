//! Hardware specifications and kernel cost models.
//!
//! All absolute constants in the reproduction live here, so calibration is
//! auditable in one place. The defaults model the paper's testbed: NVIDIA
//! Tesla V100 (16 GiB HBM2) pairs behind PCIe gen3, in OCI bare-VM shapes.

use desim::SimDuration;

/// Static description of one GPU device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// On-device memory in bytes.
    pub memory_bytes: u64,
    /// Peak FP32 throughput in FLOP/s.
    pub fp32_flops: f64,
    /// Sustained device-memory (HBM) bandwidth in bytes/s.
    pub hbm_bps: f64,
    /// Effective host<->device copy bandwidth in bytes/s (PCIe).
    pub pcie_bps: f64,
    /// Effective device<->device copy bandwidth within a node in bytes/s.
    pub peer_bps: f64,
    /// Fixed kernel-launch latency.
    pub launch_latency: SimDuration,
    /// Fixed latency of initiating a DMA copy.
    pub copy_latency: SimDuration,
}

impl DeviceSpec {
    /// The paper's worker GPU: Tesla V100 SXM2 16 GiB.
    ///
    /// 15.7 TFLOP/s FP32, 900 GB/s HBM2; PCIe gen3 x16 sustains ~12 GB/s in
    /// practice; peer copies between the two V100s in an OCI GPU2 shape go
    /// over PCIe as well (no NVLink), so the peer rate matches PCIe.
    pub fn v100_16gb() -> Self {
        DeviceSpec {
            name: "Tesla V100 16GB",
            memory_bytes: 16 * (1 << 30),
            fp32_flops: 15.7e12,
            hbm_bps: 900e9,
            pcie_bps: 12e9,
            peer_bps: 10e9,
            launch_latency: SimDuration::from_micros(8),
            copy_latency: SimDuration::from_micros(10),
        }
    }

    /// A what-if variant: the same V100 inside an NVLink-equipped chassis
    /// (DGX-style). UVM migrations ride NVLink2 at ~40 GB/s effective
    /// instead of ~12 GB/s PCIe, and peer copies reach ~140 GB/s — used by
    /// the ablations to ask how much of the paper's cliff is interconnect.
    pub fn v100_nvlink() -> Self {
        DeviceSpec {
            name: "Tesla V100 16GB (NVLink)",
            pcie_bps: 40e9,
            peer_bps: 140e9,
            ..DeviceSpec::v100_16gb()
        }
    }

    /// A deliberately tiny device for tests: 1 MiB of memory, slow enough
    /// that timing assertions are easy to reason about.
    pub fn test_tiny() -> Self {
        DeviceSpec {
            name: "TestGPU 1MiB",
            memory_bytes: 1 << 20,
            fp32_flops: 1e9,
            hbm_bps: 1e9,
            pcie_bps: 1e8,
            peer_bps: 1e8,
            launch_latency: SimDuration::from_micros(1),
            copy_latency: SimDuration::from_micros(1),
        }
    }
}

/// The resource demand of one kernel launch, used for roofline timing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCost {
    /// Floating-point operations executed.
    pub flops: f64,
    /// Bytes read from device memory.
    pub bytes_read: u64,
    /// Bytes written to device memory.
    pub bytes_written: u64,
}

impl KernelCost {
    /// Combines two demands (e.g. kernel phases).
    pub fn merge(self, other: KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + other.flops,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
        }
    }

    /// Roofline execution time on `spec`, assuming all pages resident:
    /// the kernel is limited by whichever of compute or memory traffic is
    /// slower, plus the launch latency.
    pub fn time_on(&self, spec: &DeviceSpec) -> SimDuration {
        let compute = self.flops / spec.fp32_flops;
        let traffic = (self.bytes_read + self.bytes_written) as f64 / spec.hbm_bps;
        spec.launch_latency + SimDuration::from_secs_f64(compute.max(traffic))
    }
}

/// Description of one node in the cluster: identical GPUs plus host memory.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Per-GPU spec.
    pub gpu: DeviceSpec,
    /// Number of GPUs in the node.
    pub gpu_count: usize,
    /// Host DRAM in bytes.
    pub host_memory_bytes: u64,
}

impl NodeSpec {
    /// The paper's worker node: 2x V100 16 GiB, 180 GB host RAM.
    pub fn paper_worker() -> Self {
        NodeSpec {
            gpu: DeviceSpec::v100_16gb(),
            gpu_count: 2,
            host_memory_bytes: 180 * 1_000_000_000,
        }
    }

    /// Total device memory across the node's GPUs (32 GiB on the paper's
    /// workers — the denominator of the oversubscription factor).
    pub fn total_device_memory(&self) -> u64 {
        self.gpu.memory_bytes * self.gpu_count as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_constants() {
        let v = DeviceSpec::v100_16gb();
        assert_eq!(v.memory_bytes, 16 << 30);
        let node = NodeSpec::paper_worker();
        assert_eq!(node.total_device_memory(), 32 << 30);
    }

    #[test]
    fn nvlink_variant_only_changes_interconnect() {
        let pcie = DeviceSpec::v100_16gb();
        let nv = DeviceSpec::v100_nvlink();
        assert_eq!(nv.memory_bytes, pcie.memory_bytes);
        assert_eq!(nv.fp32_flops, pcie.fp32_flops);
        assert!(nv.pcie_bps > 3.0 * pcie.pcie_bps);
        assert!(nv.peer_bps > 10.0 * pcie.peer_bps);
    }

    #[test]
    fn roofline_picks_the_binding_resource() {
        let spec = DeviceSpec::test_tiny(); // 1 GFLOP/s, 1 GB/s
                                            // Compute-bound: 1 GFLOP, negligible traffic -> ~1 s.
        let c = KernelCost {
            flops: 1e9,
            bytes_read: 1,
            bytes_written: 0,
        };
        let t = c.time_on(&spec).as_secs_f64();
        assert!((t - 1.0).abs() < 0.01, "compute-bound time {t}");
        // Memory-bound: 2 GB traffic, negligible flops -> ~2 s.
        let m = KernelCost {
            flops: 1.0,
            bytes_read: 1 << 30,
            bytes_written: 1 << 30,
        };
        let t = m.time_on(&spec).as_secs_f64();
        assert!((t - 2.147).abs() < 0.01, "memory-bound time {t}");
    }

    #[test]
    fn launch_latency_floors_empty_kernels() {
        let spec = DeviceSpec::v100_16gb();
        let t = KernelCost::default().time_on(&spec);
        assert_eq!(t, spec.launch_latency);
    }

    #[test]
    fn merge_adds_demands() {
        let a = KernelCost {
            flops: 1.0,
            bytes_read: 2,
            bytes_written: 3,
        };
        let b = a.merge(a);
        assert_eq!(b.flops, 2.0);
        assert_eq!(b.bytes_read, 4);
        assert_eq!(b.bytes_written, 6);
    }
}
