//! CUDA-stream and event model.
//!
//! A stream is a FIFO queue of operations on one device: an operation starts
//! when (a) the stream is free, (b) every awaited event has fired, and
//! (c) it has been submitted. Because the simulation is analytic, an
//! operation's finish time is known at enqueue time and events record it
//! immediately — the GrCUDA-style intra-node scheduler then uses those event
//! times as `cudaStreamWaitEvent` targets, which is exactly the mechanism
//! in the paper's Algorithm 2.

use desim::{SimDuration, SimTime};

/// Identifies a stream within one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub usize);

/// Identifies a recorded event within one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GpuEventId(pub u64);

/// The computed window of one stream operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTimeline {
    /// When the operation begins executing.
    pub start: SimTime,
    /// When it completes (and its event, if recorded, fires).
    pub finish: SimTime,
}

/// A FIFO execution queue on one device.
#[derive(Debug, Clone)]
pub struct Stream {
    busy_until: SimTime,
    ops: u64,
    busy_total: SimDuration,
}

impl Stream {
    /// A fresh, idle stream.
    pub fn new() -> Self {
        Stream {
            busy_until: SimTime::ZERO,
            ops: 0,
            busy_total: SimDuration::ZERO,
        }
    }

    /// The instant the stream becomes idle.
    #[inline]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Number of operations enqueued so far.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total busy time accumulated.
    #[inline]
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// True when an operation submitted at `now` would start immediately
    /// (ignoring waits).
    #[inline]
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Enqueues an operation of the given `service` duration at `now`,
    /// gated behind the stream FIFO and the awaited event times.
    pub fn enqueue(&mut self, now: SimTime, waits: &[SimTime], service: SimDuration) -> OpTimeline {
        let gate = waits.iter().copied().max().unwrap_or(SimTime::ZERO);
        let start = self.busy_until.max(gate).max(now);
        let finish = start + service;
        self.busy_until = finish;
        self.busy_total += service;
        self.ops += 1;
        OpTimeline { start, finish }
    }

    /// Predicts `enqueue` without mutating.
    pub fn peek(&self, now: SimTime, waits: &[SimTime], service: SimDuration) -> OpTimeline {
        let gate = waits.iter().copied().max().unwrap_or(SimTime::ZERO);
        let start = self.busy_until.max(gate).max(now);
        OpTimeline {
            start,
            finish: start + service,
        }
    }
}

impl Default for Stream {
    fn default() -> Self {
        Stream::new()
    }
}

/// Node-level registry of recorded events.
///
/// In real CUDA an event is recorded into a stream and queried later; in the
/// analytic model the fire time is known at record time, so the registry is
/// a plain append-only table.
#[derive(Debug, Clone, Default)]
pub struct EventTable {
    fire_times: Vec<SimTime>,
}

impl EventTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event that fires at `t`; returns its id.
    pub fn record(&mut self, t: SimTime) -> GpuEventId {
        let id = GpuEventId(self.fire_times.len() as u64);
        self.fire_times.push(t);
        id
    }

    /// The fire time of a recorded event.
    pub fn fire_time(&self, id: GpuEventId) -> SimTime {
        self.fire_times[id.0 as usize]
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.fire_times.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.fire_times.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut s = Stream::new();
        let a = s.enqueue(SimTime(0), &[], SimDuration::from_micros(10));
        let b = s.enqueue(SimTime(0), &[], SimDuration::from_micros(5));
        assert_eq!(b.start, a.finish);
        assert_eq!(s.ops(), 2);
    }

    #[test]
    fn waits_gate_start() {
        let mut s = Stream::new();
        let tl = s.enqueue(
            SimTime(100),
            &[SimTime(500), SimTime(300)],
            SimDuration::from_nanos(1),
        );
        assert_eq!(tl.start, SimTime(500));
    }

    #[test]
    fn idle_stream_starts_at_submit() {
        let mut s = Stream::new();
        let tl = s.enqueue(SimTime(42), &[], SimDuration::from_nanos(8));
        assert_eq!(tl.start, SimTime(42));
        assert_eq!(tl.finish, SimTime(50));
    }

    #[test]
    fn peek_is_pure() {
        let mut s = Stream::new();
        s.enqueue(SimTime(0), &[], SimDuration::from_micros(3));
        let p = s.peek(SimTime(0), &[], SimDuration::from_micros(1));
        let q = s.peek(SimTime(0), &[], SimDuration::from_micros(1));
        assert_eq!(p, q);
        let real = s.enqueue(SimTime(0), &[], SimDuration::from_micros(1));
        assert_eq!(real, p);
    }

    #[test]
    fn event_table_round_trips() {
        let mut t = EventTable::new();
        assert!(t.is_empty());
        let a = t.record(SimTime(7));
        let b = t.record(SimTime(9));
        assert_eq!(t.fire_time(a), SimTime(7));
        assert_eq!(t.fire_time(b), SimTime(9));
        assert_eq!(t.len(), 2);
    }
}
