#![warn(missing_docs)]
//! # gpu-sim — GPU device model for the GrOUT reproduction
//!
//! Models everything the GrOUT scheduler observes about a GPU node:
//! FIFO streams with event-gated starts, independent DMA engines (which is
//! what makes transfer/computation overlap possible), peer copies between
//! GPUs, device/host memory pools, and roofline kernel timing calibrated to
//! the paper's Tesla V100 testbed.
//!
//! The model is analytic: operation finish times are computed at enqueue
//! time, so higher layers can either schedule completion events on a
//! [`desim::Sim`] or consume the timelines directly.
//!
//! ```
//! use desim::{SimDuration, SimTime};
//! use gpu_sim::{Device, DeviceSpec, KernelCost, StreamId};
//!
//! let mut dev = Device::new(DeviceSpec::v100_16gb());
//! let cost = KernelCost { flops: 1e12, bytes_read: 1 << 30, bytes_written: 1 << 30 };
//! let tl = dev.launch_kernel(StreamId(0), SimTime::ZERO, &[], &cost, SimDuration::ZERO);
//! assert!(tl.finish > tl.start);
//! ```

mod device;
mod memory;
mod node;
mod specs;
mod stream;

pub use device::{Device, DeviceId};
pub use memory::{MemoryPool, OutOfMemory};
pub use node::GpuNode;
pub use specs::{DeviceSpec, KernelCost, NodeSpec};
pub use stream::{EventTable, GpuEventId, OpTimeline, Stream, StreamId};
