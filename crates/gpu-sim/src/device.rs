//! One GPU: streams, DMA engines, memory pool.

use desim::{JobTimeline, RateServer, SimDuration, SimTime};

use crate::memory::MemoryPool;
use crate::specs::{DeviceSpec, KernelCost};
use crate::stream::{OpTimeline, Stream, StreamId};

/// Identifies a device within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

/// A simulated GPU: a set of FIFO streams plus three DMA engines
/// (host-to-device, device-to-host, peer) and a device memory pool.
///
/// Copy engines are separate hardware on real GPUs, which is what makes
/// transfer/computation overlap possible — the overlap GrOUT's scheduler is
/// designed to exploit — so they are modeled as independent [`RateServer`]s.
#[derive(Debug, Clone)]
pub struct Device {
    spec: DeviceSpec,
    streams: Vec<Stream>,
    h2d: RateServer,
    d2h: RateServer,
    peer: RateServer,
    memory: MemoryPool,
}

impl Device {
    /// A device with one default stream (stream 0, like CUDA's).
    pub fn new(spec: DeviceSpec) -> Self {
        let h2d = RateServer::new(spec.pcie_bps, spec.copy_latency);
        let d2h = RateServer::new(spec.pcie_bps, spec.copy_latency);
        let peer = RateServer::new(spec.peer_bps, spec.copy_latency);
        let memory = MemoryPool::new(spec.memory_bytes);
        Device {
            spec,
            streams: vec![Stream::new()],
            h2d,
            d2h,
            peer,
            memory,
        }
    }

    /// The device's static spec.
    #[inline]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The device memory pool.
    #[inline]
    pub fn memory(&self) -> &MemoryPool {
        &self.memory
    }

    /// Mutable access to the memory pool (UVM layers its residency on top).
    #[inline]
    pub fn memory_mut(&mut self) -> &mut MemoryPool {
        &mut self.memory
    }

    /// Creates a new stream and returns its id.
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.push(Stream::new());
        StreamId(self.streams.len() - 1)
    }

    /// Number of streams (including the default one).
    #[inline]
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Immutable view of a stream.
    #[inline]
    pub fn stream(&self, id: StreamId) -> &Stream {
        &self.streams[id.0]
    }

    /// Launches a kernel of cost `cost` (plus `extra` stall time, e.g. UVM
    /// fault service computed by the caller) on `stream`, gated by `waits`.
    pub fn launch_kernel(
        &mut self,
        stream: StreamId,
        now: SimTime,
        waits: &[SimTime],
        cost: &KernelCost,
        extra: SimDuration,
    ) -> OpTimeline {
        let service = cost.time_on(&self.spec) + extra;
        self.streams[stream.0].enqueue(now, waits, service)
    }

    /// Predicts a kernel launch without mutating the stream.
    pub fn peek_kernel(
        &self,
        stream: StreamId,
        now: SimTime,
        waits: &[SimTime],
        cost: &KernelCost,
        extra: SimDuration,
    ) -> OpTimeline {
        let service = cost.time_on(&self.spec) + extra;
        self.streams[stream.0].peek(now, waits, service)
    }

    /// Enqueues a host-to-device copy on the H2D engine.
    pub fn copy_h2d(&mut self, now: SimTime, bytes: u64) -> JobTimeline {
        self.h2d.submit(now, bytes)
    }

    /// Enqueues a device-to-host copy on the D2H engine.
    pub fn copy_d2h(&mut self, now: SimTime, bytes: u64) -> JobTimeline {
        self.d2h.submit(now, bytes)
    }

    /// Occupies this device's peer engine for a device<->device copy window.
    /// (The node pairs both endpoints' engines.)
    pub fn occupy_peer(&mut self, start: SimTime, service: SimDuration) -> JobTimeline {
        self.peer.submit_with_extra(start, 0, service)
    }

    /// When the peer engine becomes idle.
    #[inline]
    pub fn peer_busy_until(&self) -> SimTime {
        self.peer.busy_until()
    }

    /// When the H2D engine becomes idle.
    #[inline]
    pub fn h2d_busy_until(&self) -> SimTime {
        self.h2d.busy_until()
    }

    /// Total bytes moved host-to-device so far.
    #[inline]
    pub fn h2d_bytes(&self) -> u64 {
        self.h2d.bytes()
    }

    /// Total bytes moved device-to-host so far.
    #[inline]
    pub fn d2h_bytes(&self) -> u64 {
        self.d2h.bytes()
    }

    /// The stream (by id) that would start an operation of `service` soonest
    /// at `now` — the "least busy" choice used by intra-node scheduling.
    pub fn least_busy_stream(&self, now: SimTime) -> StreamId {
        let mut best = StreamId(0);
        let mut best_at = self.streams[0].busy_until();
        for (i, s) in self.streams.iter().enumerate().skip(1) {
            if s.busy_until() < best_at {
                best_at = s.busy_until();
                best = StreamId(i);
            }
        }
        let _ = now;
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(DeviceSpec::test_tiny())
    }

    #[test]
    fn kernel_runs_on_stream_fifo() {
        let mut d = dev();
        let cost = KernelCost {
            flops: 1e6, // 1 ms at 1 GFLOP/s
            ..Default::default()
        };
        let a = d.launch_kernel(StreamId(0), SimTime::ZERO, &[], &cost, SimDuration::ZERO);
        let b = d.launch_kernel(StreamId(0), SimTime::ZERO, &[], &cost, SimDuration::ZERO);
        assert_eq!(b.start, a.finish);
    }

    #[test]
    fn separate_streams_overlap() {
        let mut d = dev();
        let s1 = d.create_stream();
        let cost = KernelCost {
            flops: 1e6,
            ..Default::default()
        };
        let a = d.launch_kernel(StreamId(0), SimTime::ZERO, &[], &cost, SimDuration::ZERO);
        let b = d.launch_kernel(s1, SimTime::ZERO, &[], &cost, SimDuration::ZERO);
        assert_eq!(a.start, b.start, "independent streams run concurrently");
    }

    #[test]
    fn copies_overlap_with_kernels() {
        let mut d = dev();
        let cost = KernelCost {
            flops: 1e9, // 1 s
            ..Default::default()
        };
        let k = d.launch_kernel(StreamId(0), SimTime::ZERO, &[], &cost, SimDuration::ZERO);
        let c = d.copy_h2d(SimTime::ZERO, 1000);
        assert!(c.finish < k.finish, "DMA engine independent of SMs");
    }

    #[test]
    fn extra_stall_extends_kernel() {
        let mut d = dev();
        let base = d.launch_kernel(
            StreamId(0),
            SimTime::ZERO,
            &[],
            &KernelCost::default(),
            SimDuration::ZERO,
        );
        let stalled = d.launch_kernel(
            StreamId(0),
            SimTime::ZERO,
            &[],
            &KernelCost::default(),
            SimDuration::from_millis(5),
        );
        let base_len = base.finish - base.start;
        let stall_len = stalled.finish - stalled.start;
        assert_eq!(stall_len, base_len + SimDuration::from_millis(5));
    }

    #[test]
    fn least_busy_stream_prefers_idle() {
        let mut d = dev();
        let s1 = d.create_stream();
        let cost = KernelCost {
            flops: 1e9,
            ..Default::default()
        };
        d.launch_kernel(StreamId(0), SimTime::ZERO, &[], &cost, SimDuration::ZERO);
        assert_eq!(d.least_busy_stream(SimTime::ZERO), s1);
    }

    #[test]
    fn dma_byte_counters() {
        let mut d = dev();
        d.copy_h2d(SimTime::ZERO, 100);
        d.copy_h2d(SimTime::ZERO, 50);
        d.copy_d2h(SimTime::ZERO, 25);
        assert_eq!(d.h2d_bytes(), 150);
        assert_eq!(d.d2h_bytes(), 25);
    }
}
