//! Property-based invariants of the GPU device model.

use desim::{SimDuration, SimTime};
use gpu_sim::{Device, DeviceId, DeviceSpec, GpuNode, KernelCost, NodeSpec, StreamId};
use proptest::prelude::*;

fn tiny_node(gpus: usize) -> GpuNode {
    GpuNode::new(NodeSpec {
        gpu: DeviceSpec::test_tiny(),
        gpu_count: gpus,
        host_memory_bytes: 1 << 30,
    })
}

proptest! {
    /// Stream FIFO: operations on one stream never overlap and preserve
    /// submission order, whatever the submission times and waits.
    #[test]
    fn stream_is_fifo(
        ops in proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000, 0u64..500_000), 1..50)
    ) {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let mut prev_finish = SimTime::ZERO;
        for (now, wait, dur) in ops {
            let tl = dev.launch_kernel(
                StreamId(0),
                SimTime(now),
                &[SimTime(wait)],
                &KernelCost::default(),
                SimDuration::from_nanos(dur),
            );
            prop_assert!(tl.start >= SimTime(now));
            prop_assert!(tl.start >= SimTime(wait));
            prop_assert!(tl.start >= prev_finish, "stream op overlapped its predecessor");
            prop_assert!(tl.finish >= tl.start);
            prev_finish = tl.finish;
        }
    }

    /// Kernel time is monotone in every resource demand.
    #[test]
    fn roofline_is_monotone(
        f1 in 0.0f64..1e12, f2 in 0.0f64..1e12,
        b1 in 0u64..(1 << 33), b2 in 0u64..(1 << 33),
    ) {
        let spec = DeviceSpec::v100_16gb();
        let lo = KernelCost { flops: f1.min(f2), bytes_read: b1.min(b2), bytes_written: 0 };
        let hi = KernelCost { flops: f1.max(f2), bytes_read: b1.max(b2), bytes_written: 0 };
        prop_assert!(lo.time_on(&spec) <= hi.time_on(&spec));
    }

    /// Peer copies produce sane windows whatever the device pairs.
    #[test]
    fn peer_copies_have_sane_windows(
        copies in proptest::collection::vec((0usize..3, 0usize..3, 1u64..1_000_000), 1..40)
    ) {
        let mut node = tiny_node(3);
        for (s, d, bytes) in copies {
            if s == d {
                continue;
            }
            let tl = node.copy_peer(SimTime::ZERO, DeviceId(s), DeviceId(d), bytes);
            prop_assert!(tl.finish >= tl.start);
            prop_assert!(tl.finish.as_nanos() - tl.start.as_nanos() == tl.service.as_nanos());
        }
    }

    /// Memory pool accounting: usage equals the sum of live allocations and
    /// never exceeds capacity, under arbitrary alloc/free interleavings.
    #[test]
    fn memory_pool_accounting(ops in proptest::collection::vec((1u64..4096, any::<bool>()), 1..100)) {
        let mut pool = gpu_sim::MemoryPool::new(64 << 10);
        let mut live: Vec<u64> = Vec::new();
        for (bytes, free_instead) in ops {
            if free_instead && !live.is_empty() {
                let b = live.pop().expect("non-empty");
                pool.free(b);
            } else if pool.alloc(bytes).is_ok() {
                live.push(bytes);
            }
            let expected: u64 = live.iter().sum();
            prop_assert_eq!(pool.used(), expected);
            prop_assert!(pool.used() <= pool.capacity());
            prop_assert!(pool.peak() >= pool.used());
        }
    }
}
