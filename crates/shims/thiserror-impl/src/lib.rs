//! `#[derive(Error)]` for the offline `thiserror` stand-in. Hand-parses the
//! token stream (no `syn`/`quote` offline) and supports enums with unit,
//! tuple, and named-field variants annotated `#[error("...")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `Display` (from `#[error("...")]` attributes) and
/// `std::error::Error` for an enum.
#[proc_macro_derive(Error, attributes(error))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, body) = parse_enum(&tokens);
    let variants = parse_variants(&body);

    let mut arms = String::new();
    for v in &variants {
        let fmt = rewrite_positional(&v.error_fmt, v.tuple_arity);
        match &v.fields {
            Fields::Unit => {
                arms.push_str(&format!("Self::{} => write!(f, {fmt}),\n", v.name));
            }
            Fields::Tuple(arity) => {
                let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                arms.push_str(&format!(
                    "Self::{}({}) => write!(f, {fmt}),\n",
                    v.name,
                    binds.join(", ")
                ));
            }
            Fields::Named(names) => {
                arms.push_str(&format!(
                    "Self::{} {{ {} }} => write!(f, {fmt}),\n",
                    v.name,
                    names.join(", ")
                ));
            }
        }
    }

    let out = format!(
        "impl ::std::fmt::Display for {name} {{\n\
         fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
         #[allow(unused_variables)]\n\
         match self {{\n\
         {arms}\
         }}\n\
         }}\n\
         }}\n\
         impl ::std::error::Error for {name} {{}}\n"
    );
    out.parse().expect("thiserror-impl: generated impl parses")
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    error_fmt: String,
    fields: Fields,
    tuple_arity: usize,
}

/// Returns the enum name and its brace-delimited body tokens, skipping
/// outer attributes (`#[non_exhaustive]`, doc comments, ...).
fn parse_enum(tokens: &[TokenTree]) -> (String, Vec<TokenTree>) {
    let mut i = 0;
    let mut name = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = Some(n.to_string());
                }
                i += 2;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let n = name.expect("thiserror-impl: enum name before body");
                return (n, g.stream().into_iter().collect());
            }
            _ => i += 1,
        }
    }
    panic!("thiserror-impl: only enums are supported");
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    let mut pending_fmt: Option<String> = None;
    while i < body.len() {
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = body.get(i + 1) {
                    if let Some(fmt) = extract_error_fmt(g) {
                        pending_fmt = Some(fmt);
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) => {
                let vname = id.to_string();
                i += 1;
                let mut fields = Fields::Unit;
                let mut arity = 0;
                if let Some(TokenTree::Group(g)) = body.get(i) {
                    match g.delimiter() {
                        Delimiter::Parenthesis => {
                            arity = count_top_level_fields(g);
                            fields = Fields::Tuple(arity);
                            i += 1;
                        }
                        Delimiter::Brace => {
                            fields = Fields::Named(named_field_names(g));
                            i += 1;
                        }
                        _ => {}
                    }
                }
                // Skip the trailing comma, if any.
                if let Some(TokenTree::Punct(p)) = body.get(i) {
                    if p.as_char() == ',' {
                        i += 1;
                    }
                }
                let fmt = pending_fmt.take().unwrap_or_else(|| {
                    panic!("thiserror-impl: variant `{vname}` lacks #[error(\"...\")]")
                });
                variants.push(Variant {
                    name: vname,
                    error_fmt: fmt,
                    fields,
                    tuple_arity: arity,
                });
            }
            _ => i += 1,
        }
    }
    variants
}

/// If `g` is the bracket group of an `#[error("...")]` attribute, returns
/// the raw format-string literal (quotes and escapes intact).
fn extract_error_fmt(g: &proc_macro::Group) -> Option<String> {
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "error" => {}
        _ => return None,
    }
    if let Some(TokenTree::Group(args)) = inner.get(1) {
        if let Some(TokenTree::Literal(lit)) = args.stream().into_iter().next() {
            return Some(lit.to_string());
        }
    }
    None
}

/// Counts comma-separated fields at the top level of a tuple-variant group,
/// ignoring commas nested inside `<...>` generic arguments.
fn count_top_level_fields(g: &proc_macro::Group) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for t in g.stream() {
        saw_any = true;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

/// Extracts field names from a named-field variant group.
fn named_field_names(g: &proc_macro::Group) -> Vec<String> {
    let body: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < body.len() {
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => i += 1,
            TokenTree::Ident(id) => {
                names.push(id.to_string());
                i += 1;
                let mut depth = 0i32;
                while i < body.len() {
                    if let TokenTree::Punct(p) = &body[i] {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => {
                                i += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    names
}

/// Rewrites positional interpolations `{0}` / `{0:?}` to the `f0` bindings
/// the generated match arm introduces, leaving named interpolations, format
/// specs, and escaped `{{`/`}}` untouched. Operates on the raw literal text;
/// digits and braces are never part of escape sequences, so this is safe.
fn rewrite_positional(lit: &str, arity: usize) -> String {
    let mut out = String::with_capacity(lit.len() + 8);
    let chars: Vec<char> = lit.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '{' {
            if chars.get(i + 1) == Some(&'{') {
                out.push_str("{{");
                i += 2;
                continue;
            }
            // `{<digits>` followed by `}` or `:` → positional reference.
            let mut j = i + 1;
            while j < chars.len() && chars[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 && matches!(chars.get(j), Some('}') | Some(':')) {
                let idx: usize = chars[i + 1..j].iter().collect::<String>().parse().unwrap();
                assert!(
                    idx < arity,
                    "thiserror-impl: positional {{{idx}}} out of range"
                );
                out.push('{');
                out.push('f');
                for d in &chars[i + 1..j] {
                    out.push(*d);
                }
                i = j;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}
