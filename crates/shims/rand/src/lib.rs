//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace patches `rand` to this vendored subset (see
//! `[patch.crates-io]` in the root `Cargo.toml`). Only the API surface the
//! workspace actually uses is provided: `RngCore`, `SeedableRng`, and the
//! `Rng` extension trait with `gen`/`gen_range`/`gen_bool`.

/// Core random-number-generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            for &b in chunk.iter().take((dest.len() - i).min(8)) {
                dest[i] = b;
                i += 1;
            }
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64-expand the seed into the full seed buffer, matching the
        // spirit (not the stream) of upstream rand.
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (d, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *d = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard2 {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard2 for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard2 for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard2 for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard2 for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard2 for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in gen_range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + s as i128;
                v as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = <$t as Standard2>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    fn gen<T: Standard2>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard2>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` stand-in.
pub mod rngs {
    pub use super::small::SmallRng;
}

mod small {
    use super::{RngCore, SeedableRng};

    /// A small fast xoshiro256**-style generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15; // avoid the all-zero fixed point
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w: i32 = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }
}
