//! Offline stand-in for `criterion`: same surface (`criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`), minimal statistics. Each benchmark
//! is timed over a fixed warm-up plus a bounded measurement loop and the
//! mean ns/iter is printed — enough to compare runs by eye; no HTML
//! reports, outlier analysis, or baselines.

use std::time::{Duration, Instant};

/// Re-export: callers use `std::hint::black_box` via criterion's name too.
pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Throughput annotation (recorded, currently only echoed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` display form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (iterations batches) to record.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Bounds total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for API compatibility; warm-up here is a fixed 3 iterations.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Records expected per-iteration throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs `f` with a [`Bencher`] and prints the mean time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, |b| f(b));
        self
    }

    /// Parameterized variant of [`Self::bench_function`].
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.full, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            budget: self.measurement_time,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters > 0 {
            b.total.as_nanos() as f64 / b.iters as f64
        } else {
            0.0
        };
        println!(
            "bench {}/{}: {:.1} ns/iter ({} iters)",
            self.name, id, mean_ns, b.iters
        );
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly, accumulating elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.sample_size as u64 || start.elapsed() >= self.budget {
                break;
            }
        }
        self.total += start.elapsed();
        self.iters += iters;
    }
}

/// Declares a benchmark-runner function invoking each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares `main` calling each runner from [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u64;
        group.bench_function("id", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 5);
    }
}
