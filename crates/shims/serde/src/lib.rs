//! Offline stand-in for `serde`, scoped to what this workspace needs:
//! `#[derive(Serialize)]` on named-field structs, serialized into an
//! in-memory JSON [`json::Value`] that the `serde_json` shim renders.
//!
//! Unlike real serde there is no `Serializer` abstraction — `Serialize`
//! converts directly to a JSON value. That is exactly the one sink the
//! workspace uses (`serde_json::to_value` / `to_string_pretty`).

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// The JSON data model the [`Serialize`] trait targets.
pub mod json {
    /// An in-memory JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Unsigned integer.
        U64(u64),
        /// Signed integer.
        I64(i64),
        /// Floating point number.
        F64(f64),
        /// String.
        String(String),
        /// Array.
        Array(Vec<Value>),
        /// Object; insertion order is preserved.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Looks a key up in an object (first match; `None` otherwise).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The boolean payload, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The value as `u64`, widening from any non-negative numeric
        /// representation.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::U64(n) => Some(*n),
                Value::I64(n) if *n >= 0 => Some(*n as u64),
                Value::F64(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        /// The value as `f64`, widening from any numeric representation.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::U64(n) => Some(*n as f64),
                Value::I64(n) => Some(*n as f64),
                Value::F64(n) => Some(*n),
                _ => None,
            }
        }

        /// The array items, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The object fields in insertion order, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(fields) => Some(fields),
                _ => None,
            }
        }
    }
}

/// Conversion into the JSON data model.
pub trait Serialize {
    /// Serializes `self` as a JSON value.
    fn to_json_value(&self) -> json::Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::U64(*self as u64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::I64(*self as i64)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json_value(&self) -> json::Value {
        json::Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> json::Value {
        json::Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> json::Value {
        match self {
            Some(v) => v.to_json_value(),
            None => json::Value::Null,
        }
    }
}

impl Serialize for json::Value {
    fn to_json_value(&self) -> json::Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::Serialize;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u64.to_json_value(), Value::U64(3));
        assert_eq!((-3i32).to_json_value(), Value::I64(-3));
        assert_eq!(1.5f64.to_json_value(), Value::F64(1.5));
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!("x".to_json_value(), Value::String("x".into()));
        assert_eq!(
            vec![1u8, 2].to_json_value(),
            Value::Array(vec![Value::U64(1), Value::U64(2)])
        );
        assert_eq!(None::<u8>.to_json_value(), Value::Null);
    }
}
