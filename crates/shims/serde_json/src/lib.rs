//! Offline stand-in for `serde_json`: re-exports the `serde` shim's JSON
//! [`Value`], plus `to_value` and `to_string_pretty` with real JSON output
//! (string escaping, 2-space indentation, stable field order).

use std::fmt::Write as _;

pub use serde::json::Value;

/// Serialization error. The shim's data model is infallible, so this is
/// never constructed; it exists to keep call sites (`?`, `.expect`) intact.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Converts any `Serialize` type into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Renders a `Serialize` type as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), 0);
    Ok(out)
}

/// Renders a `Serialize` type as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_json_value());
    Ok(out)
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral floats readable ("3.0" rather than "3").
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => write_f64(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close);
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => write_f64(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let v = Value::Object(vec![
            ("id".into(), Value::String("fig1".into())),
            (
                "points".into(),
                Value::Array(vec![Value::U64(1), Value::F64(2.5)]),
            ),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"id\": \"fig1\",\n  \"points\": [\n    1,\n    2.5\n  ]\n}"
        );
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&Value::String("a\"b\\c\nd".into())).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let s = to_string(&Value::F64(3.0)).unwrap();
        assert_eq!(s, "3.0");
    }
}
