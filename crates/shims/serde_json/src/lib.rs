//! Offline stand-in for `serde_json`: re-exports the `serde` shim's JSON
//! [`Value`], plus `to_value` and `to_string_pretty` with real JSON output
//! (string escaping, 2-space indentation, stable field order), and
//! [`from_str`] — a recursive-descent parser back into [`Value`] so
//! consumers (trace differentials, `grout-top`) can read what the
//! serializers wrote.

use std::fmt::Write as _;

pub use serde::json::Value;

/// Serialization or parse error. Serialization is infallible in the
/// shim's data model; parsing reports the byte offset it gave up at.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any `Serialize` type into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Renders a `Serialize` type as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), 0);
    Ok(out)
}

/// Renders a `Serialize` type as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_json_value());
    Ok(out)
}

/// Parses JSON text into a [`Value`]. Numbers parse as `U64`/`I64` when
/// integral and in range, `F64` otherwise; object key order is preserved
/// (the shim's `Value::Object` is an ordered `Vec`). Trailing whitespace
/// is allowed, trailing garbage is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> Error {
        Error(format!("json parse error at byte {}: {what}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let cp = if (0xD800..0xDC00).contains(&hex) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let low = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| self.err("bad \\u escape"))?;
                                self.pos += 4;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                hex
                            };
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = match b {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral floats readable ("3.0" rather than "3").
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => write_f64(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close);
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => write_f64(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let v = Value::Object(vec![
            ("id".into(), Value::String("fig1".into())),
            (
                "points".into(),
                Value::Array(vec![Value::U64(1), Value::F64(2.5)]),
            ),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"id\": \"fig1\",\n  \"points\": [\n    1,\n    2.5\n  ]\n}"
        );
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&Value::String("a\"b\\c\nd".into())).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let s = to_string(&Value::F64(3.0)).unwrap();
        assert_eq!(s, "3.0");
    }

    #[test]
    fn parser_round_trips_what_the_serializers_write() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a\"b\\c\nd".into())),
            ("count".into(), Value::U64(42)),
            ("offset".into(), Value::I64(-7)),
            ("ratio".into(), Value::F64(2.5)),
            ("ok".into(), Value::Bool(true)),
            ("missing".into(), Value::Null),
            (
                "items".into(),
                Value::Array(vec![Value::U64(1), Value::String("two".into())]),
            ),
        ]);
        for rendered in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&rendered).unwrap(), v);
        }
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = from_str(r#"{"s": "tab\tnewline\né😀"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("tab\tnewline\né😀"));
        // Integral float stays f64; big u64 stays u64.
        assert_eq!(from_str("3.0").unwrap(), Value::F64(3.0));
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::U64(u64::MAX)
        );
        assert_eq!(from_str("-3").unwrap(), Value::I64(-3));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(from_str(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn value_accessors_navigate_parsed_trees() {
        let v = from_str(r#"{"a": {"b": [1, 2.5]}, "n": -1}"#).unwrap();
        let items = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("nope"), None);
    }
}
