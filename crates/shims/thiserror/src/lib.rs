//! Offline stand-in for `thiserror`.
//!
//! Re-exports the `#[derive(Error)]` macro from the companion proc-macro
//! crate. The derive supports enums whose variants carry an
//! `#[error("...")]` attribute with `{0}`-positional and `{name}`-named
//! interpolation (including format specs like `{0:?}`), generating
//! `std::fmt::Display` and `std::error::Error` impls. `#[from]` /
//! `#[source]` chaining is not implemented — errors in this workspace are
//! leaves.

pub use thiserror_impl::Error;
