//! Offline stand-in for `crossbeam-channel`: an unbounded MPMC channel built
//! on `Mutex<VecDeque>` + `Condvar`. Only the subset this workspace uses is
//! provided: `unbounded`, cloneable `Sender`/`Receiver`, `send`, `recv`,
//! `try_recv`, `recv_timeout`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct Shared<T> {
    queue: Mutex<Inner<T>>,
    ready: Condvar,
}

struct Inner<T> {
    buf: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned when all receivers are gone.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned when the channel is empty and all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error for [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error for [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Timed out while the channel was still empty.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// The sending half.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(Inner {
            buf: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues a message; fails when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut q = self.shared.queue.lock().unwrap();
        if q.receivers == 0 {
            return Err(SendError(msg));
        }
        q.buf.push_back(msg);
        drop(q);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut q = self.shared.queue.lock().unwrap();
        q.senders -= 1;
        if q.senders == 0 {
            drop(q);
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = q.buf.pop_front() {
                return Ok(v);
            }
            if q.senders == 0 {
                return Err(RecvError);
            }
            q = self.shared.ready.wait(q).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock().unwrap();
        match q.buf.pop_front() {
            Some(v) => Ok(v),
            None if q.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = q.buf.pop_front() {
                return Ok(v);
            }
            if q.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timeout) = self.shared.ready.wait_timeout(q, deadline - now).unwrap();
            q = guard;
        }
    }

    /// Drains currently queued messages without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnects_surface() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn timeout_fires_on_empty_channel() {
        let (_tx, rx) = unbounded::<i32>();
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
    }
}
