//! Offline stand-in for `rayon`.
//!
//! Provides genuinely parallel `into_par_iter().for_each(...)` over integer
//! ranges (the only shape this workspace uses on its hot path) by splitting
//! the range across `std::thread::scope` workers, plus sequential fallbacks
//! for slices and vectors. No work stealing: ranges are split into equal
//! chunks, which is adequate for the interpreter's uniform per-block work.

use std::num::NonZeroUsize;

/// Re-exports matching `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefMutIterator, ParallelIterator};
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item yielded.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter_mut` entry point for collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item yielded (mutable reference).
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrows `self` mutably.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

/// Minimal parallel-iterator interface.
pub trait ParallelIterator: Sized {
    /// Item yielded.
    type Item: Send;

    /// Applies `f` to every item, possibly across threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send;
}

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parallel iterator over an integer range.
pub struct RangeParIter<T> {
    start: T,
    end: T,
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;
            fn into_par_iter(self) -> RangeParIter<$t> {
                RangeParIter { start: self.start, end: self.end }
            }
        }

        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;

            fn for_each<F>(self, f: F)
            where
                F: Fn($t) + Sync + Send,
            {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                let n = workers().min(len.max(1));
                if n <= 1 || len <= 1 {
                    for v in self.start..self.end {
                        f(v);
                    }
                    return;
                }
                let chunk = len.div_ceil(n);
                let f = &f;
                std::thread::scope(|scope| {
                    for w in 0..n {
                        let lo = self.start + (w * chunk) as $t;
                        let hi = (self.start + ((w + 1) * chunk).min(len) as $t)
                            .min(self.end);
                        scope.spawn(move || {
                            for v in lo..hi {
                                f(v);
                            }
                        });
                    }
                });
            }
        }
    )*};
}
impl_range_par!(u32, u64, usize);

/// Sequential fallback parallel iterator over any iterator.
pub struct SeqParIter<I>(I);

impl<T: Send, I: Iterator<Item = T>> ParallelIterator for SeqParIter<I> {
    type Item = T;

    fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        self.0.for_each(f);
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = SeqParIter<std::vec::IntoIter<T>>;
    fn into_par_iter(self) -> Self::Iter {
        SeqParIter(self.into_iter())
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = SeqParIter<std::slice::IterMut<'a, T>>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        SeqParIter(self.iter_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn range_for_each_covers_every_item_once() {
        let sum = AtomicU64::new(0);
        (0u64..1000).into_par_iter().for_each(|v| {
            sum.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn empty_and_single_ranges_work() {
        let hits = AtomicU64::new(0);
        (5u32..5).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        (7usize..8).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
