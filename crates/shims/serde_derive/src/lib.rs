//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` for structs
//! with named fields (the only shape this workspace derives on). Parses the
//! token stream by hand — no `syn`/`quote` available offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by emitting each named field into a JSON
/// object, in declaration order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, body) = parse_struct(&tokens);
    let fields = parse_named_fields(&body);

    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "fields.push((\"{f}\".to_string(), \
                 ::serde::Serialize::to_json_value(&self.{f})));\n"
            )
        })
        .collect();
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::json::Value {{\n\
         let mut fields: Vec<(String, ::serde::json::Value)> = Vec::new();\n\
         {pushes}\
         ::serde::json::Value::Object(fields)\n\
         }}\n\
         }}\n"
    );
    out.parse().expect("serde_derive: generated impl parses")
}

/// Returns the struct name and its brace-delimited body tokens.
fn parse_struct(tokens: &[TokenTree]) -> (String, Vec<TokenTree>) {
    let mut i = 0;
    let mut name = None;
    while i < tokens.len() {
        match &tokens[i] {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = Some(n.to_string());
                }
                i += 2;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let n = name.expect("serde_derive: struct name before body");
                return (n, g.stream().into_iter().collect());
            }
            _ => i += 1,
        }
    }
    panic!("serde_derive: only structs with named fields are supported");
}

/// Extracts field names from a named-field struct body.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        match &body[i] {
            // Field attribute (e.g. a doc comment): `#` + bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Skip `pub` and an optional `(...)` restriction.
                i += 1;
                if let Some(TokenTree::Group(g)) = body.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                // `name : Type , ...` — record the name, then skip to the
                // next top-level comma (generic args use no top-level `,`
                // here because `<...>` never splits: commas inside angle
                // brackets are skipped via depth tracking).
                fields.push(id.to_string());
                i += 1;
                let mut depth = 0i32;
                while i < body.len() {
                    if let TokenTree::Punct(p) = &body[i] {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => {
                                i += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    fields
}
