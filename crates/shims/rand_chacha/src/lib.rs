//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream behind
//! the vendored `rand` stub's `RngCore`/`SeedableRng` traits.
//!
//! The keystream is platform-independent and fully determined by the seed,
//! which is the property `desim::seeded_rng` documents (bit-for-bit
//! reproducible experiment inputs). It is not guaranteed to match upstream
//! `rand_chacha`'s stream.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, 64-bit counter.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf` (16 = exhausted).
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // 4 double-rounds = 8 rounds.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial) {
            *s = s.wrapping_add(i);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks(4)) {
            let mut b = [0u8; 4];
            b.copy_from_slice(chunk);
            *k = u32::from_le_bytes(b);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_seed_determined() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let vc: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn words_are_well_mixed() {
        let mut r = ChaCha8Rng::seed_from_u64(0);
        let vals: Vec<u32> = (0..1000).map(|_| r.next_u32()).collect();
        let ones: u32 = vals.iter().map(|v| v.count_ones()).sum();
        // ~16 bits set per word on average.
        let avg = ones as f64 / vals.len() as f64;
        assert!((14.0..18.0).contains(&avg), "avg bits set {avg}");
    }
}
