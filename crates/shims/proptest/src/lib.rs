//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use: range/tuple/`Just`/`Vec<Strategy>` strategies,
//! `prop_map`/`prop_flat_map`/`prop_recursive`/`boxed`, `collection::vec`,
//! a small regex-subset string strategy, `prop_oneof!`, and the `proptest!`
//! / `prop_assert*!` macros.
//!
//! Differences from the real crate:
//! - **No shrinking.** A failing case reports its seed and case index; the
//!   run is reproducible (seeds derive from the test path and case number).
//! - Strategies are plain generators (no value trees).
//! - The string strategy implements only character classes and `{m,n}` /
//!   `*` / `+` / `?` repetition — the subset used in this repo's tests.

use std::sync::Arc;

/// Deterministic per-case RNG (SplitMix64). Seeded from the test path and
/// case index so failures reproduce across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for one test case.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator.
///
/// Unlike real proptest there is no value tree: `new_value` produces the
/// final value directly and failures are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a depth-bounded recursive strategy: `recurse` receives the
    /// strategy for the previous level and returns the next level.
    /// `_desired_size` and `_expected_branch` are accepted for signature
    /// compatibility and ignored (depth alone bounds recursion here).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat.clone()).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn ErasedStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

trait ErasedStrategy<T> {
    fn erased_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.erased_new_value(rng)
    }
}

/// Strategy yielding a constant (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// A `Vec` of strategies generates element-wise (used by
/// `prop_flat_map` that builds one strategy per position).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.new_value(rng)).collect()
    }
}

/// String strategy from a regex subset: character classes `[a-z...]`
/// (ranges, literals, `\n`/`\t`/`\r`/`\\` escapes) and literal characters,
/// each optionally followed by `{m}`, `{m,n}`, `*`, `+`, or `?`.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let pattern = regex_lite::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        regex_lite::generate(&pattern, rng)
    }
}

mod regex_lite {
    use super::TestRng;

    pub struct Atom {
        /// Candidate characters.
        pub chars: Vec<char>,
        pub min: u32,
        pub max: u32,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    pub fn parse(pattern: &str) -> Result<Vec<Atom>, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let candidates = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        // `a-b` range (a trailing `-` is a literal).
                        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) != Some(&']') {
                            i += 2;
                            let hi = if chars[i] == '\\' {
                                i += 1;
                                unescape(chars[i])
                            } else {
                                chars[i]
                            };
                            for c in lo..=hi {
                                set.push(c);
                            }
                        } else {
                            set.push(lo);
                        }
                        i += 1;
                    }
                    if i >= chars.len() {
                        return Err("unterminated character class".into());
                    }
                    i += 1; // consume ']'
                    set
                }
                '\\' => {
                    i += 1;
                    if i >= chars.len() {
                        return Err("trailing backslash".into());
                    }
                    let c = unescape(chars[i]);
                    i += 1;
                    vec![c]
                }
                '(' | ')' | '|' | '.' | '^' | '$' => {
                    return Err(format!("regex feature {:?} not supported", chars[i]));
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional repetition suffix.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or("unterminated {..}")?
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => {
                            let lo = a.trim().parse::<u32>().map_err(|e| e.to_string())?;
                            let hi = b.trim().parse::<u32>().map_err(|e| e.to_string())?;
                            (lo, hi)
                        }
                        None => {
                            let n = body.trim().parse::<u32>().map_err(|e| e.to_string())?;
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            if candidates.is_empty() {
                return Err("empty character class".into());
            }
            atoms.push(Atom {
                chars: candidates,
                min,
                max,
            });
        }
        Ok(atoms)
    }

    pub fn generate(atoms: &[Atom], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

/// Types with a canonical strategy (for [`any`]).
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds it.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for a whole primitive domain.
pub struct FullDomain<T>(std::marker::PhantomData<T>);

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullDomain<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullDomain<$t>;
            fn arbitrary() -> Self::Strategy {
                FullDomain(std::marker::PhantomData)
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullDomain<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullDomain<bool>;
    fn arbitrary() -> Self::Strategy {
        FullDomain(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with a random length in the given bounds.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: random length in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min + 1) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the stub trades depth for suite
        // speed (tests that need more set `with_cases` explicitly).
        ProptestConfig { cases: 64 }
    }
}

/// A property failure (carried by `prop_assert*!` early returns).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Common imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: the config expression is bound
/// at the top level so it can be referenced inside the per-test repetition.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let __path = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(__path, __case);
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = __result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            __path, __case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategy expressions with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a `proptest!` body; failure aborts the case (no shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), a
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let v = (3u64..10).new_value(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-4.0f32..4.0).new_value(&mut rng);
            assert!((-4.0..4.0).contains(&f));
            let i = (-5i32..5).new_value(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::for_case("t", 1);
        for _ in 0..200 {
            let s = "[ -~\n]{0,200}".new_value(&mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn vec_of_strategies_generates_elementwise() {
        let mut rng = crate::TestRng::for_case("t", 2);
        let strategies = vec![0u64..1, 5u64..6, 9u64..10];
        let v = strategies.new_value(&mut rng);
        assert_eq!(v, vec![0, 5, 9]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(xs in crate::collection::vec(0u32..100, 1..20), b in any::<bool>()) {
            prop_assert!(xs.len() < 20);
            prop_assert!(!xs.is_empty());
            let flipped = !b;
            prop_assert_eq!(b, !flipped);
            for x in &xs {
                prop_assert!(*x < 100, "x={} out of range", x);
            }
        }
    }

    #[test]
    fn oneof_and_recursive_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum E {
            Leaf(u32),
            Pair(Box<E>, Box<E>),
        }
        let leaf = (0u32..10).prop_map(E::Leaf);
        let strat = leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (0u32..10).prop_map(E::Leaf),
                (inner.clone(), inner).prop_map(|(a, b)| E::Pair(Box::new(a), Box::new(b))),
            ]
        });
        let mut rng = crate::TestRng::for_case("t", 3);
        let mut saw_pair = false;
        for _ in 0..100 {
            if matches!(strat.new_value(&mut rng), E::Pair(..)) {
                saw_pair = true;
            }
        }
        assert!(saw_pair, "recursion never produced a compound node");
    }
}
