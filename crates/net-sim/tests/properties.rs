//! Property-based invariants of the network model.

use desim::{SimDuration, SimTime};
use net_sim::{EndpointId, LinkSpec, Network, NicSpec, Topology};
use proptest::prelude::*;

fn arb_net(n: usize) -> Network {
    Network::new(Topology::uniform(
        n,
        NicSpec::from_mbit(4000.0),
        LinkSpec::from_mbit(40_000.0, SimDuration::from_micros(50)),
    ))
}

proptest! {
    /// No transfer finishes before it starts, starts before submission, or
    /// overlaps another transfer sharing its egress NIC.
    #[test]
    fn nic_occupancy_is_serial(
        xfers in proptest::collection::vec((0usize..4, 0usize..4, 1u64..10_000_000), 1..60)
    ) {
        let mut net = arb_net(4);
        let mut last_finish_per_egress = [SimTime::ZERO; 4];
        let mut last_finish_per_ingress = [SimTime::ZERO; 4];
        for (s, d, bytes) in xfers {
            let rec = net.transfer(SimTime::ZERO, EndpointId(s), EndpointId(d), bytes);
            prop_assert!(rec.timeline.finish >= rec.timeline.start);
            if s != d {
                prop_assert!(rec.timeline.start >= last_finish_per_egress[s]);
                prop_assert!(rec.timeline.start >= last_finish_per_ingress[d]);
                last_finish_per_egress[s] = rec.timeline.finish;
                last_finish_per_ingress[d] = rec.timeline.finish;
            }
        }
    }

    /// Conservation: bytes out across all endpoints equals bytes in equals
    /// the network total.
    #[test]
    fn byte_conservation(
        xfers in proptest::collection::vec((0usize..3, 0usize..3, 1u64..1_000_000), 0..60)
    ) {
        let mut net = arb_net(3);
        for (s, d, bytes) in xfers {
            net.transfer(SimTime::ZERO, EndpointId(s), EndpointId(d), bytes);
        }
        let total_out: u64 = (0..3).map(|i| net.stats(EndpointId(i)).bytes_out).sum();
        let total_in: u64 = (0..3).map(|i| net.stats(EndpointId(i)).bytes_in).sum();
        prop_assert_eq!(total_out, total_in);
        prop_assert_eq!(total_out, net.total_bytes());
    }

    /// Bigger messages never finish earlier on an idle network.
    #[test]
    fn monotone_in_size(a in 1u64..100_000_000, b in 1u64..100_000_000) {
        let (small, big) = if a <= b { (a, b) } else { (b, a) };
        let net_small = {
            let mut n = arb_net(2);
            n.transfer(SimTime::ZERO, EndpointId(0), EndpointId(1), small)
        };
        let net_big = {
            let mut n = arb_net(2);
            n.transfer(SimTime::ZERO, EndpointId(0), EndpointId(1), big)
        };
        prop_assert!(net_small.timeline.finish <= net_big.timeline.finish);
    }

    /// The probe matrix never reports more than the configured path rate.
    #[test]
    fn probe_respects_capacity(mbit in 10.0f64..100_000.0) {
        let topo = Topology::uniform(
            3,
            NicSpec::from_mbit(mbit),
            LinkSpec::from_mbit(mbit * 4.0, SimDuration::from_micros(50)),
        );
        let net = Network::new(topo);
        let m = net.probe_matrix(16 << 20);
        let cap = mbit * 1e6 / 8.0;
        for (i, row) in m.iter().enumerate() {
            for (j, &bw) in row.iter().enumerate() {
                if i != j {
                    prop_assert!(bw <= cap * 1.0001);
                    prop_assert!(bw > 0.0);
                }
            }
        }
    }
}
