//! Cluster topology: endpoints, NICs, and per-pair link capabilities.
//!
//! The paper's evaluation runs on OCI: one controller with an 8000 Mbit/s
//! NIC and workers with 4000 Mbit/s NICs, plus (in general) heterogeneous
//! interconnects or VNICs with different SLAs — which is exactly why the
//! `min-transfer-time` policy measures an interconnection matrix instead of
//! assuming symmetry.

use desim::SimDuration;

/// Identifies an endpoint (controller or worker node) in the cluster network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointId(pub usize);

/// Capabilities of one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// One-way propagation + protocol latency per message.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// A link described in Mbit/s (the unit the paper reports NICs in).
    pub fn from_mbit(mbit_per_s: f64, latency: SimDuration) -> Self {
        LinkSpec {
            bandwidth_bps: mbit_per_s * 1e6 / 8.0,
            latency,
        }
    }
}

/// Per-endpoint NIC capability; the achievable rate of a flow is limited by
/// the sender's egress, the receiver's ingress, and the path's link spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicSpec {
    /// Egress bandwidth, bytes per second.
    pub egress_bps: f64,
    /// Ingress bandwidth, bytes per second.
    pub ingress_bps: f64,
}

impl NicSpec {
    /// A symmetric NIC described in Mbit/s.
    pub fn from_mbit(mbit_per_s: f64) -> Self {
        let bps = mbit_per_s * 1e6 / 8.0;
        NicSpec {
            egress_bps: bps,
            ingress_bps: bps,
        }
    }
}

/// Static description of the cluster interconnect.
#[derive(Debug, Clone)]
pub struct Topology {
    nics: Vec<NicSpec>,
    /// Row-major `n x n` directed link table; `links[src * n + dst]`.
    links: Vec<LinkSpec>,
}

impl Topology {
    /// A fully-connected topology where every directed pair shares `link`
    /// and every endpoint has `nic`.
    pub fn uniform(n: usize, nic: NicSpec, link: LinkSpec) -> Self {
        assert!(n > 0, "topology needs at least one endpoint");
        Topology {
            nics: vec![nic; n],
            links: vec![link; n * n],
        }
    }

    /// The paper's OCI setup: endpoint 0 is the controller (8000 Mbit/s NIC),
    /// endpoints `1..=workers` are workers (4000 Mbit/s NICs); links add the
    /// given latency.
    pub fn paper_oci(workers: usize, latency: SimDuration) -> Self {
        let n = workers + 1;
        let mut topo = Topology::uniform(
            n,
            NicSpec::from_mbit(4000.0),
            LinkSpec::from_mbit(100_000.0, latency),
        );
        topo.nics[0] = NicSpec::from_mbit(8000.0);
        topo
    }

    /// Number of endpoints.
    #[inline]
    pub fn len(&self) -> usize {
        self.nics.len()
    }

    /// True when the topology has no endpoints (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nics.is_empty()
    }

    /// NIC spec of an endpoint.
    #[inline]
    pub fn nic(&self, e: EndpointId) -> NicSpec {
        self.nics[e.0]
    }

    /// Directed link spec for a pair.
    #[inline]
    pub fn link(&self, src: EndpointId, dst: EndpointId) -> LinkSpec {
        self.links[src.0 * self.len() + dst.0]
    }

    /// Overrides one directed link (e.g. a degraded VNIC).
    pub fn set_link(&mut self, src: EndpointId, dst: EndpointId, link: LinkSpec) {
        let n = self.len();
        self.links[src.0 * n + dst.0] = link;
    }

    /// Overrides an endpoint's NIC.
    pub fn set_nic(&mut self, e: EndpointId, nic: NicSpec) {
        self.nics[e.0] = nic;
    }

    /// The achievable steady-state rate of a single flow `src -> dst`:
    /// the minimum of sender egress, receiver ingress and the link itself.
    pub fn path_rate_bps(&self, src: EndpointId, dst: EndpointId) -> f64 {
        let link = self.link(src, dst);
        self.nic(src)
            .egress_bps
            .min(self.nic(dst).ingress_bps)
            .min(link.bandwidth_bps)
    }

    /// One-way latency of the path.
    pub fn path_latency(&self, src: EndpointId, dst: EndpointId) -> SimDuration {
        self.link(src, dst).latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbit_conversion() {
        let nic = NicSpec::from_mbit(4000.0);
        assert!((nic.egress_bps - 500e6).abs() < 1.0);
        let link = LinkSpec::from_mbit(8000.0, SimDuration::from_micros(50));
        assert!((link.bandwidth_bps - 1e9).abs() < 1.0);
    }

    #[test]
    fn paper_topology_shapes() {
        let t = Topology::paper_oci(2, SimDuration::from_micros(50));
        assert_eq!(t.len(), 3);
        // Controller NIC is twice the workers'.
        assert!(t.nic(EndpointId(0)).egress_bps > t.nic(EndpointId(1)).egress_bps);
        // Worker-to-worker flow is limited by the 4000 Mbit/s NICs.
        let rate = t.path_rate_bps(EndpointId(1), EndpointId(2));
        assert!((rate - 500e6).abs() < 1.0);
        // Controller egress to a worker is limited by the worker's ingress.
        let rate = t.path_rate_bps(EndpointId(0), EndpointId(1));
        assert!((rate - 500e6).abs() < 1.0);
    }

    #[test]
    fn link_override_is_directed() {
        let mut t = Topology::uniform(
            2,
            NicSpec::from_mbit(1000.0),
            LinkSpec::from_mbit(1000.0, SimDuration::ZERO),
        );
        t.set_link(
            EndpointId(0),
            EndpointId(1),
            LinkSpec::from_mbit(10.0, SimDuration::from_millis(5)),
        );
        assert!(t.path_rate_bps(EndpointId(0), EndpointId(1)) < 2e6);
        assert!(t.path_rate_bps(EndpointId(1), EndpointId(0)) > 1e8);
        assert_eq!(
            t.path_latency(EndpointId(0), EndpointId(1)),
            SimDuration::from_millis(5)
        );
    }
}
