//! Runtime network state: FIFO NIC occupancy, whole-message transfers,
//! per-endpoint statistics.
//!
//! The model is store-and-forward at message granularity: a transfer occupies
//! the sender's egress NIC and the receiver's ingress NIC for its whole
//! duration, serialized FIFO per NIC, moving at the path rate
//! (min of egress, ingress, link). This captures the two effects the paper's
//! scheduler cares about — serialization behind earlier transfers and
//! heterogeneous path speeds — without simulating packets.

use desim::{JobTimeline, RateServer, SimDuration, SimTime};

use crate::topology::{EndpointId, Topology};

/// Identifies a completed or in-flight transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferId(pub u64);

/// Record of one message transfer.
#[derive(Debug, Clone, Copy)]
pub struct TransferRecord {
    /// Transfer identity, in issue order.
    pub id: TransferId,
    /// Sender endpoint.
    pub src: EndpointId,
    /// Receiver endpoint.
    pub dst: EndpointId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Computed occupancy window.
    pub timeline: JobTimeline,
}

/// Per-endpoint traffic counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct EndpointStats {
    /// Bytes sent from this endpoint.
    pub bytes_out: u64,
    /// Bytes received by this endpoint.
    pub bytes_in: u64,
    /// Messages sent.
    pub msgs_out: u64,
    /// Messages received.
    pub msgs_in: u64,
}

/// The live network: topology plus NIC occupancy state.
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    egress: Vec<RateServer>,
    ingress: Vec<RateServer>,
    stats: Vec<EndpointStats>,
    next_id: u64,
    total_bytes: u64,
}

impl Network {
    /// Builds a quiescent network over `topo`.
    pub fn new(topo: Topology) -> Self {
        let n = topo.len();
        // NIC servers carry the rate; the per-message latency is added from
        // the link spec at submit time, so the server latency is zero.
        let egress = (0..n)
            .map(|i| RateServer::new(topo.nic(EndpointId(i)).egress_bps, SimDuration::ZERO))
            .collect();
        let ingress = (0..n)
            .map(|i| RateServer::new(topo.nic(EndpointId(i)).ingress_bps, SimDuration::ZERO))
            .collect();
        Network {
            egress,
            ingress,
            stats: vec![EndpointStats::default(); n],
            next_id: 0,
            total_bytes: 0,
            topo,
        }
    }

    /// The static topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Degrades (or restores) a directed link at runtime, e.g. a VNIC whose
    /// SLA dropped. Transfers already accepted keep their computed
    /// timelines; new transfers see the new path rate. Pair with a fresh
    /// [`Network::probe_matrix`] so `min-transfer-time` adapts.
    pub fn set_link(&mut self, src: EndpointId, dst: EndpointId, link: crate::topology::LinkSpec) {
        self.topo.set_link(src, dst, link);
    }

    /// Number of endpoints.
    #[inline]
    pub fn len(&self) -> usize {
        self.topo.len()
    }

    /// True when there are no endpoints (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.topo.is_empty()
    }

    /// Issues a whole-message transfer at `now`; returns its record. Local
    /// "transfers" (src == dst) complete instantly and occupy nothing.
    pub fn transfer(
        &mut self,
        now: SimTime,
        src: EndpointId,
        dst: EndpointId,
        bytes: u64,
    ) -> TransferRecord {
        let id = TransferId(self.next_id);
        self.next_id += 1;
        let timeline = if src == dst {
            JobTimeline {
                start: now,
                finish: now,
                queued: SimDuration::ZERO,
                service: SimDuration::ZERO,
            }
        } else {
            let rate = self.topo.path_rate_bps(src, dst);
            let latency = self.topo.path_latency(src, dst);
            let service = latency + SimDuration::for_bytes(bytes, rate);
            // The flow must wait for both NICs; it then occupies both for the
            // whole service window.
            let start = self.egress[src.0]
                .busy_until()
                .max(self.ingress[dst.0].busy_until())
                .max(now);
            let finish = start + service;
            // Mark occupancy by submitting zero-byte jobs with `extra`
            // covering the actual window (the rate used is the *path* rate,
            // not each NIC's own, so we bypass the servers' own rate math).
            self.egress[src.0].submit_with_extra(start, 0, service);
            self.ingress[dst.0].submit_with_extra(start, 0, service);
            self.stats[src.0].bytes_out += bytes;
            self.stats[src.0].msgs_out += 1;
            self.stats[dst.0].bytes_in += bytes;
            self.stats[dst.0].msgs_in += 1;
            self.total_bytes += bytes;
            JobTimeline {
                start,
                finish,
                queued: start - now,
                service,
            }
        };
        TransferRecord {
            id,
            src,
            dst,
            bytes,
            timeline,
        }
    }

    /// Predicts the completion time of a transfer without issuing it.
    pub fn peek_transfer(
        &self,
        now: SimTime,
        src: EndpointId,
        dst: EndpointId,
        bytes: u64,
    ) -> SimTime {
        if src == dst {
            return now;
        }
        let rate = self.topo.path_rate_bps(src, dst);
        let latency = self.topo.path_latency(src, dst);
        let service = latency + SimDuration::for_bytes(bytes, rate);
        let start = self.egress[src.0]
            .busy_until()
            .max(self.ingress[dst.0].busy_until())
            .max(now);
        start + service
    }

    /// Pure-path estimate (no queue state): the time the `min-transfer-time`
    /// policy uses once it has the probed matrix.
    pub fn estimate_transfer(&self, src: EndpointId, dst: EndpointId, bytes: u64) -> SimDuration {
        if src == dst {
            return SimDuration::ZERO;
        }
        self.topo.path_latency(src, dst)
            + SimDuration::for_bytes(bytes, self.topo.path_rate_bps(src, dst))
    }

    /// Traffic counters for one endpoint.
    #[inline]
    pub fn stats(&self, e: EndpointId) -> EndpointStats {
        self.stats[e.0]
    }

    /// Total payload bytes moved since construction.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Measures the interconnection matrix the way GrOUT does at startup:
    /// timing a probe message over every directed pair on an idle clone of
    /// the network. Returns bytes/second for every `(src, dst)`; the diagonal
    /// is `f64::INFINITY`.
    pub fn probe_matrix(&self, probe_bytes: u64) -> Vec<Vec<f64>> {
        let n = self.len();
        let mut m = vec![vec![f64::INFINITY; n]; n];
        for (s, row) in m.iter_mut().enumerate() {
            for (d, cell) in row.iter_mut().enumerate() {
                if s == d {
                    continue;
                }
                let mut idle = Network::new(self.topo.clone());
                let rec = idle.transfer(SimTime::ZERO, EndpointId(s), EndpointId(d), probe_bytes);
                let secs = rec.timeline.service.as_secs_f64();
                *cell = if secs > 0.0 {
                    probe_bytes as f64 / secs
                } else {
                    f64::INFINITY
                };
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkSpec, NicSpec};

    fn net(n: usize, mbit: f64) -> Network {
        Network::new(Topology::uniform(
            n,
            NicSpec::from_mbit(mbit),
            LinkSpec::from_mbit(mbit * 10.0, SimDuration::from_micros(50)),
        ))
    }

    #[test]
    fn transfer_time_matches_rate() {
        let mut net = net(2, 4000.0); // 500 MB/s NICs
        let rec = net.transfer(SimTime::ZERO, EndpointId(0), EndpointId(1), 500_000_000);
        // 500 MB at 500 MB/s = 1 s + 50 us latency.
        let expect = SimDuration::from_secs(1) + SimDuration::from_micros(50);
        assert_eq!(rec.timeline.finish, SimTime::ZERO + expect);
    }

    #[test]
    fn local_transfer_is_free() {
        let mut net = net(2, 4000.0);
        let rec = net.transfer(SimTime(123), EndpointId(1), EndpointId(1), 1 << 30);
        assert_eq!(rec.timeline.finish, SimTime(123));
        assert_eq!(net.total_bytes(), 0);
    }

    #[test]
    fn same_egress_serializes() {
        let mut net = net(3, 4000.0);
        let a = net.transfer(SimTime::ZERO, EndpointId(0), EndpointId(1), 100_000_000);
        let b = net.transfer(SimTime::ZERO, EndpointId(0), EndpointId(2), 100_000_000);
        assert!(b.timeline.start >= a.timeline.finish);
    }

    #[test]
    fn same_ingress_serializes() {
        let mut net = net(3, 4000.0);
        let a = net.transfer(SimTime::ZERO, EndpointId(1), EndpointId(0), 100_000_000);
        let b = net.transfer(SimTime::ZERO, EndpointId(2), EndpointId(0), 100_000_000);
        assert!(b.timeline.start >= a.timeline.finish);
    }

    #[test]
    fn disjoint_pairs_run_concurrently() {
        let mut net = net(4, 4000.0);
        let a = net.transfer(SimTime::ZERO, EndpointId(0), EndpointId(1), 100_000_000);
        let b = net.transfer(SimTime::ZERO, EndpointId(2), EndpointId(3), 100_000_000);
        assert_eq!(a.timeline.start, b.timeline.start);
    }

    #[test]
    fn peek_matches_transfer() {
        let mut net = net(2, 4000.0);
        let t = net.peek_transfer(SimTime::ZERO, EndpointId(0), EndpointId(1), 10_000_000);
        let rec = net.transfer(SimTime::ZERO, EndpointId(0), EndpointId(1), 10_000_000);
        assert_eq!(rec.timeline.finish, t);
    }

    #[test]
    fn stats_accumulate() {
        let mut net = net(2, 4000.0);
        net.transfer(SimTime::ZERO, EndpointId(0), EndpointId(1), 10);
        net.transfer(SimTime::ZERO, EndpointId(0), EndpointId(1), 20);
        let s0 = net.stats(EndpointId(0));
        let s1 = net.stats(EndpointId(1));
        assert_eq!(s0.bytes_out, 30);
        assert_eq!(s0.msgs_out, 2);
        assert_eq!(s1.bytes_in, 30);
        assert_eq!(s1.msgs_in, 2);
        assert_eq!(net.total_bytes(), 30);
    }

    #[test]
    fn probe_matrix_reflects_heterogeneity() {
        let topo = Topology::paper_oci(2, SimDuration::from_micros(50));
        let net = Network::new(topo);
        let m = net.probe_matrix(64 << 20);
        // Worker<->worker limited by 500 MB/s NICs.
        assert!((m[1][2] - 500e6).abs() / 500e6 < 0.01);
        // Diagonal infinite.
        assert!(m[0][0].is_infinite());
        // Probing leaves the real network untouched.
        assert_eq!(net.total_bytes(), 0);
    }
}
