#![warn(missing_docs)]
//! # net-sim — cluster interconnect model for the GrOUT reproduction
//!
//! Models the OCI-style cluster network the paper evaluates on: a controller
//! with a faster NIC, workers with slower ones, whole-message transfers that
//! serialize per NIC and run at the path rate, and the startup bandwidth
//! probe that feeds GrOUT's `min-transfer-time` scheduling policy.
//!
//! ```
//! use desim::{SimDuration, SimTime};
//! use net_sim::{EndpointId, Network, Topology};
//!
//! let topo = Topology::paper_oci(2, SimDuration::from_micros(50));
//! let mut net = Network::new(topo);
//! let rec = net.transfer(SimTime::ZERO, EndpointId(0), EndpointId(1), 1 << 20);
//! assert!(rec.timeline.finish > SimTime::ZERO);
//! ```

mod network;
mod topology;

pub use network::{EndpointStats, Network, TransferId, TransferRecord};
pub use topology::{EndpointId, LinkSpec, NicSpec, Topology};
