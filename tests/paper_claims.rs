//! Shape-fidelity acceptance tests: every headline claim of the paper's
//! evaluation, asserted as a band on the reproduced figures. These are the
//! tests that would catch a calibration regression; exact paper values and
//! our measured values are recorded in EXPERIMENTS.md.

use grout::core::{ExplorationLevel, PolicyKind, SimConfig};
use grout::workloads::{
    gb, run_workload, BlackScholes, ConjugateGradient, MatVec, MlEnsemble, RunOutcome, SimWorkload,
};

fn single(w: &dyn SimWorkload, size_gb: u64) -> RunOutcome {
    run_workload(w, SimConfig::grcuda_baseline(), gb(size_gb))
}

fn grout2(w: &dyn SimWorkload, size_gb: u64) -> RunOutcome {
    run_workload(
        w,
        SimConfig::paper_grout(2, PolicyKind::VectorStep(w.tuned_vector())),
        gb(size_gb),
    )
}

/// Figure 1: Black-Scholes is near-linear while fitting, then blows up far
/// beyond linear under oversubscription.
#[test]
fn fig1_black_scholes_cliff() {
    let bs = BlackScholes::default();
    let t8 = single(&bs, 8).secs();
    let t16 = single(&bs, 16).secs();
    let t32 = single(&bs, 32).secs();
    let t96 = single(&bs, 96).secs();
    assert!(t16 / t8 < 3.0, "linear region 8->16: {}", t16 / t8);
    assert!(t96 / t32 > 30.0, "oversubscribed blow-up: {}", t96 / t32);
}

/// Figure 6a: each workload's single-node cliff sits where the paper saw it
/// (MLE at the 2x point; CG and MV between 2x and 3x), and the cliff steps
/// are of the paper's order of magnitude (72x / 77.3x / 342.6x).
#[test]
fn fig6a_cliff_locations_and_magnitudes() {
    // MLE: cliff at 32 -> 64 (paper step 72x).
    let mle = MlEnsemble::default();
    let step = single(&mle, 64).secs() / single(&mle, 32).secs();
    assert!((15.0..300.0).contains(&step), "MLE 32->64 step {step}");

    // CG: near-linear to 64, cliff at 64 -> 96 (paper step 77.3x).
    let cg = ConjugateGradient::default();
    let pre = single(&cg, 64).secs() / single(&cg, 32).secs();
    let step = single(&cg, 96).secs() / single(&cg, 64).secs();
    assert!(pre < 12.0, "CG 32->64 pre-cliff step {pre}");
    assert!((15.0..300.0).contains(&step), "CG 64->96 step {step}");

    // MV: near-linear to 64, catastrophic at 64 -> 96 (paper step 342.6x).
    let mv = MatVec::default();
    let pre = single(&mv, 64).secs() / single(&mv, 32).secs();
    let step = single(&mv, 96).secs() / single(&mv, 64).secs();
    assert!(pre < 12.0, "MV 32->64 pre-cliff step {pre}");
    assert!(step > 60.0, "MV 64->96 step {step}");

    // MV is the most extreme of the three, as in the paper.
    let cg_step = single(&cg, 96).secs() / single(&cg, 64).secs();
    assert!(step > cg_step, "MV step {step} > CG step {cg_step}");
}

/// Figure 6b: on two GrOUT nodes the same steps collapse to near-linear
/// (paper: 4.1x / 13.3x / 4.1x instead of 72x / 77.3x / 342.6x).
#[test]
fn fig6b_scale_out_flattens_the_cliffs() {
    let mle = MlEnsemble::default();
    let step = grout2(&mle, 64).secs() / grout2(&mle, 32).secs();
    assert!(step < 10.0, "GrOUT MLE 32->64 step {step}");

    let cg = ConjugateGradient::default();
    let step = grout2(&cg, 96).secs() / grout2(&cg, 64).secs();
    assert!(step < 16.0, "GrOUT CG 64->96 step {step}");

    let mv = MatVec::default();
    let step = grout2(&mv, 96).secs() / grout2(&mv, 64).secs();
    assert!(step < 10.0, "GrOUT MV 64->96 step {step}");
}

/// Figure 7: under normal conditions the single node wins; the crossover
/// falls between 2x and 3x; at 5x the speedups are substantial with
/// MV >> CG > MLE (paper: >24.42x, 7.45x, 1.64x).
#[test]
fn fig7_crossover_and_final_speedups() {
    let workloads: Vec<Box<dyn SimWorkload>> = vec![
        Box::new(MlEnsemble::default()),
        Box::new(ConjugateGradient::default()),
        Box::new(MatVec::default()),
    ];
    let mut at160 = Vec::new();
    for w in &workloads {
        // Normal conditions: network cost makes GrOUT slower.
        let sp8 = single(w.as_ref(), 8).secs() / grout2(w.as_ref(), 8).secs();
        assert!(
            sp8 < 1.0,
            "{} speedup {sp8} at 0.25x should be < 1",
            w.name()
        );
        // 3x: everyone benefits from distribution.
        let sp96 = single(w.as_ref(), 96).secs() / grout2(w.as_ref(), 96).secs();
        assert!(
            sp96 > 1.0,
            "{} speedup {sp96} at 3x should be > 1",
            w.name()
        );
        at160.push(single(w.as_ref(), 160).secs() / grout2(w.as_ref(), 160).secs());
    }
    let (mle, cg, mv) = (at160[0], at160[1], at160[2]);
    assert!(
        mv > cg && cg > mle,
        "5x ordering MV({mv}) > CG({cg}) > MLE({mle})"
    );
    assert!(mv > 10.0, "MV speedup at 5x: {mv} (paper: >24.42)");
    assert!(mle > 1.0, "MLE speedup at 5x: {mle} (paper: 1.64)");
}

/// Figure 7 detail: the paper's single-node MV runs out of time at high
/// oversubscription ("we went out-of-time in the single-node execution").
#[test]
fn fig7_single_node_mv_hits_the_cap() {
    let mv = MatVec::default();
    assert!(single(&mv, 160).timed_out);
    assert!(!grout2(&mv, 160).timed_out);
}

/// Figure 8: at 3x, the offline vector-step roofline beats round-robin for
/// MLE and CG; online policies match offline for MLE; for MV, exploitation
/// (Low threshold) herds everything onto one node and loses to plain
/// round-robin by an order of magnitude (paper: >=100x with the cap).
#[test]
fn fig8_policy_behaviour() {
    let size = 96;

    // MLE: online ~ offline (both well under round-robin).
    let mle = MlEnsemble::default();
    let rr = run_workload(
        &mle,
        SimConfig::paper_grout(2, PolicyKind::RoundRobin),
        gb(size),
    )
    .secs();
    let vs = grout2(&mle, size).secs();
    let online = run_workload(
        &mle,
        SimConfig::paper_grout(2, PolicyKind::MinTransferSize(ExplorationLevel::Medium)),
        gb(size),
    )
    .secs();
    assert!(vs < rr, "MLE offline beats rr");
    assert!(online < rr, "MLE online beats rr");
    assert!(
        online / vs < 2.0,
        "MLE online within 2x of offline: {}",
        online / vs
    );

    // CG: online worse than offline but still far better than single node
    // (paper Section V-E). At the greediest threshold the herding is
    // permanent and online degenerates to single-node-plus-network; at
    // Medium the exploration fallback keeps it distributed.
    let cg = ConjugateGradient::default();
    let vs = grout2(&cg, size).secs();
    let online = run_workload(
        &cg,
        SimConfig::paper_grout(2, PolicyKind::MinTransferSize(ExplorationLevel::Medium)),
        gb(size),
    )
    .secs();
    assert!(
        online >= vs,
        "CG online ({online}) no better than offline ({vs})"
    );
    assert!(
        online < single(&cg, size).secs(),
        "CG online still beats single node"
    );

    // MV: greedy exploitation recreates the single-node pathology.
    let mv = MatVec::default();
    let rr = run_workload(
        &mv,
        SimConfig::paper_grout(2, PolicyKind::RoundRobin),
        gb(size),
    )
    .secs();
    let herded = run_workload(
        &mv,
        SimConfig::paper_grout(2, PolicyKind::MinTransferSize(ExplorationLevel::Low)),
        gb(size),
    )
    .secs();
    assert!(
        herded / rr > 8.0,
        "MV online pathology: {herded}s vs rr {rr}s (paper: >=100x)"
    );
}

/// Figure 9: static policies are O(1) in cluster size; online policies grow
/// linearly; everything stays within the paper's envelope (statics well
/// under 30 us, online ~200 us at 256 nodes).
#[test]
fn fig9_scheduling_overhead_scaling() {
    let points = grout_bench::fig9();
    let get = |policy: &str, nodes: usize| {
        points
            .iter()
            .find(|p| p.policy == policy && p.nodes == nodes)
            .unwrap()
            .micros_per_ce
    };
    for p in ["round-robin", "vector-step"] {
        if !cfg!(debug_assertions) {
            assert!(get(p, 2) < 30.0, "{p} at 2 nodes");
            assert!(get(p, 256) < 30.0, "{p} at 256 nodes");
        }
        // Flat: no more than 20x growth across 128x more nodes.
        assert!(get(p, 256) / get(p, 2).max(1e-4) < 20.0, "{p} stays flat");
    }
    for p in ["min-transfer-size", "min-transfer-time"] {
        let g2 = get(p, 2);
        let g256 = get(p, 256);
        assert!(g256 > g2 * 4.0, "{p} grows with cluster size");
        // The absolute envelope is only meaningful on optimized builds;
        // debug builds are ~20x slower across the board.
        if !cfg!(debug_assertions) {
            assert!(g256 < 300.0, "{p} at 256 nodes under the paper envelope");
        }
    }
}
