//! Chaos differential test: the simulator and the local (threaded) runtime
//! honour the *same* deterministic `FaultPlan`, so a workload with one
//! injected worker death must, in both runtimes, (a) complete, (b) record
//! the same quarantine identity — which worker died, discovered at which
//! CE — and (c) route every post-fault kernel away from the dead node.
//!
//! Scoping note: post-fault *timing* (and therefore individual node
//! assignments in larger DAGs) may legitimately diverge between a priced
//! simulation and a live execution, so equality is asserted only on the
//! quarantine identity and on the degraded-mode routing invariant.
//! Bit-identical *results* are asserted where they are defined: the local
//! faulted run against the local fault-free run.

use std::sync::Arc;

use grout::core::{CeArg, KernelCost, LocalArg, LocalConfig, LocalRuntime, SimConfig, SimRuntime};
use grout::desim::SimDuration;
use grout::{FaultPlan, PolicyKind, SchedEvent};

const N: usize = 1 << 10;
const BYTES: u64 = (N * 4) as u64;
/// Kernel-chain length; DAG indices 0..CES are the kernels.
const CES: usize = 6;

const SRC: &str = "
    __global__ void inc(float* a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { a[i] = a[i] + 1.0; }
    }
";

/// The quarantine identity both runtimes must agree on.
fn quarantine_of(events: &[SchedEvent]) -> Option<(usize, usize)> {
    events.iter().find_map(|e| match e {
        SchedEvent::Quarantine { worker, at_ce, .. } => Some((*worker, *at_ce)),
        _ => None,
    })
}

/// Chain of `inc` kernels over one array on the local runtime; returns the
/// final array, the fault events, and the post-fault kernel assignments.
fn run_local(faults: FaultPlan) -> (Vec<f32>, Vec<SchedEvent>, Vec<Option<usize>>) {
    let inc = Arc::new(kernelc::compile(SRC).unwrap()[0].clone());
    let mut cfg = LocalConfig::new(2, PolicyKind::RoundRobin);
    cfg.planner.faults = faults;
    cfg.planner.fault_cfg.detection_timeout = SimDuration::from_millis(60);
    let mut rt = LocalRuntime::try_new(cfg).expect("spawn workers");
    let a = rt.alloc_f32(N);
    for _ in 0..CES {
        rt.launch(
            &inc,
            64,
            256,
            vec![LocalArg::Buf(a), LocalArg::I32(N as i32)],
        )
        .unwrap();
    }
    rt.synchronize().unwrap();
    let events = rt.sched_trace().events().to_vec();
    let assignments = (0..CES)
        .map(|i| rt.node_assignment(i).and_then(|l| l.worker_index()))
        .collect();
    let out = rt.read_f32(a).unwrap();
    (out, events, assignments)
}

/// The same chain priced by the simulator under the same fault plan.
fn run_sim(faults: FaultPlan) -> (Vec<SchedEvent>, Vec<Option<usize>>) {
    let mut cfg = SimConfig::paper_grout(2, PolicyKind::RoundRobin);
    cfg.planner.faults = faults;
    cfg.planner.fault_cfg.detection_timeout = SimDuration::from_millis(60);
    let mut rt = SimRuntime::try_new(cfg).expect("valid config");
    let a = rt.alloc(BYTES);
    let cost = KernelCost {
        flops: 1e6,
        bytes_read: BYTES,
        bytes_written: BYTES,
    };
    for _ in 0..CES {
        rt.launch("inc", cost, vec![CeArg::read_write(a, BYTES)]);
    }
    let events = rt.sched_trace().events().to_vec();
    let assignments = (0..CES)
        .map(|i| rt.node_assignment(i).and_then(|l| l.worker_index()))
        .collect();
    (events, assignments)
}

/// One full differential check for one fault plan.
fn check(faults: FaultPlan) {
    let (clean, clean_events, _) = run_local(FaultPlan::none());
    assert!(clean_events.is_empty(), "fault-free run records no faults");
    assert!(
        clean.iter().all(|&v| v == CES as f32),
        "clean: {}",
        clean[0]
    );

    let (faulted, local_events, local_assign) = run_local(faults.clone());
    // (a) + bit-identical results despite a worker dying mid-run.
    assert_eq!(clean, faulted, "recovered results must be bit-identical");

    let (sim_events, sim_assign) = run_sim(faults);

    // (b) Same quarantine identity in both runtimes.
    let local_q = quarantine_of(&local_events).expect("local quarantined");
    let sim_q = quarantine_of(&sim_events).expect("sim quarantined");
    assert_eq!(local_q, sim_q, "quarantine identity diverged");
    let (dead, at_ce) = local_q;

    // Both show the death itself and the lineage replay that healed it.
    for (name, events) in [("local", &local_events), ("sim", &sim_events)] {
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SchedEvent::Fault { worker: Some(w), .. } if *w == dead)),
            "{name} trace missing the fault: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SchedEvent::Replay { .. })),
            "{name} trace missing lineage replay: {events:?}"
        );
    }

    // (c) Degraded mode: every kernel from the failure on runs elsewhere.
    for dag in at_ce..CES {
        assert_ne!(local_assign[dag], Some(dead), "local CE {dag} on dead node");
        assert_ne!(sim_assign[dag], Some(dead), "sim CE {dag} on dead node");
    }
}

#[test]
fn explicit_kill_matches_across_runtimes() {
    check(FaultPlan::kill_at_ce(3));
}

#[test]
fn seeded_deaths_match_across_runtimes() {
    // A small seed matrix; the CI chaos binary sweeps a larger one.
    let candidates: Vec<usize> = (1..CES - 1).collect();
    for seed in [1u64, 7, 42] {
        check(FaultPlan::one_death(seed, &candidates));
    }
}
