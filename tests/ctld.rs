//! Multi-tenant control-plane acceptance tests.
//!
//! - Two concurrent sessions on one shared in-process fleet produce
//!   results bit-identical to solo runs, with zero cross-session
//!   quarantines — the isolation guarantee the session layer makes.
//! - The fair-share scheduler starves no session: every ready frontier
//!   drains within its `ceil(n / weight)` bound regardless of co-tenants
//!   (property-based).
//! - A saturated `grout-ctld` rejects an attach with the typed wire
//!   error and the client exits cleanly, reason on stderr.
//! - Two concurrent `grout-run --connect` clients against a real
//!   `grout-ctld` process (CE batching on) each get exactly the solo
//!   script output.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use grout::core::{ChannelTransport, FairShare, FleetMux, LocalRuntime, Runtime, SessionId};
use grout::net::http::http_get;
use grout::net::CtldClient;
use grout::LocalArg;
use proptest::prelude::*;
use serde::json::Value;

const N: usize = 1 << 8;

const SRC: &str = "
    __global__ void saxpy(float* y, const float* x, float a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { y[i] = a * x[i] + y[i]; }
    }
    __global__ void scale(float* y, float a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { y[i] = a * y[i]; }
    }
";

/// A deterministic two-kernel workload with a cross-worker dependency
/// chain; returns the final arrays as bit patterns plus the quarantine
/// count the run ended with.
fn run_workload(rt: &mut LocalRuntime) -> (Vec<Vec<u32>>, u64) {
    let ks = kernelc::compile(SRC).expect("compiles");
    let (saxpy, scale) = (Arc::new(ks[0].clone()), Arc::new(ks[1].clone()));
    let n = N as i32;
    let a = rt.alloc_f32(N);
    let b = rt.alloc_f32(N);
    rt.write_f32(a, |v| {
        let mut s = 0x9e3779b9u32;
        for x in v.iter_mut() {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            *x = (s >> 8) as f32 / 1e6;
        }
    })
    .unwrap();
    rt.write_f32(b, |v| {
        for (i, x) in v.iter_mut().enumerate() {
            *x = (i as f32).sin();
        }
    })
    .unwrap();
    for _ in 0..3 {
        rt.launch(
            &saxpy,
            4,
            64,
            vec![
                LocalArg::Buf(b),
                LocalArg::Buf(a),
                LocalArg::F32(1.5),
                LocalArg::I32(n),
            ],
        )
        .unwrap();
        rt.launch(
            &scale,
            4,
            64,
            vec![LocalArg::Buf(a), LocalArg::F32(-0.75), LocalArg::I32(n)],
        )
        .unwrap();
    }
    rt.synchronize().unwrap();
    let bits = [a, b]
        .into_iter()
        .map(|arr| {
            rt.read_f32(arr)
                .unwrap()
                .into_iter()
                .map(f32::to_bits)
                .collect()
        })
        .collect();
    (bits, rt.metrics().quarantines)
}

/// The isolation guarantee: two sessions running concurrently on one
/// shared fleet each produce exactly the bits a solo deployment produces,
/// and neither run records a quarantine (a co-tenant never looks like a
/// fault).
#[test]
fn two_sessions_bit_identical_to_solo_runs() {
    // Reference: a solo two-worker deployment.
    let mut solo = Runtime::builder()
        .workers(2)
        .build_local()
        .expect("solo runtime");
    let (solo_bits, solo_quarantines) = run_workload(&mut solo);
    assert_eq!(solo_quarantines, 0);

    // Shared fleet: one ChannelTransport, two namespace-tagged sessions.
    let mut fleet = FleetMux::new(Box::new(ChannelTransport::new(2)));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let session = fleet.session(2);
        handles.push(std::thread::spawn(move || {
            let mut rt = Runtime::builder()
                .workers(2)
                .build_with_transport(Box::new(session))
                .expect("session runtime");
            let out = run_workload(&mut rt);
            rt.refresh_wire_metrics();
            let tagged = rt.metrics().session;
            (out, tagged)
        }));
    }
    let mut sessions_seen = Vec::new();
    for h in handles {
        let ((bits, quarantines), session) = h.join().expect("session thread");
        assert_eq!(
            bits, solo_bits,
            "a tenant session diverged from the solo run"
        );
        assert_eq!(quarantines, 0, "cross-session traffic caused a quarantine");
        sessions_seen.push(session.expect("session id surfaces in metrics"));
    }
    sessions_seen.sort_unstable();
    assert_eq!(sessions_seen, vec![1, 2], "distinct session namespaces");

    // Both tenants shipped frames through the shared fleet.
    let stats = fleet.batch_stats();
    assert!(stats.messages > 0, "no traffic crossed the mux");
    fleet.shutdown();
}

proptest! {
    /// No starvation: with arbitrary weights and frontier sizes, every
    /// session's frontier fully drains within `ceil(n / weight)` ticks —
    /// its solo bound — no matter what the co-tenants queue.
    #[test]
    fn fair_share_drains_every_frontier_within_bound(
        frontiers in proptest::collection::vec((1u32..=8, 0usize..=50), 1..=6),
    ) {
        let mut fs = FairShare::new();
        let mut pending: Vec<usize> = Vec::new();
        for (i, (weight, frontier)) in frontiers.iter().enumerate() {
            fs.attach(SessionId(i as u64 + 1), *weight);
            pending.push(*frontier);
        }
        let bound = frontiers
            .iter()
            .map(|(w, n)| n.div_ceil(*w as usize))
            .max()
            .unwrap_or(0);
        for _ in 0..bound {
            let grants = fs.tick(|sid| pending[sid.0 as usize - 1]);
            for (sid, granted) in grants {
                let i = sid.0 as usize - 1;
                prop_assert!(granted >= 1, "a pending session was granted nothing");
                prop_assert!(
                    granted <= frontiers[i].0 as usize,
                    "a grant exceeded the session weight"
                );
                pending[i] -= granted;
            }
        }
        prop_assert!(
            pending.iter().all(|&p| p == 0),
            "a frontier survived its drain bound: {pending:?}"
        );
    }
}

/// Spawns `grout-ctld` and waits for its listen announcement.
fn spawn_ctld(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_grout-ctld"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("grout-ctld spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("ctld announces")
        .expect("ctld stdout readable");
    let addr = banner
        .strip_prefix("CTLD LISTENING ")
        .unwrap_or_else(|| panic!("unexpected ctld banner: {banner}"))
        .to_string();
    (child, addr)
}

const GUEST: &str = r#"
    KERNEL = "__global__ void square(float* x, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) { x[i] = x[i] * x[i]; } }"
    build = polyglot.eval("grout", "buildkernel")
    square = build(KERNEL, "square(x: inout pointer float, n: sint32)")
    x = polyglot.eval("grout", "float[64]")
    for i in range(64) { x[i] = i }
    square(2, 32)(x, 64)
    print(x[0])
    print(x[63])
"#;

/// A saturated daemon bounces the attach with the typed error; the
/// client exits nonzero with the reason on stderr — no panic, no
/// partial output.
#[test]
fn saturated_ctld_rejects_with_typed_error_and_clean_client_exit() {
    let (mut ctld, addr) = spawn_ctld(&[
        "--listen",
        "127.0.0.1:0",
        "--threads",
        "1",
        "--max-sessions",
        "0",
        "--max-queue",
        "0",
        "--accept",
        "1",
    ]);
    let out = Command::new(env!("CARGO_BIN_EXE_grout-run"))
        .args(["-e", GUEST, "--connect", &addr])
        .output()
        .expect("grout-run runs");
    assert!(!out.status.success(), "a rejected attach must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("admission rejected") && stderr.contains("saturated"),
        "typed rejection missing from stderr: {stderr}"
    );
    assert!(
        out.stdout.is_empty(),
        "a rejected client must produce no script output"
    );
    let status = ctld.wait().expect("ctld exits");
    assert!(status.success(), "ctld must exit cleanly after --accept");
}

/// A scratch path under the target dir (unique per test invocation).
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("grout-ctld-test-{}-{name}", std::process::id()));
    p
}

/// The span-name set of a Chrome trace file: every `ph == "X"` event.
fn trace_span_set(path: &PathBuf) -> BTreeSet<String> {
    let body = std::fs::read_to_string(path).expect("trace file readable");
    let doc: Value = serde_json::from_str(&body).expect("trace file is JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .map(String::from)
        .collect()
}

/// Tracing and CE batching are orthogonal: a traced `--batch` run
/// produces the same span set and bit-identical client output as the
/// unbatched run, and the trace's process names carry the session
/// prefix (one lane stripe per tenant, no collisions).
#[test]
fn traced_batch_run_matches_unbatched_spans_and_output() {
    let mut outputs = Vec::new();
    let mut spans = Vec::new();
    for batch in [false, true] {
        let trace = scratch(if batch { "batch.trace" } else { "plain.trace" });
        let _ = std::fs::remove_file(&trace);
        let mut args = vec![
            "--listen",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--accept",
            "1",
            "--trace-out",
        ];
        let trace_str = trace.to_str().expect("utf8 path").to_string();
        args.push(&trace_str);
        if batch {
            args.push("--batch");
        }
        let (mut ctld, addr) = spawn_ctld(&args);
        let out = Command::new(env!("CARGO_BIN_EXE_grout-run"))
            .args(["-e", GUEST, "--connect", &addr])
            .output()
            .expect("grout-run runs");
        assert!(out.status.success(), "traced client failed");
        let status = ctld.wait().expect("ctld exits");
        assert!(status.success(), "ctld must exit cleanly after --accept");
        outputs.push(out.stdout);
        spans.push(trace_span_set(&trace));

        // Satellite guarantee: every track belongs to a session-prefixed
        // process, so two tenants can never collide on one lane.
        let body = std::fs::read_to_string(&trace).expect("trace readable");
        let doc: Value = serde_json::from_str(&body).expect("trace is JSON");
        let names: Vec<String> = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents")
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::as_str) == Some("M")
                    && e.get("name").and_then(Value::as_str) == Some("process_name")
            })
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")))
            .filter_map(|n| n.as_str().map(String::from))
            .collect();
        assert!(!names.is_empty(), "trace has no process metadata");
        for name in &names {
            assert!(
                name.starts_with("s1 "),
                "process `{name}` is not session-prefixed"
            );
        }
        let _ = std::fs::remove_file(&trace);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "batching changed traced client output"
    );
    assert!(!spans[0].is_empty(), "unbatched trace recorded no spans");
    assert_eq!(spans[0], spans[1], "batching changed the span set");
}

/// The acceptance run for the introspection plane: while two concurrent
/// clients execute, `/metrics`, `/healthz` and `/sessions` answer live
/// with per-session labels; `grout-top --once` renders the fleet; and
/// enabling the plane leaves client output bit-identical to solo.
#[test]
fn live_introspection_plane_serves_during_concurrent_run() {
    let solo = Command::new(env!("CARGO_BIN_EXE_grout-run"))
        .args(["-e", GUEST, "--workers", "2"])
        .output()
        .expect("solo grout-run");
    assert!(solo.status.success(), "solo run failed");
    let solo_stdout = solo.stdout.clone();

    // --accept 3: two real clients plus the teardown detach connection.
    let mut ctld = Command::new(env!("CARGO_BIN_EXE_grout-ctld"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--batch",
            "--http",
            "127.0.0.1:0",
            "--accept",
            "3",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("grout-ctld spawns");
    let stdout = ctld.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = lines
        .next()
        .expect("listen banner")
        .expect("readable")
        .strip_prefix("CTLD LISTENING ")
        .expect("listen banner prefix")
        .to_string();
    let http = lines
        .next()
        .expect("http banner")
        .expect("readable")
        .strip_prefix("CTLD HTTP ")
        .expect("http banner prefix")
        .to_string();

    let clients: Vec<_> = (0..2)
        .map(|_| {
            Command::new(env!("CARGO_BIN_EXE_grout-run"))
                .args(["-e", GUEST, "--connect", &addr])
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("client spawns")
        })
        .collect();

    // Scrape while the clients run: every endpoint must answer.
    let timeout = Duration::from_secs(2);
    for _ in 0..3 {
        let (code, body) = http_get(&http, "/healthz", timeout).expect("live /healthz");
        assert!(code == 200 || code == 503, "unexpected /healthz status");
        assert!(body.contains("\"healthy\""), "healthz body: {body}");
        let (code, body) = http_get(&http, "/metrics", timeout).expect("live /metrics");
        assert_eq!(code, 200);
        assert!(body.contains("grout_up 1"), "metrics body missing grout_up");
        let (code, _) = http_get(&http, "/sessions", timeout).expect("live /sessions");
        assert_eq!(code, 200);
    }

    for client in clients {
        let out = client.wait_with_output().expect("client exits");
        assert!(out.status.success(), "introspected client failed");
        assert_eq!(
            out.stdout, solo_stdout,
            "introspection changed client output"
        );
    }

    // After both sessions finish the registry still reports them, the
    // exposition carries their session labels, and grout-top renders it.
    let (_, metrics) = http_get(&http, "/metrics", timeout).expect("/metrics after run");
    assert!(
        metrics.contains("session=\"") && metrics.contains("grout_session_ces_done_total"),
        "per-session labels missing from exposition:\n{metrics}"
    );
    let (_, sessions) = http_get(&http, "/sessions", timeout).expect("/sessions after run");
    let doc: Value = serde_json::from_str(&sessions).expect("sessions JSON");
    let rows = doc.as_array().expect("sessions array");
    assert_eq!(rows.len(), 2, "both sessions must stay visible: {sessions}");
    for row in rows {
        assert_eq!(
            row.get("state").and_then(Value::as_str),
            Some("finished"),
            "session not finished: {sessions}"
        );
        assert!(
            row.get("ops").and_then(Value::as_u64).unwrap_or(0) > 0,
            "session op-log length missing: {sessions}"
        );
    }
    let top = Command::new(env!("CARGO_BIN_EXE_grout-top"))
        .args([&http, "--once"])
        .output()
        .expect("grout-top runs");
    assert!(top.status.success(), "grout-top --once failed");
    let rendered = String::from_utf8_lossy(&top.stdout);
    assert!(
        rendered.contains("sessions (2)") && rendered.contains("fleet: 2 workers"),
        "grout-top rendering unexpected:\n{rendered}"
    );

    // Teardown: one extra connection hits the accept cap; a bare detach
    // serves as the no-op third client.
    let mut bye = CtldClient::connect(&addr).expect("teardown connect");
    bye.detach().expect("teardown detach");
    drop(bye);
    let status = ctld.wait().expect("ctld exits");
    assert!(status.success(), "ctld must exit cleanly after --accept");
}

/// Two concurrent clients against a real `grout-ctld` (batching on) each
/// receive exactly the output a solo `grout-run` produces.
#[test]
fn two_concurrent_clients_match_solo_output() {
    let solo = Command::new(env!("CARGO_BIN_EXE_grout-run"))
        .args(["-e", GUEST, "--workers", "2"])
        .output()
        .expect("solo grout-run");
    assert!(solo.status.success(), "solo run failed");
    let solo_stdout = String::from_utf8_lossy(&solo.stdout).to_string();
    assert!(!solo_stdout.is_empty(), "solo run printed nothing");

    let (mut ctld, addr) = spawn_ctld(&[
        "--listen",
        "127.0.0.1:0",
        "--threads",
        "2",
        "--batch",
        "--accept",
        "2",
    ]);
    let clients: Vec<_> = (0..2)
        .map(|_| {
            Command::new(env!("CARGO_BIN_EXE_grout-run"))
                .args(["-e", GUEST, "--connect", &addr])
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("client spawns")
        })
        .collect();
    for client in clients {
        let out = client.wait_with_output().expect("client exits");
        assert!(out.status.success(), "ctld client failed");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            solo_stdout,
            "a ctld tenant's output diverged from the solo run"
        );
    }
    let status = ctld.wait().expect("ctld exits");
    assert!(status.success(), "ctld must exit cleanly after --accept");
}
