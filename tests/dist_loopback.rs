//! Distributed loopback differential test: the same seeded workload runs
//! once on the in-process channel transport and once across real
//! `grout-workerd` processes over TCP on 127.0.0.1. Controller logic,
//! planner and worker engine are all shared, and every float crosses the
//! wire as `to_le_bytes`, so the results must match *bit for bit* — and
//! the final coherence directories must be identical, because the
//! scheduling decisions (hence data movements) are the same stream.
//!
//! Also covers the crash path the chaos harness automates: SIGKILLing a
//! `grout-workerd` mid-run must be detected (socket EOF / stale
//! heartbeats), quarantined, and healed by lineage replay — same
//! machinery, real process death.

use std::sync::Arc;

use grout::core::{LocalRuntime, PolicyKind, Runtime};
use grout::LocalArg;
use grout::{TcpExt, WorkerSpec};
use kernelc::CompiledKernel;

const N: usize = 1 << 10;

const SRC: &str = "
    __global__ void saxpy(float* y, const float* x, float a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { y[i] = a * x[i] + y[i]; }
    }
    __global__ void scale(float* y, float a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { y[i] = a * y[i]; }
    }
    __global__ void mix(float* out, const float* p, const float* q, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { out[i] = p[i] * 0.5 + q[i] * 0.25; }
    }
";

fn kernels() -> (
    Arc<CompiledKernel>,
    Arc<CompiledKernel>,
    Arc<CompiledKernel>,
) {
    let ks = kernelc::compile(SRC).expect("compiles");
    (
        Arc::new(ks[0].clone()),
        Arc::new(ks[1].clone()),
        Arc::new(ks[2].clone()),
    )
}

fn workerd() -> WorkerSpec {
    WorkerSpec::Spawn(env!("CARGO_BIN_EXE_grout-workerd").into())
}

/// The seeded workload: three arrays, a chain of kernels with
/// cross-worker data dependencies, and a mid-run host write. Returns the
/// three final arrays as bit patterns.
fn run_workload(rt: &mut LocalRuntime) -> Vec<Vec<u32>> {
    let (saxpy, scale, mix) = kernels();
    let n = N as i32;
    let a = rt.alloc_f32(N);
    let b = rt.alloc_f32(N);
    let c = rt.alloc_f32(N);
    // Seeded, irregular initial contents (bit-exact by construction).
    rt.write_f32(a, |v| {
        let mut s = 0x9e3779b9u32;
        for x in v.iter_mut() {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            *x = (s >> 8) as f32 / 1e6;
        }
    })
    .unwrap();
    rt.write_f32(b, |v| {
        for (i, x) in v.iter_mut().enumerate() {
            *x = (i as f32).sin();
        }
    })
    .unwrap();

    rt.launch(
        &saxpy,
        8,
        128,
        vec![
            LocalArg::Buf(b),
            LocalArg::Buf(a),
            LocalArg::F32(1.5),
            LocalArg::I32(n),
        ],
    )
    .unwrap();
    rt.launch(
        &scale,
        8,
        128,
        vec![LocalArg::Buf(a), LocalArg::F32(-0.75), LocalArg::I32(n)],
    )
    .unwrap();
    rt.launch(
        &mix,
        8,
        128,
        vec![
            LocalArg::Buf(c),
            LocalArg::Buf(a),
            LocalArg::Buf(b),
            LocalArg::I32(n),
        ],
    )
    .unwrap();
    rt.synchronize().unwrap();

    // Host write between synchronization points (forces a fetch + makes
    // the controller the exclusive holder again).
    rt.write_f32(a, |v| {
        for x in v.iter_mut() {
            *x += 1.0;
        }
    })
    .unwrap();
    rt.launch(
        &saxpy,
        8,
        128,
        vec![
            LocalArg::Buf(c),
            LocalArg::Buf(a),
            LocalArg::F32(0.125),
            LocalArg::I32(n),
        ],
    )
    .unwrap();
    rt.launch(
        &scale,
        8,
        128,
        vec![LocalArg::Buf(b), LocalArg::F32(3.0), LocalArg::I32(n)],
    )
    .unwrap();
    rt.synchronize().unwrap();

    [a, b, c]
        .into_iter()
        .map(|arr| {
            rt.read_f32(arr)
                .unwrap()
                .into_iter()
                .map(f32::to_bits)
                .collect()
        })
        .collect()
}

#[test]
fn tcp_loopback_matches_in_process_bit_for_bit() {
    let mut local = Runtime::builder()
        .workers(2)
        .policy(PolicyKind::RoundRobin)
        .build_local()
        .expect("in-process runtime");
    let local_bits = run_workload(&mut local);

    let mut dist = Runtime::builder()
        .policy(PolicyKind::RoundRobin)
        .tcp(vec![workerd(), workerd()])
        .build()
        .expect("distributed runtime");
    assert_eq!(dist.transport_kind(), "tcp");
    let dist_bits = run_workload(&mut dist);

    assert_eq!(
        local_bits, dist_bits,
        "TCP loopback diverged from the in-process run"
    );

    // Same plan stream, same movements — the final coherence directories
    // must agree exactly.
    assert_eq!(
        local.coherence(),
        dist.coherence(),
        "final coherence directories diverged"
    );

    // The distributed run measured its links; the in-process run modeled
    // them. Both surface through the one metrics artifact.
    assert_eq!(dist.metrics().bw_source, "measured");
    assert_eq!(dist.metrics().transport, "tcp");
    assert_eq!(dist.metrics().bw_bps.len(), 3, "controller + 2 workers");
    assert!(dist.metrics().bw_bps[0][1] > 0, "probed bandwidth missing");
    assert_eq!(local.metrics().bw_source, "uniform");
    assert_eq!(local.metrics().transport, "channel");
}

/// The `traceEvents` array of a Chrome trace value.
fn trace_events(trace: &serde::json::Value) -> &[serde::json::Value] {
    use serde::json::Value;
    let Value::Object(top) = trace else {
        panic!("trace is not an object")
    };
    match top.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v) {
        Some(Value::Array(events)) => events,
        _ => panic!("trace has no traceEvents array"),
    }
}

/// One field of a JSON object event (`None` when absent).
fn field<'a>(ev: &'a serde::json::Value, key: &str) -> Option<&'a serde::json::Value> {
    use serde::json::Value;
    let Value::Object(fields) = ev else {
        return None;
    };
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_f64(v: Option<&serde::json::Value>) -> Option<f64> {
    use serde::json::Value;
    match v {
        Some(Value::F64(x)) => Some(*x),
        Some(Value::U64(x)) => Some(*x as f64),
        Some(Value::I64(x)) => Some(*x as f64),
        _ => None,
    }
}

fn as_u64(v: Option<&serde::json::Value>) -> Option<u64> {
    use serde::json::Value;
    match v {
        Some(Value::U64(x)) => Some(*x),
        _ => None,
    }
}

fn as_str(v: Option<&serde::json::Value>) -> Option<&str> {
    use serde::json::Value;
    match v {
        Some(Value::String(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// The distributed-tracing acceptance check: a traced two-workerd TCP run
/// produces one merged trace carrying controller lanes plus each worker's
/// own execute/transfer spans with clock-aligned timestamps, the metrics
/// artifact carries per-peer wire counters and heartbeat RTT stats — and
/// turning tracing off does not change the computed results by a single
/// bit.
#[test]
fn traced_tcp_run_merges_clock_aligned_worker_spans() {
    use grout::core::{ChromeTracer, Shared};

    // Untraced reference.
    let mut plain = Runtime::builder()
        .policy(PolicyKind::RoundRobin)
        .tcp(vec![workerd(), workerd()])
        .build()
        .expect("distributed runtime");
    let plain_bits = run_workload(&mut plain);

    // Traced run of the same workload.
    let tracer = Shared::new(ChromeTracer::new());
    let mut dist = Runtime::builder()
        .policy(PolicyKind::RoundRobin)
        .telemetry(tracer.telemetry())
        .tcp(vec![workerd(), workerd()])
        .build()
        .expect("distributed runtime");
    let dist_bits = run_workload(&mut dist);

    assert_eq!(
        plain_bits, dist_bits,
        "telemetry changed the computed results"
    );

    // --- merged trace: one file, controller + both worker processes ---
    let trace = tracer.lock().to_json_value();
    let events = trace_events(&trace);
    let spans_on = |pid: u64, cat: &str| {
        events
            .iter()
            .filter(|ev| {
                as_str(field(ev, "ph")) == Some("X")
                    && as_u64(field(ev, "pid")) == Some(pid)
                    && as_str(field(ev, "cat")) == Some(cat)
            })
            .count()
    };
    let controller_spans = events
        .iter()
        .filter(|ev| as_str(field(ev, "ph")) == Some("X") && as_u64(field(ev, "pid")) == Some(0))
        .count();
    assert!(controller_spans >= 1, "controller lanes missing");
    for worker_pid in [1u64, 2] {
        assert!(
            spans_on(worker_pid, "execute") >= 1,
            "worker {} has no execute spans in the merged trace",
            worker_pid - 1
        );
        assert!(
            spans_on(worker_pid, "transfer") >= 1,
            "worker {} has no transfer spans in the merged trace",
            worker_pid - 1
        );
    }

    // Clock alignment: per (pid, tid) lane, spans are monotone in merge
    // order and never carry a negative duration — the offset estimate
    // plus the lane aligner must have absorbed any skew.
    let mut watermark: std::collections::HashMap<(u64, u64), f64> =
        std::collections::HashMap::new();
    for ev in events {
        if as_str(field(ev, "ph")) != Some("X") {
            continue;
        }
        let pid = as_u64(field(ev, "pid")).expect("span has pid");
        let tid = as_u64(field(ev, "tid")).expect("span has tid");
        let ts = as_f64(field(ev, "ts")).expect("span has ts");
        let dur = as_f64(field(ev, "dur")).expect("span has dur");
        assert!(dur >= 0.0, "negative-duration span on pid {pid} tid {tid}");
        assert!(ts >= 0.0, "span before run origin on pid {pid} tid {tid}");
        let last = watermark.entry((pid, tid)).or_insert(0.0);
        assert!(
            ts >= *last,
            "non-monotone lane (pid {pid} tid {tid}): {ts} after {last}"
        );
        *last = ts;
    }

    // --- unified metrics: per-peer wire counters + heartbeat RTT ---
    let metrics = dist.metrics();
    assert_eq!(metrics.wire.len(), 2, "one wire entry per peer");
    for (w, s) in metrics.wire.iter().enumerate() {
        assert!(s.frames_sent > 0, "no frames sent to worker {w}");
        assert!(s.bytes_sent > 0, "no bytes sent to worker {w}");
        assert!(s.frames_recv > 0, "no frames received from worker {w}");
        assert!(s.bytes_recv > 0, "no bytes received from worker {w}");
        assert!(s.hb_rtt.count >= 1, "no heartbeat RTT samples for {w}");
        assert!(s.telemetry_batches >= 1, "no telemetry batches from {w}");
        assert!(s.telemetry_spans >= 1, "no telemetry spans from {w}");
    }
    let json = metrics.to_json_string();
    assert!(json.contains("\"wire\""), "metrics JSON lacks wire section");
    assert!(json.contains("\"hb_rtt\""), "metrics JSON lacks RTT stats");

    // The untraced transport still counts frames — observability of the
    // wire itself is always on; only span recording is gated.
    assert_eq!(plain.metrics().wire.len(), 2);
    assert!(plain.metrics().wire[0].frames_sent > 0);
}

#[test]
fn min_transfer_time_consumes_the_measured_matrix() {
    let mut dist = Runtime::builder()
        .policy(PolicyKind::MinTransferTime(grout::ExplorationLevel::Low))
        .tcp(vec![workerd(), workerd()])
        .build()
        .expect("distributed runtime");
    let links = dist
        .link_matrix()
        .expect("min-transfer-time holds the probed matrix")
        .clone();
    assert_eq!(links.len(), 3);
    let bits = run_workload(&mut dist);
    assert_eq!(bits.len(), 3);
    // The planner priced transfers with the measured matrix, not the
    // uniform fallback (probed loopback bandwidths are never all equal
    // to the 1e9 default).
    assert_eq!(dist.metrics().bw_source, "measured");
}

#[test]
fn sigkilled_workerd_is_quarantined_and_replayed() {
    let (saxpy, scale, _) = kernels();
    let n = N as i32;
    let mut dist = Runtime::builder()
        .policy(PolicyKind::RoundRobin)
        .tcp(vec![workerd(), workerd()])
        .build()
        .expect("distributed runtime");

    let a = rt_fill(&mut dist, &saxpy, n);

    // SIGKILL one worker process — real, unannounced death.
    let victim = dist
        .node_assignment(2)
        .and_then(|loc| loc.worker_index())
        .unwrap_or(0);
    let pid = dist.worker_pid(victim).expect("spawned worker has a pid");
    let killed = std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("kill runs");
    assert!(killed.success());

    // More work, including work that needs data the dead worker held.
    for _ in 0..3 {
        dist.launch(
            &scale,
            8,
            128,
            vec![LocalArg::Buf(a), LocalArg::F32(2.0), LocalArg::I32(n)],
        )
        .unwrap();
    }
    dist.synchronize().expect("recovery heals the run");

    let v = dist.read_f32(a).unwrap();
    assert!(v.iter().all(|x| x.is_finite()));
    assert!(
        dist.is_quarantined(victim),
        "killed worker must be quarantined"
    );
    assert_eq!(dist.healthy_workers(), 1);
    assert!(dist.metrics().quarantines >= 1);
}

/// `Threads:` from `/proc/self/status` — the kernel's count of threads
/// in this process, immune to miscounting spawned-and-exited helpers.
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status readable")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line present")
        .trim()
        .parse()
        .expect("thread count parses")
}

/// The event-loop acceptance check: a 64-worker mesh — every workerd an
/// in-process `serve_shutdown` loop, so worker threads are countable —
/// runs a full DAG while the controller adds exactly ONE thread (the
/// `grout-net-io` poll loop), not one reader per socket; and the serve
/// loops themselves spawn nothing (heartbeats, clock pings and telemetry
/// flushes are poll deadlines, not threads).
#[cfg(target_os = "linux")]
#[test]
fn controller_multiplexes_64_workers_over_one_io_thread() {
    use std::sync::atomic::AtomicBool;

    use grout::core::NetOptions;

    const W: usize = 64;
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut addrs = Vec::with_capacity(W);
    let mut serves = Vec::with_capacity(W);
    for _ in 0..W {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        addrs.push(listener.local_addr().expect("local addr").to_string());
        let flag = Arc::clone(&shutdown);
        serves.push(std::thread::spawn(move || {
            grout::serve_shutdown(listener, flag)
        }));
    }
    // Baseline: main thread + the 64 serve threads.
    let before = thread_count();
    let mut dist = Runtime::builder()
        .policy(PolicyKind::RoundRobin)
        .net(NetOptions {
            // Tiny ballast: 64 ctrl links + 2016 peer pairs must probe in
            // test time; the smoke test cares about threads, not numbers.
            probe_bytes: Some(1024),
            ..NetOptions::default()
        })
        .tcp(addrs.into_iter().map(WorkerSpec::Connect).collect())
        .build()
        .expect("64-worker mesh comes up");
    // Warmup DAG over the full mesh: adoption, P2P dials, heartbeats and
    // telemetry all live before the count is taken.
    let bits = run_workload(&mut dist);
    assert_eq!(bits.len(), 3);
    let after = thread_count();
    assert_eq!(
        after - before,
        1,
        "64 peers must cost the controller exactly one I/O thread \
         (and the serve loops none): {before} -> {after}"
    );
    drop(dist); // best-effort Shutdown frames to all 64 serve loops
                // The Shutdown frame is best-effort: a worker heartbeating into the
                // closing socket can lose it to a TCP reset and park its session
                // awaiting resume. Real workerds are reaped by SIGTERM; here the
                // shutdown flag plays that role and bounds every serve loop's exit.
    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    for s in serves {
        s.join().expect("serve thread").expect("clean serve exit");
    }
}

/// Elastic membership over real processes: a third workerd joins a live
/// two-worker run and receives CE placements; a worker then departs
/// cleanly and its directory entries are rebalanced — zero quarantines,
/// zero replays, results finite throughout.
#[test]
fn worker_joins_mid_run_and_departs_cleanly() {
    let (saxpy, scale, _) = kernels();
    let n = N as i32;
    let mut dist = Runtime::builder()
        .policy(PolicyKind::RoundRobin)
        .tcp(vec![workerd(), workerd()])
        .build()
        .expect("distributed runtime");
    let a = rt_fill(&mut dist, &saxpy, n);

    // Scale out mid-run.
    let joined = dist.join(workerd()).expect("mid-run join");
    assert_eq!(joined, 2, "newcomer takes the next index");
    assert_eq!(dist.healthy_workers(), 3);

    // Enough new nodes that round-robin must reach the newcomer.
    let mut extra = Vec::new();
    for _ in 0..3 {
        let b = dist.alloc_f32(N);
        dist.write_f32(b, |v| v.fill(1.0)).unwrap();
        dist.launch(
            &saxpy,
            8,
            128,
            vec![
                LocalArg::Buf(b),
                LocalArg::Buf(a),
                LocalArg::F32(0.5),
                LocalArg::I32(n),
            ],
        )
        .unwrap();
        extra.push(b);
    }
    dist.synchronize().expect("post-join work completes");
    let placed_on_joined = (0..32)
        .filter_map(|i| dist.node_assignment(i))
        .filter(|loc| loc.worker_index() == Some(joined))
        .count();
    assert!(
        placed_on_joined >= 1,
        "worker joined mid-run never received a CE placement"
    );

    // Scale in: worker 0 holds data from the fill; its sole copies must
    // be rebalanced, not quarantined-and-replayed.
    dist.leave(0).expect("clean departure");
    assert!(!dist.is_quarantined(0), "clean leave must not quarantine");
    assert!(dist.planner().is_departed(0));
    assert_eq!(dist.healthy_workers(), 2);
    assert_eq!(dist.metrics().quarantines, 0);
    assert_eq!(dist.metrics().replays, 0);

    // The run continues on the remaining workers, data intact.
    dist.launch(
        &scale,
        8,
        128,
        vec![LocalArg::Buf(a), LocalArg::F32(2.0), LocalArg::I32(n)],
    )
    .unwrap();
    dist.synchronize().expect("post-leave work completes");
    let v = dist.read_f32(a).unwrap();
    assert!(v.iter().all(|x| x.is_finite()));
}

/// Allocates and runs two kernels so both workers hold fresh data.
fn rt_fill(rt: &mut LocalRuntime, saxpy: &Arc<CompiledKernel>, n: i32) -> grout::ArrayId {
    let a = rt.alloc_f32(N);
    let b = rt.alloc_f32(N);
    rt.write_f32(a, |v| {
        v.iter_mut().enumerate().for_each(|(i, x)| *x = i as f32)
    })
    .unwrap();
    rt.write_f32(b, |v| v.fill(1.0)).unwrap();
    rt.launch(
        saxpy,
        8,
        128,
        vec![
            LocalArg::Buf(a),
            LocalArg::Buf(b),
            LocalArg::F32(2.0),
            LocalArg::I32(n),
        ],
    )
    .unwrap();
    rt.launch(
        saxpy,
        8,
        128,
        vec![
            LocalArg::Buf(b),
            LocalArg::Buf(a),
            LocalArg::F32(0.5),
            LocalArg::I32(n),
        ],
    )
    .unwrap();
    rt.synchronize().unwrap();
    a
}
