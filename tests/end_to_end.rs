//! Cross-crate integration: polyglot front end -> kernelc -> threaded
//! runtime -> coherence, and the simulated cluster on top of the same
//! scheduling machinery.

use std::sync::Arc;

use grout::core::{
    ExplorationLevel, LocalArg, LocalConfig, LocalRuntime, PolicyKind, SimConfig, SimRuntime,
};
use grout::workloads::{
    gb, run_workload, BlackScholes, ConjugateGradient, MatVec, MlEnsemble, SimWorkload, CG_KERNELS,
    MV_KERNEL,
};
use grout::{Language, Polyglot, Value};

#[test]
fn listing_two_port_is_one_token() {
    // Paper Listing 2: GrCUDA -> GrOUT is only the language id.
    for lang in [Language::GrCUDA, Language::GrOUT] {
        let mut pg = Polyglot::with_workers(2);
        let x = pg.eval(lang, "float[1000]").unwrap();
        x.fill_with(&mut pg, |i| i as f32).unwrap();
        assert_eq!(x.get(&mut pg, 999).unwrap(), 999.0);
    }
}

#[test]
fn polyglot_runs_the_paper_mv_kernel() {
    let mut pg = Polyglot::with_workers(2);
    let build = pg.eval(Language::GrOUT, "buildkernel").unwrap();
    let mv = build
        .build(
            &mut pg,
            MV_KERNEL,
            "mv(y: out pointer float, A: in pointer float, x: in pointer float, \
             rows: sint32, cols: sint32)",
        )
        .unwrap();
    let (rows, cols) = (64usize, 48usize);
    let a = pg
        .eval(Language::GrOUT, &format!("float[{}]", rows * cols))
        .unwrap();
    let x = pg.eval(Language::GrOUT, &format!("float[{cols}]")).unwrap();
    let y = pg.eval(Language::GrOUT, &format!("float[{rows}]")).unwrap();
    a.fill_with(&mut pg, |i| ((i % 7) as f32) * 0.25).unwrap();
    x.fill_with(&mut pg, |i| ((i % 3) as f32) - 1.0).unwrap();
    mv.configure(2, 32)
        .call(
            &mut pg,
            &[
                y.clone(),
                a.clone(),
                x.clone(),
                Value::int(rows as i32),
                Value::int(cols as i32),
            ],
        )
        .unwrap();
    let got = y.to_vec(&mut pg).unwrap();
    let av = a.to_vec(&mut pg).unwrap();
    let xv = x.to_vec(&mut pg).unwrap();
    let want = grout::workloads::mv_reference(&av, &xv, rows, cols);
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < 1e-3, "{g} vs {w}");
    }
}

#[test]
fn cg_solver_converges_on_the_local_runtime() {
    // A real conjugate-gradient solve through the whole stack: kernels from
    // CUDA-dialect source, scheduled as CEs across two worker threads.
    let n = 64usize;
    let mut rt =
        LocalRuntime::try_new(LocalConfig::new(2, PolicyKind::RoundRobin)).expect("spawn workers");
    let kernels = kernelc::compile(CG_KERNELS).unwrap();
    let get = |name: &str| Arc::new(kernels.iter().find(|k| k.name() == name).unwrap().clone());
    let (spmv, dot, axpy, xpay, zero, norm2) = (
        get("spmv_dense"),
        get("dot"),
        get("axpy"),
        get("xpay"),
        get("zero"),
        get("norm2"),
    );

    // SPD system: A = I*diag + small symmetric noise; b = A * ones.
    let a = rt.alloc_f32(n * n);
    let b_arr = rt.alloc_f32(n);
    let x = rt.alloc_f32(n);
    let r = rt.alloc_f32(n);
    let p = rt.alloc_f32(n);
    let ap = rt.alloc_f32(n);
    let scratch = rt.alloc_f32(4);
    let mut a_host = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let noise = 0.01 * (((i * 31 + j * 17) % 13) as f32 - 6.0);
            let sym = if i <= j {
                noise
            } else {
                0.01 * (((j * 31 + i * 17) % 13) as f32 - 6.0)
            };
            a_host[i * n + j] = if i == j { 4.0 } else { sym };
        }
    }
    let b_host: Vec<f32> = (0..n)
        .map(|i| (0..n).map(|j| a_host[i * n + j]).sum())
        .collect();
    rt.write_f32(a, |v| v.copy_from_slice(&a_host)).unwrap();
    rt.write_f32(b_arr, |v| v.copy_from_slice(&b_host)).unwrap();
    // x = 0; r = p = b.
    rt.write_f32(r, |v| v.copy_from_slice(&b_host)).unwrap();
    rt.write_f32(p, |v| v.copy_from_slice(&b_host)).unwrap();

    let ni = n as i32;
    let mut rr_old: f32 = b_host.iter().map(|v| v * v).sum();
    for _ in 0..12 {
        // Ap = A * p
        rt.launch(
            &spmv,
            2,
            32,
            vec![
                LocalArg::Buf(ap),
                LocalArg::Buf(a),
                LocalArg::Buf(p),
                LocalArg::I32(ni),
                LocalArg::I32(ni),
            ],
        )
        .unwrap();
        // pAp = p . Ap (scratch[0])
        rt.launch(&zero, 1, 4, vec![LocalArg::Buf(scratch), LocalArg::I32(4)])
            .unwrap();
        rt.launch(
            &dot,
            2,
            32,
            vec![
                LocalArg::Buf(p),
                LocalArg::Buf(ap),
                LocalArg::Buf(scratch),
                LocalArg::I32(ni),
            ],
        )
        .unwrap();
        let pap = rt.read_f32(scratch).unwrap()[0];
        let alpha = rr_old / pap;
        // x += alpha p ; r -= alpha Ap
        rt.launch(
            &axpy,
            2,
            32,
            vec![
                LocalArg::Buf(x),
                LocalArg::Buf(p),
                LocalArg::F32(alpha),
                LocalArg::I32(ni),
            ],
        )
        .unwrap();
        rt.launch(
            &axpy,
            2,
            32,
            vec![
                LocalArg::Buf(r),
                LocalArg::Buf(ap),
                LocalArg::F32(-alpha),
                LocalArg::I32(ni),
            ],
        )
        .unwrap();
        // rr_new = r.r  (norm2 avoids aliasing r twice)
        rt.launch(&zero, 1, 4, vec![LocalArg::Buf(scratch), LocalArg::I32(4)])
            .unwrap();
        rt.launch(
            &norm2,
            2,
            32,
            vec![LocalArg::Buf(r), LocalArg::Buf(scratch), LocalArg::I32(ni)],
        )
        .unwrap();
        let rr_new = rt.read_f32(scratch).unwrap()[0];
        if rr_new < 1e-8 {
            break;
        }
        // p = r + (rr_new/rr_old) p
        rt.launch(
            &xpay,
            2,
            32,
            vec![
                LocalArg::Buf(p),
                LocalArg::Buf(r),
                LocalArg::F32(rr_new / rr_old),
                LocalArg::I32(ni),
            ],
        )
        .unwrap();
        rr_old = rr_new;
    }
    let solution = rt.read_f32(x).unwrap();
    for (i, v) in solution.iter().enumerate() {
        assert!((v - 1.0).abs() < 1e-2, "x[{i}] = {v}, expected ~1");
    }
}

#[test]
fn all_workloads_run_on_all_policies() {
    let workloads: Vec<Box<dyn SimWorkload>> = vec![
        Box::new(BlackScholes::default()),
        Box::new(MlEnsemble::default()),
        Box::new(ConjugateGradient::default()),
        Box::new(MatVec::default()),
        Box::new(MatVec::monolithic()),
    ];
    let policies = [
        PolicyKind::RoundRobin,
        PolicyKind::VectorStep(vec![2, 1]),
        PolicyKind::MinTransferSize(ExplorationLevel::Low),
        PolicyKind::MinTransferTime(ExplorationLevel::High),
    ];
    for w in &workloads {
        for p in &policies {
            let out = run_workload(w.as_ref(), SimConfig::paper_grout(2, p.clone()), gb(16));
            assert!(out.secs() > 0.0, "{} under {:?}", w.name(), p.name());
            assert!(
                !out.timed_out,
                "{} capped at 16 GB under {}",
                w.name(),
                p.name()
            );
        }
    }
}

#[test]
fn all_workload_timelines_validate() {
    // Replay every workload's records through the independent event-driven
    // validator (stream FIFO exclusivity + dependency ordering).
    let workloads: Vec<Box<dyn SimWorkload>> = vec![
        Box::new(BlackScholes::default()),
        Box::new(MlEnsemble::default()),
        Box::new(ConjugateGradient::default()),
        Box::new(MatVec::default()),
    ];
    for w in &workloads {
        for (label, cfg) in [
            ("single", SimConfig::grcuda_baseline()),
            (
                "grout2",
                SimConfig::paper_grout(2, PolicyKind::VectorStep(w.tuned_vector())),
            ),
        ] {
            for size in [8u64, 96] {
                let mut rt = SimRuntime::try_new(cfg.clone()).expect("valid config");
                w.submit(&mut rt, gb(size));
                let report = grout::core::validate_timeline(rt.records());
                assert!(
                    report.is_valid(),
                    "{} on {label} at {size} GB: {:?}",
                    w.name(),
                    report.violations
                );
            }
        }
    }
}

#[test]
fn three_node_cluster_distributes_work() {
    let mut rt = SimRuntime::try_new(SimConfig::paper_grout(3, PolicyKind::RoundRobin))
        .expect("valid config");
    MlEnsemble::default().submit(&mut rt, gb(24));
    let mut seen = std::collections::HashSet::new();
    for rec in rt.records() {
        if rec.device.is_some() {
            seen.insert(rec.location);
        }
    }
    assert_eq!(seen.len(), 3, "all three workers used: {seen:?}");
}

#[test]
fn host_reads_see_kernel_writes_across_runtimes() {
    // Simulated: coherence makes the controller's host read wait for and
    // fetch the worker's written copy.
    let mut rt = SimRuntime::try_new(SimConfig::paper_grout(2, PolicyKind::RoundRobin))
        .expect("valid config");
    let a = rt.alloc(1 << 30);
    let k = rt.launch(
        "w",
        grout::core::KernelCost {
            flops: 1e9,
            bytes_read: 0,
            bytes_written: 1 << 30,
        },
        vec![grout::core::CeArg::write(a, 1 << 30)],
    );
    let r = rt.host_read(a, 1 << 30);
    assert!(rt.record(r).start >= rt.finish_time(k));
    assert!(rt.record(r).network_bytes >= 1 << 30);
}
