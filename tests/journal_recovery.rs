//! Journal round-trip: a live run journalling its planner ops, then
//! `grout-replay` (the real binary) reconstructing the exact final state
//! from the file. The digest printed by the binary must equal the live
//! planner's — crash-recovery is only real if the journal is a complete,
//! bit-exact account.

use std::process::Command;
use std::sync::Arc;

use grout::core::{LocalArg, LocalConfig, LocalRuntime};
use grout::kernelc;
use grout::net::oplog::{read_journal, JournalSink};
use grout::PolicyKind;

const N: usize = 128;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "grout-journal-it-{}-{name}.grjl",
        std::process::id()
    ));
    p
}

/// Drives a small kernel chain on a journalled local runtime; returns
/// the live planner's final digest and op count.
fn journalled_run(path: &std::path::Path) -> (u64, usize) {
    let inc = Arc::new(
        kernelc::compile(
            "__global__ void inc(float* a, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { a[i] = a[i] + 1.0; }
            }",
        )
        .expect("compile")[0]
            .clone(),
    );
    let cfg = LocalConfig::new(2, PolicyKind::RoundRobin);
    let mut rt = LocalRuntime::try_new(cfg).expect("spawn workers");
    {
        let cfg = rt.planner().config().clone();
        let links = rt.planner().links().cloned();
        let sink = JournalSink::create(path, &cfg, &links).expect("create journal");
        rt.add_op_sink(Box::new(sink));
    }
    let a = rt.alloc_f32(N);
    rt.write_f32(a, |v| {
        v.iter_mut().enumerate().for_each(|(i, x)| *x = i as f32)
    })
    .expect("host write");
    for _ in 0..4 {
        rt.launch(&inc, 2, 64, vec![LocalArg::Buf(a), LocalArg::I32(N as i32)])
            .expect("launch");
    }
    rt.synchronize().expect("drain");
    let _ = rt.read_f32(a).expect("read back");
    (rt.planner().state_digest(), rt.op_log().len())
    // rt drops here: workers join, the sink's Drop writes the footer.
}

#[test]
fn journal_replays_to_equal_state() {
    let path = tmp("equal-state");
    let (live_digest, live_ops) = journalled_run(&path);

    // Library-level replay: bit-exact reconstruction.
    let journal = read_journal(&path).expect("read journal");
    assert_eq!(journal.ops.len(), live_ops);
    assert!(!journal.truncated, "clean run must not truncate");
    let footer = journal.footer.expect("clean run writes a footer");
    assert_eq!(footer.digest, live_digest);
    assert_eq!(journal.replay(None).state_digest(), live_digest);

    // Binary-level replay: the shipped `grout-replay` agrees and verifies
    // the footer on its own.
    let out = Command::new(env!("CARGO_BIN_EXE_grout-replay"))
        .arg(&path)
        .output()
        .expect("run grout-replay");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "grout-replay failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains(&format!("state digest: {live_digest:016x}")),
        "grout-replay printed a different digest:\n{stdout}"
    );
    assert!(
        stdout.contains("footer digest verified"),
        "grout-replay did not verify the footer:\n{stdout}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn replay_detects_a_corrupted_footer() {
    let path = tmp("corrupt-footer");
    journalled_run(&path);

    // Flip one bit in the footer digest (the file's last 8 bytes).
    let mut raw = std::fs::read(&path).expect("read back");
    let n = raw.len();
    raw[n - 1] ^= 0x01;
    std::fs::write(&path, &raw).expect("rewrite");

    let out = Command::new(env!("CARGO_BIN_EXE_grout-replay"))
        .arg(&path)
        .output()
        .expect("run grout-replay");
    assert!(
        !out.status.success(),
        "grout-replay must exit nonzero on a digest mismatch"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("DIGEST MISMATCH"),
        "missing mismatch diagnostic"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn stop_at_walks_intermediate_states() {
    let path = tmp("stop-at");
    journalled_run(&path);
    let journal = read_journal(&path).expect("read journal");

    // Every prefix must replay without error and digests must evolve to
    // the final one.
    let mut digests = Vec::new();
    for cut in 0..=journal.ops.len() {
        digests.push(journal.replay(Some(cut)).state_digest());
    }
    assert_eq!(
        *digests.last().expect("non-empty"),
        journal.footer.expect("footer").digest
    );
    // The digest must actually change along the way (a constant digest
    // would make divergence detection vacuous).
    assert!(digests.windows(2).any(|w| w[0] != w[1]));
    std::fs::remove_file(&path).ok();
}
