//! Differential test of the planner/executor split: the simulator and the
//! local (threaded) runtime consume the *same* `Planner`, so the same CE
//! stream must produce identical scheduling decisions — CE by CE — in
//! both. Any divergence means one executor re-derives planning logic
//! instead of honouring the shared core's `Plan`.

use std::sync::Arc;

use grout::core::{
    CeArg, ExplorationLevel, KernelCost, LocalArg, LocalConfig, LocalRuntime, Plan, PolicyKind,
    SimConfig, SimRuntime,
};

const N: usize = 1 << 14;
const BYTES: u64 = (N * 4) as u64;

const SRC: &str = "
    __global__ void fill(float* a, float v, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { a[i] = v; }
    }
    __global__ void copy(float* dst, const float* src, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { dst[i] = src[i]; }
    }
    __global__ void inc(float* a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { a[i] = a[i] + 1.0; }
    }
";

/// The planner-visible footprint of one decision (everything except the
/// intra-node placement, which only device-modelling executors fill in).
#[derive(Debug, PartialEq)]
struct Decision {
    dag_index: usize,
    deps: Vec<usize>,
    assigned_node: grout::core::Location,
    movements: Vec<grout::core::Movement>,
}

impl Decision {
    fn of(p: &Plan) -> Decision {
        Decision {
            dag_index: p.dag_index,
            deps: p.deps.clone(),
            assigned_node: p.assigned_node,
            movements: p.movements.clone(),
        }
    }
}

/// Runs the 5-CE workload through the simulator; returns its decisions.
fn run_sim(policy: PolicyKind) -> Vec<Decision> {
    let mut rt = SimRuntime::try_new(SimConfig::paper_grout(2, policy)).expect("valid config");
    let a = rt.alloc(BYTES);
    let b = rt.alloc(BYTES);
    let c = rt.alloc(BYTES);
    let cost = KernelCost {
        flops: 1e6,
        bytes_read: BYTES,
        bytes_written: BYTES,
    };
    rt.launch("fill", cost, vec![CeArg::write(a, BYTES)]);
    rt.launch("fill", cost, vec![CeArg::write(b, BYTES)]);
    rt.launch(
        "copy",
        cost,
        vec![CeArg::write(c, BYTES), CeArg::read(a, BYTES)],
    );
    rt.launch("inc", cost, vec![CeArg::read_write(b, BYTES)]);
    rt.launch(
        "copy",
        cost,
        vec![CeArg::write(a, BYTES), CeArg::read(c, BYTES)],
    );
    rt.sched_trace().plans().map(Decision::of).collect()
}

/// Runs the same workload for real on the threaded runtime; returns its
/// decisions plus the computed arrays for a numeric sanity check.
fn run_local(policy: PolicyKind) -> (Vec<Decision>, Vec<f32>, Vec<f32>) {
    let kernels = kernelc::compile(SRC).unwrap();
    let fill = Arc::new(kernels[0].clone());
    let copy = Arc::new(kernels[1].clone());
    let inc = Arc::new(kernels[2].clone());
    let mut rt = LocalRuntime::try_new(LocalConfig::new(2, policy)).expect("spawn workers");
    let a = rt.alloc_f32(N);
    let b = rt.alloc_f32(N);
    let c = rt.alloc_f32(N);
    let n = N as i32;
    rt.launch(
        &fill,
        64,
        256,
        vec![LocalArg::Buf(a), LocalArg::F32(2.0), LocalArg::I32(n)],
    )
    .unwrap();
    rt.launch(
        &fill,
        64,
        256,
        vec![LocalArg::Buf(b), LocalArg::F32(5.0), LocalArg::I32(n)],
    )
    .unwrap();
    rt.launch(
        &copy,
        64,
        256,
        vec![LocalArg::Buf(c), LocalArg::Buf(a), LocalArg::I32(n)],
    )
    .unwrap();
    rt.launch(&inc, 64, 256, vec![LocalArg::Buf(b), LocalArg::I32(n)])
        .unwrap();
    rt.launch(
        &copy,
        64,
        256,
        vec![LocalArg::Buf(a), LocalArg::Buf(c), LocalArg::I32(n)],
    )
    .unwrap();
    rt.synchronize().unwrap();
    // Capture the kernel decisions before reads append host-CE plans.
    let decisions = rt.sched_trace().plans().map(Decision::of).collect();
    let out_a = rt.read_f32(a).unwrap();
    let out_b = rt.read_f32(b).unwrap();
    (decisions, out_a, out_b)
}

fn check_policy(policy: PolicyKind) {
    let sim = run_sim(policy.clone());
    let (local, out_a, out_b) = run_local(policy.clone());
    assert_eq!(sim.len(), 5, "sim must plan the five kernel CEs");
    assert_eq!(
        sim, local,
        "sim and local disagree on scheduling under {policy:?}"
    );
    // Per-CE movement byte totals match, therefore so do the sums.
    let total: u64 = sim
        .iter()
        .flat_map(|d| d.movements.iter())
        .map(|m| m.bytes)
        .sum();
    let local_total: u64 = local
        .iter()
        .flat_map(|d| d.movements.iter())
        .map(|m| m.bytes)
        .sum();
    assert_eq!(total, local_total);
    // And the real execution actually computed the right thing.
    assert!(out_a.iter().all(|&v| v == 2.0), "a: {}", out_a[0]);
    assert!(out_b.iter().all(|&v| v == 6.0), "b: {}", out_b[0]);
}

#[test]
fn round_robin_schedules_identically() {
    check_policy(PolicyKind::RoundRobin);
}

#[test]
fn min_transfer_size_schedules_identically() {
    check_policy(PolicyKind::MinTransferSize(ExplorationLevel::Medium));
}
