//! Reproducibility: every simulated run is bit-for-bit deterministic.

use grout::core::{PolicyKind, SimConfig, SimRuntime};
use grout::workloads::{gb, ConjugateGradient, MatVec, MlEnsemble, SimWorkload};

fn fingerprint(w: &dyn SimWorkload, cfg: SimConfig, size: u64) -> Vec<(u64, u64, usize)> {
    let mut rt = SimRuntime::try_new(cfg).expect("valid config");
    w.submit(&mut rt, size);
    rt.records()
        .iter()
        .map(|r| (r.start.as_nanos(), r.finish.as_nanos(), r.location.0))
        .collect()
}

#[test]
fn repeated_runs_are_identical() {
    let workloads: Vec<Box<dyn SimWorkload>> = vec![
        Box::new(MlEnsemble::default()),
        Box::new(ConjugateGradient::default()),
        Box::new(MatVec::default()),
    ];
    for w in &workloads {
        for cfg in [
            SimConfig::grcuda_baseline(),
            SimConfig::paper_grout(2, PolicyKind::VectorStep(w.tuned_vector())),
            SimConfig::paper_grout(3, PolicyKind::RoundRobin),
        ] {
            let a = fingerprint(w.as_ref(), cfg.clone(), gb(64));
            let b = fingerprint(w.as_ref(), cfg, gb(64));
            assert_eq!(a, b, "{} not deterministic", w.name());
        }
    }
}

#[test]
fn network_probe_is_deterministic() {
    use grout::net_sim::{Network, Topology};
    let topo = Topology::paper_oci(4, grout::desim::SimDuration::from_micros(50));
    let a = Network::new(topo.clone()).probe_matrix(64 << 20);
    let b = Network::new(topo).probe_matrix(64 << 20);
    assert_eq!(a, b);
}
