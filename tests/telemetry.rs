//! Telemetry subsystem integration tests: the Chrome-trace export must be
//! schema-valid and deterministic across same-seed sim runs, the metrics
//! dump must carry the acceptance-relevant counters, and the disabled
//! recorder must be free (no allocations, bit-identical virtual time).

use grout::{
    CeArg, ChromeTracer, FaultPlan, KernelCost, Lane, Observability, PolicyKind, Runtime, Shared,
    SimConfig, SimRuntime, Telemetry,
};
use serde::json::Value;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

// --------------------------------------------------------------------------
// Counting allocator for the zero-allocation fast-path test. Counting is
// gated on a thread-local flag so the other tests in this binary (which
// allocate freely, possibly in parallel) don't perturb the count.
// --------------------------------------------------------------------------

static TRACKED_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.try_with(|t| t.get()).unwrap_or(false) {
            TRACKED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.try_with(|t| t.get()).unwrap_or(false) {
            TRACKED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

// --------------------------------------------------------------------------
// A small deterministic workload: a faulted dependency chain plus an
// independent kernel, so the trace covers plans, transfers, executes, and
// the fault/recovery event vocabulary.
// --------------------------------------------------------------------------

const BYTES: u64 = 1 << 20;

fn faulted_config() -> SimConfig {
    let mut cfg = SimConfig::paper_grout(2, PolicyKind::RoundRobin);
    cfg.planner.faults = FaultPlan::kill_at_ce(2);
    cfg
}

fn run_small_workload(rt: &mut SimRuntime) {
    let a = rt.alloc(BYTES);
    let b = rt.alloc(BYTES);
    rt.host_write(a, BYTES);
    rt.host_write(b, BYTES);
    let cost = KernelCost {
        flops: 1e7,
        bytes_read: BYTES,
        bytes_written: BYTES,
    };
    for _ in 0..4 {
        rt.launch("chain", cost, vec![CeArg::read_write(a, BYTES)]);
    }
    rt.launch("side", cost, vec![CeArg::read_write(b, BYTES)]);
    rt.host_read(a, BYTES);
}

fn traced_run() -> (SimRuntime, Shared<ChromeTracer>) {
    let tracer = Shared::new(ChromeTracer::new());
    let mut rt = Runtime::builder()
        .sim_config(faulted_config())
        .telemetry(tracer.telemetry())
        .build_sim()
        .expect("valid config");
    run_small_workload(&mut rt);
    (rt, tracer)
}

// --------------------------------------------------------------------------
// Schema walking helpers over the in-memory JSON value.
// --------------------------------------------------------------------------

fn get<'v>(obj: &'v Value, key: &str) -> Option<&'v Value> {
    match obj {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::String(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::F64(f) => *f,
        Value::U64(u) => *u as f64,
        Value::I64(i) => *i as f64,
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn chrome_trace_export_is_schema_valid() {
    let (_rt, tracer) = traced_run();
    let trace = tracer.lock().to_json_value();

    let events = match get(&trace, "traceEvents").expect("traceEvents key") {
        Value::Array(events) => events.clone(),
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert_eq!(
        as_str(get(&trace, "displayTimeUnit").expect("displayTimeUnit")),
        "ms"
    );
    assert!(!events.is_empty(), "instrumented run produced no events");

    let mut phases = std::collections::BTreeSet::new();
    for ev in &events {
        let ph = as_str(get(ev, "ph").expect("every event has ph"));
        phases.insert(ph.to_string());
        assert!(!as_str(get(ev, "name").expect("name")).is_empty());
        assert!(matches!(
            get(ev, "pid").expect("pid"),
            Value::U64(_) | Value::I64(_)
        ));
        assert!(matches!(
            get(ev, "tid").expect("tid"),
            Value::U64(_) | Value::I64(_)
        ));
        match ph {
            "X" => {
                assert!(as_f64(get(ev, "ts").expect("complete spans carry ts")) >= 0.0);
                assert!(as_f64(get(ev, "dur").expect("complete spans carry dur")) >= 0.0);
            }
            "i" => assert_eq!(as_str(get(ev, "s").expect("instants carry scope")), "p"),
            "M" => {
                let args = get(ev, "args").expect("metadata carries args");
                assert!(get(args, "name").is_some());
            }
            "C" => {
                let args = get(ev, "args").expect("counters carry args");
                assert!(get(args, "value").is_some());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for required in ["X", "i", "M"] {
        assert!(
            phases.contains(required),
            "trace is missing {required:?} events (has {phases:?})"
        );
    }
}

#[test]
fn chrome_trace_is_deterministic_across_same_seed_runs() {
    let (_rt1, t1) = traced_run();
    let (_rt2, t2) = traced_run();
    let (a, b) = (t1.lock().to_json_string(), t2.lock().to_json_string());
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed traces diverged");
}

#[test]
fn metrics_dump_carries_acceptance_counters() {
    let (rt, _tracer) = traced_run();
    let metrics = Observability::metrics(&rt);
    assert!(metrics.total_kernels() > 0, "no kernels accounted");
    assert!(metrics.payload_bytes() > 0, "no payload bytes accounted");
    assert!(metrics.faults > 0, "injected death not counted");
    assert_eq!(metrics.kernels_by_worker.len(), 2);

    let dump = metrics.to_json_value();
    for key in [
        "plan",
        "queue",
        "transfer",
        "execute",
        "controller_send_bytes",
        "p2p_bytes",
        "staged_bytes",
        "faults",
        "kernels_by_worker",
        "busy_ns_by_worker",
        "bw_source",
        "transport",
        "bw_bps",
    ] {
        assert!(get(&dump, key).is_some(), "metrics dump missing {key}");
    }
    let csv = metrics.to_csv();
    assert!(csv.starts_with("metric,value\n"));
    assert!(csv.contains("p2p_bytes,"));
    assert!(csv.contains("bw_source,"));
    assert!(csv.contains("transport,"));
}

#[test]
fn metrics_record_the_bandwidth_matrix_and_its_provenance() {
    // A net-sim run under min-transfer-time prices transfers with the
    // probed (modeled) matrix; the metrics dump must say so and carry the
    // full controller+workers square so it can be compared, in one
    // artifact, against a real TCP run's *measured* matrix.
    let mut rt = Runtime::builder()
        .workers(2)
        .policy(PolicyKind::MinTransferTime(grout::ExplorationLevel::Low))
        .build_sim()
        .expect("valid config");
    run_small_workload(&mut rt);
    let metrics = Observability::metrics(&rt);
    assert_eq!(metrics.bw_source, "modeled");
    assert_eq!(metrics.transport, "sim");
    assert_eq!(metrics.bw_bps.len(), 3, "controller + 2 workers");
    assert!(metrics.bw_bps.iter().all(|row| row.len() == 3));
    assert!(metrics.bw_bps[0][1] > 0, "probed link has no bandwidth");

    let dump = metrics.to_json_value();
    match get(&dump, "bw_bps").expect("bw_bps") {
        Value::Array(rows) => assert_eq!(rows.len(), 3),
        other => panic!("bw_bps must be an array, got {other:?}"),
    }
    assert!(metrics.to_csv().contains("bw_bps.0.1,"));
}

#[test]
fn disabled_recorder_changes_nothing_and_allocates_nothing() {
    // Differential run: the no-op recorder must leave the virtual-time
    // results bit-for-bit identical to a traced run of the same config.
    let mut plain = Runtime::builder()
        .sim_config(faulted_config())
        .build_sim()
        .expect("valid config");
    run_small_workload(&mut plain);
    let (traced, _tracer) = traced_run();
    assert_eq!(plain.elapsed(), traced.elapsed());
    let (p, t) = (plain.stats(), traced.stats());
    assert_eq!(p.ces, t.ces);
    assert_eq!(p.network_bytes, t.network_bytes);
    assert_eq!(p.storm_kernels, t.storm_kernels);
    assert_eq!(p.sched_overhead, t.sched_overhead);
    assert_eq!(plain.metrics(), traced.metrics());

    // Fast path: every primitive on a disabled handle must complete
    // without touching the allocator.
    let off = Telemetry::off();
    assert!(!off.enabled());
    let lane = Lane::stream(1, 0, 0);
    TRACKED_ALLOCS.store(0, Ordering::Relaxed);
    TRACKING.with(|t| t.set(true));
    for i in 0..1000u64 {
        off.instant("noop", lane, i, &[]);
        off.counter("noop", lane, i, i as f64);
        off.gauge("noop", lane, i, i as f64);
        off.mark("noop", &[]);
    }
    TRACKING.with(|t| t.set(false));
    assert_eq!(
        TRACKED_ALLOCS.load(Ordering::Relaxed),
        0,
        "disabled telemetry allocated on the fast path"
    );
}

#[test]
fn builder_and_observability_work_through_the_facade() {
    let mut rt = Runtime::builder()
        .workers(2)
        .policy(PolicyKind::RoundRobin)
        .build_sim()
        .expect("valid config");
    run_small_workload(&mut rt);
    let trace = Observability::sched_trace(&rt);
    assert!(trace.plans().count() > 0);
    let stats = Observability::stats(&rt);
    assert!(stats.ces > 0);
    assert!(Observability::metrics(&rt).total_kernels() > 0);
}
