//! Tiled matrix multiply on a 2-D grid — exercises the `dim3(x, y)` launch
//! path end-to-end: a 2-D CUDA-dialect kernel compiled at runtime, verified
//! against a CPU reference, and sanity-checked with the race detector.
//!
//! Run with: `cargo run --release --example matmul_2d`

use std::sync::Arc;
use std::time::Instant;

use grout::core::{LocalArg, Runtime};

const MATMUL: &str = r#"
__global__ void matmul(float* c, const float* a, const float* b,
                       int m, int n, int k) {
    int row = blockIdx.y * blockDim.y + threadIdx.y;
    int col = blockIdx.x * blockDim.x + threadIdx.x;
    if (row < m && col < n) {
        float acc = 0.0;
        for (int p = 0; p < k; p++) {
            acc += a[row * k + p] * b[p * n + col];
        }
        c[row * n + col] = acc;
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (m, n, k) = (192usize, 160usize, 224usize);
    let kernel = Arc::new(kernelc::compile_one(MATMUL, "matmul")?);

    // The race detector agrees the kernel is clean (on a small instance).
    let mut c_small = vec![0.0f32; 8 * 8];
    let mut a_small = vec![1.0f32; 8 * 8];
    let mut b_small = vec![1.0f32; 8 * 8];
    let report = kernelc::launch_checked(
        kernel.checked(),
        4,
        16,
        &mut [
            kernelc::KernelArg::F32(&mut c_small),
            kernelc::KernelArg::F32(&mut a_small),
            kernelc::KernelArg::F32(&mut b_small),
            kernelc::KernelArg::Int(8),
            kernelc::KernelArg::Int(8),
            kernelc::KernelArg::Int(8),
        ],
        16,
    )?;
    println!(
        "racecheck: {} ({} threads)",
        if report.is_race_free() {
            "clean"
        } else {
            "RACY"
        },
        report.threads
    );
    assert!(report.is_race_free());

    // The real multiply through the distributed runtime, 2-D grid.
    let mut rt = Runtime::builder()
        .workers(2)
        .build_local()
        .expect("spawn workers");
    let a = rt.alloc_f32(m * k);
    let b = rt.alloc_f32(k * n);
    let c = rt.alloc_f32(m * n);
    rt.write_f32(a, |v| {
        for (i, e) in v.iter_mut().enumerate() {
            *e = ((i % 13) as f32) * 0.25 - 1.0;
        }
    })?;
    rt.write_f32(b, |v| {
        for (i, e) in v.iter_mut().enumerate() {
            *e = ((i % 7) as f32) * 0.5 - 1.5;
        }
    })?;

    let start = Instant::now();
    rt.launch2d(
        &kernel,
        ((n as u32).div_ceil(16), (m as u32).div_ceil(16)),
        (16, 16),
        vec![
            LocalArg::Buf(c),
            LocalArg::Buf(a),
            LocalArg::Buf(b),
            LocalArg::I32(m as i32),
            LocalArg::I32(n as i32),
            LocalArg::I32(k as i32),
        ],
    )?;
    rt.synchronize()?;
    let elapsed = start.elapsed();

    // CPU reference (f64 accumulation) on a few sampled entries.
    let av = rt.read_f32(a)?;
    let bv = rt.read_f32(b)?;
    let cv = rt.read_f32(c)?;
    let mut worst = 0.0f32;
    for row in (0..m).step_by(17) {
        for col in (0..n).step_by(13) {
            let want: f64 = (0..k)
                .map(|p| av[row * k + p] as f64 * bv[p * n + col] as f64)
                .sum();
            worst = worst.max((cv[row * n + col] - want as f32).abs());
        }
    }
    assert!(worst < 1e-3, "worst error {worst}");
    println!(
        "{}x{}x{} matmul on a 2-D grid in {elapsed:?} ({:.2} GFLOP/s), worst sampled error {worst:.6}",
        m,
        n,
        k,
        2.0 * (m * n * k) as f64 / elapsed.as_secs_f64() / 1e9
    );
    Ok(())
}
