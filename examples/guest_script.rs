//! Runs the paper's Listing 1 as an actual *guest-language program*: the
//! script below is GuestScript (this repository's stand-in for the paper's
//! Python-on-GraalVM), whose only interface to GrOUT is `polyglot.eval` —
//! exactly the surface Truffle guests get.
//!
//! Run with: `cargo run --release --example guest_script`
//! Or from a file: `cargo run --release -p grout --bin grout-run -- script.gs`

use grout::polyglot::run_script;
use grout::Polyglot;

const LISTING_1: &str = r#"
    # import polyglot  -- implicit in GuestScript
    KERNEL = "__global__ void square(float* x, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) { x[i] = x[i] * x[i]; } }"
    SIGNATURE = "square(x: inout pointer float, n: sint32)"

    # Initialization (Listing 1, lines 3-5)
    build = polyglot.eval("grout", "buildkernel")
    square = build(KERNEL, SIGNATURE)
    x = polyglot.eval("grout", "float[100]")

    # Normal execution flow (lines 7-10)
    for i in range(100) { x[i] = i }
    square(4, 32)(x, 100)
    print(x)
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut pg = Polyglot::with_workers(2);
    for line in run_script(&mut pg, LISTING_1)? {
        println!("{line}");
    }
    let stats = pg.runtime().stats();
    println!(
        "(ran {} kernel CE(s) across {:?} per-worker kernel counts)",
        stats.kernels,
        pg.runtime().kernels_by_worker()
    );
    Ok(())
}
