//! Compare every inter-node scheduling policy on each paper workload at 3x
//! oversubscription (the paper's Figure 8 scenario), including the online
//! policies' failure mode on MV: exploitation herds every CE onto the node
//! that already holds the broadcast vector, recreating the single-node
//! oversubscription the framework was supposed to remove.
//!
//! Run with: `cargo run --release --example policy_playground`

use grout::core::{ExplorationLevel, PolicyKind, SimConfig};
use grout::workloads::{gb, run_workload, ConjugateGradient, MatVec, MlEnsemble, SimWorkload};

fn main() {
    let size = gb(96); // 3x oversubscription of one node
    let workloads: Vec<Box<dyn SimWorkload>> = vec![
        Box::new(MlEnsemble::default()),
        Box::new(ConjugateGradient::default()),
        Box::new(MatVec::default()),
    ];

    for w in &workloads {
        println!("== {} at 96 GB (3x) on two GrOUT nodes ==", w.name());
        let policies: Vec<(String, PolicyKind)> = vec![
            ("round-robin".into(), PolicyKind::RoundRobin),
            (
                format!("vector-step {:?}", w.tuned_vector()),
                PolicyKind::VectorStep(w.tuned_vector()),
            ),
            (
                "min-transfer-size (Low)".into(),
                PolicyKind::MinTransferSize(ExplorationLevel::Low),
            ),
            (
                "min-transfer-size (High)".into(),
                PolicyKind::MinTransferSize(ExplorationLevel::High),
            ),
            (
                "min-transfer-time (Medium)".into(),
                PolicyKind::MinTransferTime(ExplorationLevel::Medium),
            ),
        ];
        let mut baseline = None;
        for (name, policy) in policies {
            let out = run_workload(w.as_ref(), SimConfig::paper_grout(2, policy), size);
            let base = *baseline.get_or_insert(out.secs());
            println!(
                "  {:<28} {:>9.1}s{}  ({:>6.3}x rr)  net {:>6.1} GB  storms {}",
                name,
                out.secs(),
                if out.timed_out { "*" } else { " " },
                out.secs() / base,
                out.network_bytes as f64 / (1u64 << 30) as f64,
                out.storm_kernels,
            );
        }
        println!();
    }
    println!("(* exceeded the paper's 2.5 h per-run cap)");
}
