//! Quickstart: the paper's Listing 1, line for line.
//!
//! ```python
//! import polyglot
//! build = polyglot.eval(GrOUT, "buildkernel")
//! square = build(KERNEL, KERNEL_SIGNATURE)
//! x = polyglot.eval(GrOUT, "int[100]")
//! for i in range(100): x[i] = i
//! square(GRID_SIZE, BLOCK_SIZE)(X, 100)
//! print(x)
//! ```
//!
//! Run with: `cargo run --release --example quickstart`

use grout::{Language, Polyglot, Value};

const KERNEL: &str = r#"
__global__ void square(float* x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        x[i] = x[i] * x[i];
    }
}
"#;

const KERNEL_SIGNATURE: &str = "square(x: inout pointer float, n: sint32)";

const GRID_SIZE: u32 = 4;
const BLOCK_SIZE: u32 = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The polyglot context replaces `import polyglot`; two worker threads
    // stand in for the two cluster nodes.
    let mut pg = Polyglot::with_workers(2);

    // Initialization (Listing 1, lines 3-5).
    let build = pg.eval(Language::GrOUT, "buildkernel")?;
    let square = build.build(&mut pg, KERNEL, KERNEL_SIGNATURE)?;
    let x = pg.eval(Language::GrOUT, "float[100]")?;

    // Normal execution flow (lines 7-10).
    x.fill_with(&mut pg, |i| i as f32)?;
    square
        .configure(GRID_SIZE, BLOCK_SIZE)
        .call(&mut pg, &[x.clone(), Value::int(100)])?;

    let out = x.to_vec(&mut pg)?;
    println!("x = {:?} ... {:?}", &out[..8], &out[96..]);
    assert_eq!(out[9], 81.0);
    assert_eq!(out[99], 99.0 * 99.0);

    let stats = pg.runtime().stats();
    println!(
        "executed {} kernel CE(s); moved {} B controller->worker, {} B back",
        stats.kernels, stats.send_bytes, stats.fetch_bytes
    );
    println!("kernels per worker: {:?}", pg.runtime().kernels_by_worker());
    Ok(())
}
