//! The paper's headline phenomenon in one table: sweep the dense
//! matrix-vector workload from comfortable to 5x-oversubscribed on the
//! simulated V100 cluster, on one node (GrCUDA baseline) and on two GrOUT
//! nodes. Watch the single-node execution fall off the UVM cliff while the
//! distributed run stays near-linear.
//!
//! Run with: `cargo run --release --example scale_out_cliff`

use grout::core::{PolicyKind, SimConfig};
use grout::workloads::{
    gb, oversubscription_factor, run_workload, MatVec, SimWorkload, PAPER_SIZES_GB,
};

fn main() {
    let workload = MatVec::default();
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>10} {:>8}",
        "GB", "factor", "1 node [s]", "2 nodes [s]", "speedup", "storms"
    );
    for &size in &PAPER_SIZES_GB {
        let single = run_workload(&workload, SimConfig::grcuda_baseline(), gb(size));
        let grout = run_workload(
            &workload,
            SimConfig::paper_grout(2, PolicyKind::VectorStep(workload.tuned_vector())),
            gb(size),
        );
        println!(
            "{:>6} {:>8.3} {:>13.1}{} {:>13.1}{} {:>10.2} {:>8}",
            size,
            oversubscription_factor(gb(size)),
            single.secs(),
            if single.timed_out { "*" } else { " " },
            grout.secs(),
            if grout.timed_out { "*" } else { " " },
            single.secs() / grout.secs(),
            single.storm_kernels,
        );
    }
    println!("(* exceeded the paper's 2.5 h per-run cap; value is a lower bound)");
    println!();
    println!(
        "Below ~1x the network cost makes scale-out slower; past the UVM\n\
         cliff (between 2x and 3x) the single node collapses into fault\n\
         storms and two nodes win by an order of magnitude — the paper's\n\
         core result."
    );
}
