//! Black-Scholes option pricing on the *real* threaded runtime: the paper's
//! Figure 1 workload, executed for actual numbers rather than simulated
//! time. The CUDA-dialect kernel is compiled at runtime (the NVRTC path),
//! its access pattern analyzed, and the book priced across GrOUT worker
//! threads; results are verified against an f64 CPU reference.
//!
//! Run with: `cargo run --release --example black_scholes`

use std::sync::Arc;
use std::time::Instant;

use grout::core::{LocalArg, Runtime};
use grout::workloads::{black_scholes_reference, BLACK_SCHOLES_KERNEL};

const N: usize = 2_000_000;
const K: f32 = 100.0;
const R: f32 = 0.05;
const SIGMA: f32 = 0.2;
const T: f32 = 1.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = Runtime::builder()
        .workers(2)
        .build_local()
        .expect("spawn workers");

    // Compile the kernel from source (the paper's `buildkernel`).
    let kernel = Arc::new(kernelc::compile_one(BLACK_SCHOLES_KERNEL, "black_scholes")?);
    println!(
        "compiled `{}`; per-parameter access analysis:",
        kernel.name()
    );
    for (p, a) in kernel.params().iter().zip(kernel.access()) {
        println!(
            "  {:<6} reads={:<5} writes={:<5} class={:?}",
            p.name, a.reads, a.writes, a.class
        );
    }

    // A book of N options, spots in [50, 150).
    let spot = rt.alloc_f32(N);
    let call = rt.alloc_f32(N);
    let put = rt.alloc_f32(N);
    rt.write_f32(spot, |v| {
        for (i, s) in v.iter_mut().enumerate() {
            *s = 50.0 + (i as f32 * 0.618_034) % 100.0;
        }
    })?;

    let start = Instant::now();
    let grid = (N as u32).div_ceil(256);
    rt.launch(
        &kernel,
        grid,
        256,
        vec![
            LocalArg::Buf(spot),
            LocalArg::Buf(call),
            LocalArg::Buf(put),
            LocalArg::F32(K),
            LocalArg::F32(R),
            LocalArg::F32(SIGMA),
            LocalArg::F32(T),
            LocalArg::I32(N as i32),
        ],
    )?;
    rt.synchronize()?;
    let elapsed = start.elapsed();

    let calls = rt.read_f32(call)?;
    let puts = rt.read_f32(put)?;
    let spots = rt.read_f32(spot)?;

    // Verify a sample against the f64 reference.
    let sample: Vec<f32> = spots.iter().step_by(N / 1000).copied().collect();
    let (ref_calls, ref_puts) = black_scholes_reference(&sample, K, R, SIGMA, T);
    let mut worst = 0.0f32;
    for (i, idx) in (0..N).step_by(N / 1000).enumerate() {
        worst = worst.max((calls[idx] - ref_calls[i]).abs());
        worst = worst.max((puts[idx] - ref_puts[i]).abs());
    }
    assert!(worst < 0.05, "worst abs error {worst}");

    println!(
        "priced {N} options in {elapsed:?} ({:.1} M options/s) across {} workers",
        N as f64 / elapsed.as_secs_f64() / 1e6,
        rt.workers()
    );
    println!(
        "sample: S={:.2} -> call={:.4} put={:.4} (ATM ref ~10.45/5.57)",
        spots[0], calls[0], puts[0]
    );
    println!("worst abs error vs f64 reference on 1000 samples: {worst:.5}");
    Ok(())
}
